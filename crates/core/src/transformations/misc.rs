//! Operand-level transformations: commutation, irrelevant-id replacement and
//! constant obfuscation through uniforms.

use serde::{Deserialize, Serialize};

use trx_ir::{ConstantValue, Id, Instruction, Op, StorageClass, Type, Value};

use super::util::{analyze_use, insert_at, replacement_available, UseSite};
use super::util::cover_ids;
use crate::descriptor::{ResolvedPoint, UseDescriptor};
use crate::Context;

/// Swaps the operands of a commutative binary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapCommutativeOperands {
    /// Result id of the binary instruction.
    pub instruction: Id,
}

impl SwapCommutativeOperands {
    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        match ctx.module.find_result(self.instruction) {
            Some((_, inst)) => match &inst.op {
                Op::Binary { op, .. } => op.is_commutative(),
                _ => false,
            },
            None => false,
        }
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let (loc, _) = ctx.module.find_result(self.instruction).expect("precondition");
        let inst = &mut ctx.module.functions[loc.function].blocks[loc.block]
            .instructions[loc.index];
        if let Op::Binary { lhs, rhs, .. } = &mut inst.op {
            std::mem::swap(lhs, rhs);
        }
    }
}

/// Replaces a use of an id whose value is known not to matter with another
/// id of the same type (§3.2's `ReplaceIrrelevantId`).
///
/// A use qualifies when the used id carries the `Irrelevant` fact, or when
/// the use is an argument to a call whose corresponding formal parameter
/// carries it (the situation `AddParameter` sets up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaceIrrelevantId {
    /// The use being rewritten.
    pub use_descriptor: UseDescriptor,
    /// The id substituted in.
    pub replacement: Id,
}

impl ReplaceIrrelevantId {
    fn use_is_irrelevant(&self, ctx: &Context, used: Id) -> bool {
        if ctx.facts.id_is_irrelevant(used) {
            return true;
        }
        // Argument position of a call whose formal parameter is irrelevant?
        let UseDescriptor::Instruction { target, operand } = &self.use_descriptor else {
            return false;
        };
        let Some(point) = target.resolve_instruction(&ctx.module) else {
            return false;
        };
        let inst = &ctx.module.functions[point.function].blocks[point.block]
            .instructions[point.index];
        let Op::Call { callee, .. } = &inst.op else {
            return false;
        };
        let Some(callee) = ctx.module.function(*callee) else {
            return false;
        };
        // Operand 0 is the callee; arguments start at 1.
        let Some(param_index) = (*operand as usize).checked_sub(1) else {
            return false;
        };
        callee
            .params
            .get(param_index)
            .is_some_and(|p| ctx.facts.id_is_irrelevant(p.id))
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        let Some((used, site)) = analyze_use(ctx, &self.use_descriptor) else {
            return false;
        };
        used != self.replacement
            && self.use_is_irrelevant(ctx, used)
            && ctx.module.value_type(used) == ctx.module.value_type(self.replacement)
            && ctx.module.value_type(self.replacement).is_some()
            && replacement_available(ctx, site, self.replacement)
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let replaced = self.use_descriptor.replace_with(&mut ctx.module, self.replacement);
        debug_assert!(replaced, "use resolved in precondition");
    }
}

/// Replaces a use of a scalar constant with a load from a uniform whose
/// runtime value — known to the fuzzer from the input set — equals that
/// constant (§3.2's `ReplaceConstantWithUniform`).
///
/// This is the transformation that "obfuscates from the compiler the fact
/// that a block is dead by making the block's dynamic reachability depend on
/// the value of an input".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaceConstantWithUniform {
    /// The constant use being obfuscated.
    pub use_descriptor: UseDescriptor,
    /// The uniform global whose runtime value equals the constant.
    pub uniform: Id,
    /// Id for the inserted load.
    pub fresh_load_id: Id,
}

impl ReplaceConstantWithUniform {
    fn constant_as_value(value: &ConstantValue) -> Option<Value> {
        match value {
            ConstantValue::Bool(v) => Some(Value::Bool(*v)),
            ConstantValue::Int(v) => Some(Value::Int(*v)),
            ConstantValue::Float(bits) => Some(Value::Float(f32::from_bits(*bits))),
            ConstantValue::Composite(_) => None,
        }
    }

    fn uniform_matches(&self, ctx: &Context, constant_ty: Id, value: &ConstantValue) -> bool {
        let Some(global) = ctx.module.global(self.uniform) else {
            return false;
        };
        if global.storage != StorageClass::Uniform {
            return false;
        }
        let pointee = match ctx.module.type_of(global.ty) {
            Some(&Type::Pointer { pointee, .. }) => pointee,
            _ => return false,
        };
        if pointee != constant_ty {
            return false;
        }
        let Some(name) = ctx.module.interface.uniform_name(self.uniform) else {
            return false;
        };
        let Some(expected) = Self::constant_as_value(value) else {
            return false;
        };
        let runtime = ctx
            .inputs
            .get(name)
            .cloned()
            .unwrap_or_else(|| Value::zero_of(&ctx.module, pointee));
        runtime == expected
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        if !ctx.fresh_and_distinct(&[self.fresh_load_id]) {
            return false;
        }
        let Some((used, _site)) = analyze_use(ctx, &self.use_descriptor) else {
            return false;
        };
        let Some(constant) = ctx.module.constant(used) else {
            return false;
        };
        self.uniform_matches(ctx, constant.ty, &constant.value)
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let (_, site) = analyze_use(ctx, &self.use_descriptor).expect("precondition");
        let pointee = match ctx
            .module
            .global(self.uniform)
            .and_then(|g| ctx.module.type_of(g.ty))
        {
            Some(&Type::Pointer { pointee, .. }) => pointee,
            _ => unreachable!("precondition checked the uniform"),
        };
        let load = Instruction::with_result(
            self.fresh_load_id,
            pointee,
            Op::Load { pointer: self.uniform },
        );
        match site {
            UseSite::Plain(point) => {
                // Insert just before the user, then rewrite the (shifted)
                // user in place by index — no re-resolution races.
                insert_at(&mut ctx.module, point, load);
                let user = &mut ctx.module.functions[point.function].blocks[point.block]
                    .instructions[point.index + 1];
                let operand = match self.use_descriptor {
                    UseDescriptor::Instruction { operand, .. } => operand,
                    UseDescriptor::Terminator { .. } => unreachable!("site is Plain"),
                };
                replace_operand_at(user, operand, self.fresh_load_id);
            }
            UseSite::PhiIncoming { function, pred } => {
                // The value flows in from `pred`; load at the end of that
                // block.
                let pred_index = ctx.module.functions[function]
                    .block_index(pred)
                    .expect("precondition");
                let len = ctx.module.functions[function].blocks[pred_index]
                    .instructions
                    .len();
                insert_at(
                    &mut ctx.module,
                    ResolvedPoint { function, block: pred_index, index: len },
                    load,
                );
                let replaced =
                    self.use_descriptor.replace_with(&mut ctx.module, self.fresh_load_id);
                debug_assert!(replaced, "phi use resolved in precondition");
            }
            UseSite::Terminator { function, block } => {
                let block_index = ctx.module.functions[function]
                    .block_index(block)
                    .expect("precondition");
                let len = ctx.module.functions[function].blocks[block_index]
                    .instructions
                    .len();
                insert_at(
                    &mut ctx.module,
                    ResolvedPoint { function, block: block_index, index: len },
                    load,
                );
                let replaced =
                    self.use_descriptor.replace_with(&mut ctx.module, self.fresh_load_id);
                debug_assert!(replaced, "terminator use resolved in precondition");
            }
        }
        cover_ids(&mut ctx.module, &[self.fresh_load_id]);
    }
}

fn replace_operand_at(inst: &mut Instruction, operand: u32, replacement: Id) {
    let mut current = 0u32;
    inst.op.for_each_id_operand_mut(|id| {
        if current == operand {
            *id = replacement;
        }
        current += 1;
    });
}
