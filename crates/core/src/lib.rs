//! # trx-core
//!
//! The heart of transformation-based compiler testing (the paper's §2):
//! transformation [`Context`]s, the [`FactStore`], and a catalogue of 27
//! semantics-preserving [`Transformation`]s with explicit preconditions and
//! effects.
//!
//! Each transformation satisfies Definition 2.4: if its precondition holds
//! of a context `(P, I, F)`, its effect yields a context `(P', I', F')` with
//! `Semantics(P, I) = Semantics(P', I')`. Sequences are applied by
//! [`apply_sequence`], which skips transformations whose preconditions fail
//! (Definition 2.5) — the property that makes delta-debugging over
//! transformation sequences sound.
//!
//! # Example
//!
//! ```
//! use trx_ir::{ModuleBuilder, Inputs, interp};
//! use trx_core::{Context, Transformation, apply_sequence};
//! use trx_core::transformations::SetFunctionControl;
//! use trx_ir::FunctionControl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let c = b.constant_int(42);
//! let mut f = b.begin_entry_function("main");
//! f.store_output("out", c);
//! f.ret();
//! f.finish();
//! let module = b.finish();
//!
//! let original = interp::execute(&module, &Inputs::default())?;
//! let mut ctx = Context::new(module, Inputs::default())?;
//! let entry = ctx.module.entry_point;
//! let ts: Vec<Transformation> = vec![
//!     SetFunctionControl { function: entry, control: FunctionControl::DontInline }.into(),
//! ];
//! let applied = apply_sequence(&mut ctx, &ts);
//! assert_eq!(applied, vec![true]);
//!
//! // Theorem 2.6: the variant computes the same result.
//! let variant = interp::execute(&ctx.module, &ctx.inputs)?;
//! assert_eq!(original, variant);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod context;
mod descriptor;
mod facts;
mod fingerprint;
mod prefix;
mod prefix_shared;
mod size;
mod transformation;
pub mod transformations;

pub use context::Context;
pub use descriptor::{Anchor, InstructionDescriptor, ResolvedPoint, UseDescriptor};
pub use facts::{DataDescriptor, FactStore};
pub use fingerprint::{context_fingerprint, transformation_id};
pub use prefix::{Materialized, PrefixCache, PrefixCacheStats};
pub use prefix_shared::{
    InsertOutcome, InsertPriority, SharedCacheSession, SharedCacheStats, SharedPrefixCache,
};
pub use size::context_size_estimate;
pub use transformation::{apply, apply_sequence, Transformation, TransformationKind};
