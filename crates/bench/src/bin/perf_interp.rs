//! Perf interp: benchmarks the pre-decoded interpreter on the render-grid
//! workload and writes `BENCH_interp.json`.
//!
//! The workload renders every frag-coord-dependent render reference over a
//! `--width` × `--height` fragment grid, `--repeats` times, with three
//! configurations:
//!
//! 1. **reference** — the old stepper
//!    ([`trx_ir::interp::reference`]): per-fragment module walk with
//!    hash-map registers;
//! 2. **predecoded** — [`CompiledModule`]: one decode pass per module, then
//!    the whole grid through the register-file execution core, serially;
//! 3. **predecoded-parallel** — the same decoded form with rows spread
//!    across a `trx-pool` worker pool (`--threads`).
//!
//! Before writing the baseline the binary asserts the engine contract:
//! byte-identical images across all three configurations and across thread
//! counts 1, 2 and `--threads`; identical faults under a starvation step
//! budget; and identical step counts per probe. Any violation exits
//! nonzero, so CI runs this in smoke mode (small grid) as a regression
//! gate. `--min-speedup X` additionally fails the run when the parallel
//! configuration is below `X`× the reference throughput (left at 0 in
//! smoke mode, where debug builds and tiny grids make timings
//! meaningless).
//!
//! Usage: `perf_interp [--width W] [--height H] [--repeats R]
//! [--threads T] [--min-speedup X] [--out FILE]`

use std::sync::Arc;
use std::time::Instant;

use trx_bench::interp::{EngineRender, InterpBaseline};
use trx_bench::{arg_string, arg_usize, render_table};
use trx_harness::corpus::{render_references, Reference};
use trx_ir::interp::fast::CompiledModule;
use trx_ir::interp::{self, reference, ExecConfig};
use trx_observe::{Counter, RecordingSink, SinkHandle};

fn engine_summary(name: &str, wall_ns: u128, fragments: u64) -> EngineRender {
    let secs = wall_ns as f64 / 1e9;
    EngineRender {
        name: name.to_owned(),
        wall_ms: (wall_ns / 1_000_000) as u64,
        fragments_per_sec: fragments as f64 / secs.max(1e-9),
        per_fragment_ns: wall_ns as f64 / fragments.max(1) as f64,
    }
}

/// Cross-checks every engine and thread count on one reference: images must
/// be byte-identical, faults under a starvation budget identical, and step
/// counts per probe identical. Prints and returns `false` on divergence.
fn check_equivalence(r: &Reference, width: u32, height: u32, threads: usize) -> bool {
    let mut ok = true;
    let config = ExecConfig::default();
    let reference_img = reference::render_with_config(&r.module, &r.inputs, width, height, config);
    let compiled = CompiledModule::compile(&r.module, config);
    let serial = compiled.render(&r.inputs, width, height);
    if serial != reference_img {
        eprintln!("FAIL: {}: predecoded image diverges from reference", r.name);
        ok = false;
    }
    for t in [2, threads] {
        if compiled.render_parallel(&r.inputs, width, height, t) != serial {
            eprintln!("FAIL: {}: parallel image diverges at {t} threads", r.name);
            ok = false;
        }
    }

    // Step counts per probe: one invocation, both engines counted.
    let (fast_result, fast_stats) = interp::execute_counted(&r.module, &r.inputs, config);
    let (ref_result, ref_stats) = reference::execute_counted(&r.module, &r.inputs, config);
    if fast_result != ref_result || fast_stats != ref_stats {
        eprintln!("FAIL: {}: counted execution diverges", r.name);
        ok = false;
    }

    // Faults under starvation: a budget most fragments cannot finish in.
    let starved = ExecConfig { step_limit: fast_stats.steps.saturating_sub(1).max(1), ..config };
    let ref_starved = reference::render_with_config(&r.module, &r.inputs, width, height, starved);
    let starved_compiled = CompiledModule::compile(&r.module, starved);
    if starved_compiled.render(&r.inputs, width, height) != ref_starved {
        eprintln!("FAIL: {}: starved render diverges from reference", r.name);
        ok = false;
    }
    for t in [2, threads] {
        if starved_compiled.render_parallel(&r.inputs, width, height, t) != ref_starved {
            eprintln!("FAIL: {}: starved parallel render diverges at {t} threads", r.name);
            ok = false;
        }
    }
    ok
}

#[allow(clippy::too_many_lines)]
fn main() {
    let width = arg_usize("--width", 48) as u32;
    let height = arg_usize("--height", 48) as u32;
    let repeats = arg_usize("--repeats", 8).max(1);
    let threads = arg_usize("--threads", 4).max(2);
    let min_speedup: f64 = arg_string("--min-speedup", "0").parse().unwrap_or(0.0);
    let out = arg_string("--out", "BENCH_interp.json");

    let references = render_references();
    let per_pass: u64 = references.len() as u64 * u64::from(width) * u64::from(height);
    let fragments_total = per_pass * repeats as u64;
    let config = ExecConfig::default();

    // Equivalence first: timings mean nothing if the engines disagree.
    let equivalent = references
        .iter()
        .map(|r| check_equivalence(r, width, height, threads))
        .fold(true, |acc, ok| acc & ok);

    // One untimed warmup round per configuration, then the timed passes
    // interleaved per repeat: contiguous per-engine blocks would let
    // frequency drift over the run's lifetime bias whichever engine is
    // measured last, which alternation cancels.
    for r in &references {
        let _ = reference::render_with_config(&r.module, &r.inputs, width, height, config);
        let compiled = CompiledModule::compile(&r.module, config);
        let _ = compiled.render(&r.inputs, width, height);
        let _ = compiled.render_parallel(&r.inputs, width, height, threads);
    }
    let mut reference_ns: u128 = 0;
    let mut predecoded_ns: u128 = 0;
    let mut parallel_ns: u128 = 0;
    for _ in 0..repeats {
        // 1. The old stepper: re-walks the module for every fragment.
        let start = Instant::now();
        for r in &references {
            let _ = reference::render_with_config(&r.module, &r.inputs, width, height, config);
        }
        reference_ns += start.elapsed().as_nanos();

        // 2. Pre-decoded, serial grid: one decode per module per pass.
        let start = Instant::now();
        for r in &references {
            let compiled = CompiledModule::compile(&r.module, config);
            let _ = compiled.render(&r.inputs, width, height);
        }
        predecoded_ns += start.elapsed().as_nanos();

        // 3. Pre-decoded, data-parallel grid.
        let start = Instant::now();
        for r in &references {
            let compiled = CompiledModule::compile(&r.module, config);
            let _ = compiled.render_parallel(&r.inputs, width, height, threads);
        }
        parallel_ns += start.elapsed().as_nanos();
    }

    // Untimed observed pass: instructions retired and fragments rendered
    // through the trx-observe counters the fast core emits.
    let sink = Arc::new(RecordingSink::deterministic());
    let handle = SinkHandle::new(sink.clone());
    for r in &references {
        let compiled = CompiledModule::compile_observed(&r.module, config, &handle);
        let _ = compiled.render_observed(&r.inputs, width, height, 1, &handle);
    }
    let report = sink.snapshot();
    let instructions_retired = report.counter("render", Counter::InterpInstructionsRetired);
    let fragments_observed = report.counter("render", Counter::FragmentsRendered);

    let reference_engine = engine_summary("reference", reference_ns, fragments_total);
    let predecoded = engine_summary("predecoded", predecoded_ns, fragments_total);
    let predecoded_parallel = engine_summary("predecoded-parallel", parallel_ns, fragments_total);
    let speedup_predecoded =
        predecoded.fragments_per_sec / reference_engine.fragments_per_sec.max(1e-9);
    let speedup_parallel =
        predecoded_parallel.fragments_per_sec / reference_engine.fragments_per_sec.max(1e-9);

    let baseline = InterpBaseline {
        references: references.len(),
        width,
        height,
        repeats,
        threads,
        fragments_total,
        reference_engine,
        predecoded,
        predecoded_parallel,
        speedup_predecoded,
        speedup_parallel,
        instructions_retired,
        fragments_observed,
        equivalent,
    };

    let fmt_engine = |e: &EngineRender| {
        vec![
            vec![format!("{} wall ms", e.name), e.wall_ms.to_string()],
            vec![
                format!("{} fragments/sec", e.name),
                format!("{:.0}", e.fragments_per_sec),
            ],
            vec![
                format!("{} ns/fragment", e.name),
                format!("{:.0}", e.per_fragment_ns),
            ],
        ]
    };
    let mut rows = vec![
        vec!["references".to_owned(), baseline.references.to_string()],
        vec!["grid".to_owned(), format!("{width}x{height} x{repeats}")],
        vec!["fragments total".to_owned(), baseline.fragments_total.to_string()],
    ];
    rows.extend(fmt_engine(&baseline.reference_engine));
    rows.extend(fmt_engine(&baseline.predecoded));
    rows.extend(fmt_engine(&baseline.predecoded_parallel));
    rows.push(vec![
        "speedup predecoded".to_owned(),
        format!("{:.2}x", baseline.speedup_predecoded),
    ]);
    rows.push(vec![
        "speedup parallel".to_owned(),
        format!("{:.2}x", baseline.speedup_parallel),
    ]);
    rows.push(vec![
        "instructions retired".to_owned(),
        baseline.instructions_retired.to_string(),
    ]);
    rows.push(vec!["equivalent".to_owned(), baseline.equivalent.to_string()]);
    println!("{}", render_table(&["metric", "value"], &rows));

    if let Err(e) = baseline.save(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    let mut failed = false;
    if !baseline.equivalent {
        eprintln!("FAIL: an engine configuration diverged");
        failed = true;
    }
    if baseline.instructions_retired == 0 || baseline.fragments_observed == 0 {
        eprintln!("FAIL: the observed pass recorded no work");
        failed = true;
    }
    if min_speedup > 0.0 && baseline.speedup_parallel < min_speedup {
        eprintln!(
            "FAIL: parallel speedup {:.2}x is below the required {min_speedup:.2}x",
            baseline.speedup_parallel
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
