//! Regenerates the §4.2 (RQ2) reduction-quality comparison: median
//! instruction-count delta between original and reduced variant, spirv-fuzz
//! vs glsl-fuzz. The paper reports medians of 8 vs 29.
//!
//! Usage: `rq2_reduction [--tests N] [--cap K] [--seed S]`

use trx_bench::{arg_u64, arg_usize};
use trx_harness::experiments::reduction_quality;
use trx_harness::stats::median;

fn main() {
    let tests = arg_usize("--tests", 300);
    let cap = arg_usize("--cap", 10);
    let seed = arg_u64("--seed", 0);
    eprintln!("running {tests} tests/tool, cap {cap} reductions/signature (seed {seed}) ...");
    let data = reduction_quality(tests, cap, seed);
    let (spirv_median, glsl_median) = data.medians();
    println!("RQ2: quality of test-case reduction (instruction-count deltas)\n");
    println!("  spirv-fuzz reductions: {}", data.spirv_fuzz_deltas.len());
    println!("  glsl-fuzz  reductions: {}", data.glsl_fuzz_deltas.len());
    println!();
    println!("  median delta, spirv-fuzz : {spirv_median:.1}   (paper: 8)");
    println!("  median delta, glsl-fuzz  : {glsl_median:.1}   (paper: 29)");
    let unreduced: Vec<f64> = data.unreduced_deltas.iter().map(|&d| d as f64).collect();
    if let Some(m) = median(&unreduced) {
        println!("  median delta before reduction: {m:.1}");
    }
    println!("\n(Absolute numbers depend on the simulated substrate; the shape to check");
    println!(" is that both tools reduce deltas dramatically and spirv-fuzz's are smaller.)");
}
