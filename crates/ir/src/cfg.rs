//! Control-flow graph and dominance analysis over a [`Function`].
//!
//! Dominance is computed with the Cooper–Harvey–Kennedy iterative algorithm
//! over a reverse postorder. It backs the validator's SSA availability rules
//! and the preconditions of control-flow transformations such as
//! `MoveBlockDown` ("a block must appear before all blocks it dominates").

use std::collections::HashMap;

use crate::{Function, Id};

/// The control-flow graph of a function, with blocks addressed by dense
/// indexes in syntactic order.
#[derive(Debug, Clone)]
pub struct Cfg {
    labels: Vec<Id>,
    index: HashMap<Id, usize>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `function`.
    #[must_use]
    pub fn new(function: &Function) -> Self {
        let labels: Vec<Id> = function.blocks.iter().map(|b| b.label).collect();
        let index: HashMap<Id, usize> =
            labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut succs = vec![Vec::new(); labels.len()];
        let mut preds = vec![Vec::new(); labels.len()];
        for (i, block) in function.blocks.iter().enumerate() {
            for target in block.successors() {
                if let Some(&j) = index.get(&target) {
                    succs[i].push(j);
                    preds[j].push(i);
                }
            }
        }
        Cfg { labels, index, succs, preds }
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the function has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of block `i`.
    #[must_use]
    pub fn label(&self, i: usize) -> Id {
        self.labels[i]
    }

    /// The dense index of `label`, if it names a block.
    #[must_use]
    pub fn index_of(&self, label: Id) -> Option<usize> {
        self.index.get(&label).copied()
    }

    /// Successor indexes of block `i`.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Predecessor indexes of block `i`.
    #[must_use]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// absent.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<usize> {
        if self.labels.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.labels.len()];
        let mut postorder = Vec::with_capacity(self.labels.len());
        // Iterative DFS carrying an explicit successor cursor.
        // Successors are explored in reverse so the resulting RPO matches
        // the natural order a structured emitter produces (entry, then-arm,
        // else-arm, merge) rather than its mirror.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            if *cursor < self.succs[node].len() {
                let next = self.succs[node][self.succs[node].len() - 1 - *cursor];
                *cursor += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }
}

/// The dominator tree of a function.
#[derive(Debug, Clone)]
pub struct Dominators {
    cfg: Cfg,
    /// Immediate dominator per block index; `usize::MAX` marks unreachable
    /// blocks, and the entry is its own idom.
    idom: Vec<usize>,
}

const UNREACHABLE: usize = usize::MAX;

impl Dominators {
    /// Computes the dominator tree of `function`.
    #[must_use]
    pub fn compute(function: &Function) -> Self {
        let cfg = Cfg::new(function);
        let n = cfg.len();
        let mut idom = vec![UNREACHABLE; n];
        if n == 0 {
            return Dominators { cfg, idom };
        }
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b] = i;
        }
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = UNREACHABLE;
                for &p in cfg.predecessors(b) {
                    if idom[p] == UNREACHABLE {
                        continue;
                    }
                    new_idom = if new_idom == UNREACHABLE {
                        p
                    } else {
                        intersect(&idom, &rpo_number, p, new_idom)
                    };
                }
                if new_idom != UNREACHABLE && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { cfg, idom }
    }

    /// The underlying CFG.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Returns `true` if block `a` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, a: Id) -> bool {
        self.cfg
            .index_of(a)
            .is_some_and(|i| self.idom[i] != UNREACHABLE)
    }

    /// The immediate dominator of `b`, or `None` for the entry and for
    /// unreachable or unknown blocks.
    #[must_use]
    pub fn idom(&self, b: Id) -> Option<Id> {
        let i = self.cfg.index_of(b)?;
        if i == 0 || self.idom[i] == UNREACHABLE {
            None
        } else {
            Some(self.cfg.label(self.idom[i]))
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Unreachable blocks are dominated only by themselves.
    #[must_use]
    pub fn dominates(&self, a: Id, b: Id) -> bool {
        if a == b {
            return true;
        }
        let (Some(ai), Some(mut bi)) = (self.cfg.index_of(a), self.cfg.index_of(b)) else {
            return false;
        };
        if self.idom[bi] == UNREACHABLE {
            return false;
        }
        while bi != 0 {
            bi = self.idom[bi];
            if bi == UNREACHABLE {
                return false;
            }
            if bi == ai {
                return true;
            }
        }
        ai == 0
    }

    /// Returns `true` if `a` strictly dominates `b`.
    #[must_use]
    pub fn strictly_dominates(&self, a: Id, b: Id) -> bool {
        a != b && self.dominates(a, b)
    }
}

fn intersect(idom: &[usize], rpo_number: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_number[a] > rpo_number[b] {
            a = idom[a];
        }
        while rpo_number[b] > rpo_number[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, FunctionControl, Terminator};

    /// Builds a function from (label, successors) pairs; the first entry is
    /// the entry block.
    fn function_from_edges(edges: &[(u32, &[u32])]) -> Function {
        let blocks = edges
            .iter()
            .map(|&(label, succs)| Block {
                label: Id::new(label),
                instructions: vec![],
                merge: None,
                terminator: match succs {
                    [] => Terminator::Return,
                    [t] => Terminator::Branch { target: Id::new(*t) },
                    [t, f] => Terminator::BranchConditional {
                        cond: Id::new(999),
                        true_target: Id::new(*t),
                        false_target: Id::new(*f),
                    },
                    _ => panic!("at most two successors"),
                },
            })
            .collect();
        Function {
            id: Id::new(100),
            ty: Id::new(101),
            control: FunctionControl::None,
            params: vec![],
            blocks,
        }
    }

    #[test]
    fn diamond_dominance() {
        // 1 -> {2, 3} -> 4
        let f = function_from_edges(&[(1, &[2, 3]), (2, &[4]), (3, &[4]), (4, &[])]);
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(Id::new(1), Id::new(4)));
        assert!(!dom.dominates(Id::new(2), Id::new(4)));
        assert!(!dom.dominates(Id::new(3), Id::new(4)));
        assert_eq!(dom.idom(Id::new(4)), Some(Id::new(1)));
        assert_eq!(dom.idom(Id::new(1)), None);
    }

    #[test]
    fn chain_dominance_is_transitive() {
        let f = function_from_edges(&[(1, &[2]), (2, &[3]), (3, &[])]);
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(Id::new(1), Id::new(3)));
        assert!(dom.strictly_dominates(Id::new(1), Id::new(3)));
        assert!(dom.dominates(Id::new(2), Id::new(3)));
        assert!(!dom.dominates(Id::new(3), Id::new(2)));
    }

    #[test]
    fn loop_back_edge() {
        // 1 -> 2 -> {3, 2-again via 3? } classic: 1->2, 2->{3,4}, 3->2, 4 exit
        let f = function_from_edges(&[(1, &[2]), (2, &[3, 4]), (3, &[2]), (4, &[])]);
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(Id::new(2), Id::new(3)));
        assert!(dom.dominates(Id::new(2), Id::new(4)));
        assert!(!dom.dominates(Id::new(3), Id::new(4)));
    }

    #[test]
    fn unreachable_blocks_reported() {
        let f = function_from_edges(&[(1, &[2]), (2, &[]), (9, &[2])]);
        let dom = Dominators::compute(&f);
        assert!(!dom.is_reachable(Id::new(9)));
        assert!(dom.is_reachable(Id::new(2)));
        assert!(dom.dominates(Id::new(9), Id::new(9)));
        assert!(!dom.dominates(Id::new(9), Id::new(2)));
        assert!(!dom.dominates(Id::new(1), Id::new(9)));
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let f = function_from_edges(&[(1, &[2]), (2, &[]), (9, &[2])]);
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 2);
    }
}
