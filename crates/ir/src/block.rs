use serde::{Deserialize, Serialize};

use crate::{Id, Instruction, Terminator};

/// A structured control-flow merge annotation, as required by SPIR-V for
/// blocks that end in a multi-way branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Merge {
    /// Header of a selection construct.
    Selection {
        /// The block where the branches of the selection re-join.
        merge: Id,
    },
    /// Header of a loop construct.
    Loop {
        /// The block control reaches when the loop exits.
        merge: Id,
        /// The loop's continue target.
        cont: Id,
    },
}

impl Merge {
    /// The merge block label.
    #[must_use]
    pub fn merge_block(self) -> Id {
        match self {
            Merge::Selection { merge } | Merge::Loop { merge, .. } => merge,
        }
    }

    /// Labels referenced by the annotation.
    pub fn referenced_labels(self) -> Vec<Id> {
        match self {
            Merge::Selection { merge } => vec![merge],
            Merge::Loop { merge, cont } => vec![merge, cont],
        }
    }

    /// Rewrites each referenced label in place.
    pub fn for_each_label_mut(&mut self, mut f: impl FnMut(&mut Id)) {
        match self {
            Merge::Selection { merge } => f(merge),
            Merge::Loop { merge, cont } => {
                f(merge);
                f(cont);
            }
        }
    }
}

/// A basic block: a label, a straight-line instruction list, an optional
/// merge annotation and a terminator.
///
/// `Phi` instructions, when present, must form a prefix of `instructions`
/// (enforced by [`validate`](crate::validate::validate)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The block's label id, unique within the module.
    pub label: Id,
    /// The block body. Phis first, then ordinary instructions.
    pub instructions: Vec<Instruction>,
    /// Structured control-flow annotation, if this block is a construct
    /// header.
    pub merge: Option<Merge>,
    /// The block terminator.
    pub terminator: Terminator,
}

impl Block {
    /// Creates an empty block that falls through to `target`.
    #[must_use]
    pub fn branching_to(label: Id, target: Id) -> Self {
        Block {
            label,
            instructions: Vec::new(),
            merge: None,
            terminator: Terminator::Branch { target },
        }
    }

    /// The number of leading `Phi` instructions.
    #[must_use]
    pub fn phi_count(&self) -> usize {
        self.instructions.iter().take_while(|i| i.is_phi()).count()
    }

    /// Iterates over the block's `Phi` instructions.
    pub fn phis(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter().take_while(|i| i.is_phi())
    }

    /// Finds the position of the instruction with result id `result`.
    #[must_use]
    pub fn position_of_result(&self, result: Id) -> Option<usize> {
        self.instructions.iter().position(|i| i.result == Some(result))
    }

    /// The labels control may flow to from this block.
    pub fn successors(&self) -> Vec<Id> {
        self.terminator.targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Terminator};

    fn phi(result: u32) -> Instruction {
        Instruction::with_result(Id::new(result), Id::new(90), Op::Phi { incoming: vec![] })
    }

    fn nop() -> Instruction {
        Instruction::without_result(Op::Nop)
    }

    #[test]
    fn phi_prefix_counted() {
        let block = Block {
            label: Id::new(1),
            instructions: vec![phi(10), phi(11), nop()],
            merge: None,
            terminator: Terminator::Return,
        };
        assert_eq!(block.phi_count(), 2);
        assert_eq!(block.phis().count(), 2);
    }

    #[test]
    fn successors_follow_terminator() {
        let block = Block::branching_to(Id::new(1), Id::new(2));
        assert_eq!(block.successors(), vec![Id::new(2)]);
    }

    #[test]
    fn position_of_result_finds_instruction() {
        let block = Block {
            label: Id::new(1),
            instructions: vec![nop(), phi(10)],
            merge: None,
            terminator: Terminator::Return,
        };
        assert_eq!(block.position_of_result(Id::new(10)), Some(1));
        assert_eq!(block.position_of_result(Id::new(11)), None);
    }

    #[test]
    fn merge_labels() {
        let m = Merge::Loop { merge: Id::new(4), cont: Id::new(5) };
        assert_eq!(m.merge_block(), Id::new(4));
        assert_eq!(m.referenced_labels(), vec![Id::new(4), Id::new(5)]);
    }
}
