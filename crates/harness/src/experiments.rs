//! Drivers for the paper's controlled experiments (§4): each function
//! regenerates the data behind one table or figure.

use std::collections::{BTreeMap, BTreeSet};

use trx_targets::{catalog, Target};

use crate::campaign::{
    generate_test, parallel_map, reduce_test, run_campaign, BugSignature, CampaignOutcome,
    ReducedTest, Tool,
};
use crate::corpus::donor_modules;
use crate::stats::{mann_whitney_u, median};
use crate::venn::{venn_segments, VennSegments};

/// Configuration shared by the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Tests per tool configuration (the paper used 10,000).
    pub tests_per_tool: usize,
    /// Number of disjoint groups for the median/MWU analysis (the paper
    /// used 10 groups of 1,000).
    pub groups: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { tests_per_tool: 600, groups: 10, seed: 0 }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Target name.
    pub target: String,
    /// Total distinct signatures per tool, in [`Tool::ALL`] order.
    pub totals: [usize; 3],
    /// Median distinct signatures across groups, per tool.
    pub medians: [f64; 3],
    /// MWU confidence (%) that spirv-fuzz beats spirv-fuzz-simple.
    pub beats_simple: f64,
    /// MWU confidence (%) that spirv-fuzz beats glsl-fuzz.
    pub beats_glsl: f64,
}

/// The full Table 3 dataset plus per-target Venn segments (Figure 7).
#[derive(Debug, Clone)]
pub struct BugFindingData {
    /// Per-target rows.
    pub rows: Vec<Table3Row>,
    /// The "All" row aggregating every target.
    pub all_row: Table3Row,
    /// Per-target Figure 7 Venn segments
    /// (A = spirv-fuzz, B = spirv-fuzz-simple, C = glsl-fuzz).
    pub venn: Vec<(String, VennSegments)>,
    /// The aggregate Venn segments.
    pub venn_all: VennSegments,
}

fn group_counts(outcome: &CampaignOutcome, target: usize, groups: usize) -> Vec<f64> {
    let tests = outcome.per_test[target].len();
    let group_size = (tests / groups).max(1);
    (0..groups)
        .map(|g| {
            let start = g * group_size;
            let end = ((g + 1) * group_size).min(tests);
            if start >= end {
                0.0
            } else {
                outcome.distinct_in_range(target, start..end).len() as f64
            }
        })
        .collect()
}

/// Runs the §4.1 bug-finding experiment (Table 3 + Figure 7).
#[must_use]
pub fn bug_finding(config: ExperimentConfig) -> BugFindingData {
    let targets = catalog::all_targets();
    let outcomes: Vec<CampaignOutcome> = Tool::ALL
        .iter()
        .map(|&tool| run_campaign(tool, &targets, config.tests_per_tool, config.seed))
        .collect();

    let mut rows = Vec::new();
    let mut venn = Vec::new();
    // Aggregate ("All") bookkeeping: union across targets, per group.
    let mut all_groups: [Vec<f64>; 3] = [
        vec![0.0; config.groups],
        vec![0.0; config.groups],
        vec![0.0; config.groups],
    ];
    let mut all_totals: [BTreeSet<(usize, BugSignature)>; 3] =
        [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
    let mut venn_sets_all: [BTreeSet<(usize, BugSignature)>; 3] =
        [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];

    for (t, target) in targets.iter().enumerate() {
        let mut totals = [0usize; 3];
        let mut medians = [0f64; 3];
        let mut groups_per_tool: Vec<Vec<f64>> = Vec::new();
        let mut distinct_sets: Vec<BTreeSet<BugSignature>> = Vec::new();
        for (k, outcome) in outcomes.iter().enumerate() {
            let distinct = outcome.distinct(t);
            totals[k] = distinct.len();
            for signature in &distinct {
                all_totals[k].insert((t, signature.clone()));
                venn_sets_all[k].insert((t, signature.clone()));
            }
            let groups = group_counts(outcome, t, config.groups);
            medians[k] = median(&groups).unwrap_or(0.0);
            // Aggregate groups: distinct-signature count per group summed
            // over targets approximates the paper's "All" medians.
            for (g, &count) in groups.iter().enumerate() {
                all_groups[k][g] += count;
            }
            groups_per_tool.push(groups);
            distinct_sets.push(distinct);
        }
        let beats_simple = mann_whitney_u(&groups_per_tool[0], &groups_per_tool[1])
            .map_or(50.0, |m| m.confidence_first_larger);
        let beats_glsl = mann_whitney_u(&groups_per_tool[0], &groups_per_tool[2])
            .map_or(50.0, |m| m.confidence_first_larger);
        rows.push(Table3Row {
            target: target.name().to_owned(),
            totals,
            medians,
            beats_simple,
            beats_glsl,
        });
        venn.push((
            target.name().to_owned(),
            venn_segments(&distinct_sets[0], &distinct_sets[1], &distinct_sets[2]),
        ));
    }

    let all_row = Table3Row {
        target: "All".to_owned(),
        totals: [
            all_totals[0].len(),
            all_totals[1].len(),
            all_totals[2].len(),
        ],
        medians: [
            median(&all_groups[0]).unwrap_or(0.0),
            median(&all_groups[1]).unwrap_or(0.0),
            median(&all_groups[2]).unwrap_or(0.0),
        ],
        beats_simple: mann_whitney_u(&all_groups[0], &all_groups[1])
            .map_or(50.0, |m| m.confidence_first_larger),
        beats_glsl: mann_whitney_u(&all_groups[0], &all_groups[2])
            .map_or(50.0, |m| m.confidence_first_larger),
    };
    let venn_all = venn_segments(&venn_sets_all[0], &venn_sets_all[1], &venn_sets_all[2]);

    BugFindingData { rows, all_row, venn, venn_all }
}

/// The §4.2 reduction-quality data.
#[derive(Debug, Clone)]
pub struct ReductionQualityData {
    /// Instruction-count deltas for every spirv-fuzz reduction.
    pub spirv_fuzz_deltas: Vec<usize>,
    /// Instruction-count deltas for every glsl-fuzz reduction.
    pub glsl_fuzz_deltas: Vec<usize>,
    /// Pre-reduction instruction-count deltas (original vs unreduced
    /// variant), to substantiate the paper's "thousands of instructions"
    /// remark.
    pub unreduced_deltas: Vec<usize>,
}

impl ReductionQualityData {
    /// Median delta per tool: the paper reports 8 (spirv-fuzz) vs 29
    /// (glsl-fuzz).
    #[must_use]
    pub fn medians(&self) -> (f64, f64) {
        let s: Vec<f64> = self.spirv_fuzz_deltas.iter().map(|&d| d as f64).collect();
        let g: Vec<f64> = self.glsl_fuzz_deltas.iter().map(|&d| d as f64).collect();
        (median(&s).unwrap_or(0.0), median(&g).unwrap_or(0.0))
    }
}

/// The §4.2 targets: those that need no GPU, so "a very large number of
/// reduction instances" can run.
#[must_use]
pub fn reduction_targets() -> Vec<Target> {
    ["AMD-LLPC", "spirv-opt", "spirv-opt-old", "SwiftShader"]
        .iter()
        .filter_map(|name| catalog::target_by_name(name))
        .collect()
}

/// Runs the §4.2 reduction-quality experiment: finds crash-triggering tests
/// for the reduction targets, reduces each (capped per signature), and
/// records instruction-count deltas.
#[must_use]
pub fn reduction_quality(
    tests_per_tool: usize,
    cap_per_signature: usize,
    seed: u64,
) -> ReductionQualityData {
    let targets = reduction_targets();
    let donors = donor_modules();
    let mut spirv_fuzz_deltas = Vec::new();
    let mut glsl_fuzz_deltas = Vec::new();
    let mut unreduced_deltas = Vec::new();

    for &tool in &[Tool::SpirvFuzz, Tool::GlslFuzz] {
        let outcome = run_campaign(tool, &targets, tests_per_tool, seed);
        // Collect (target, seed, signature) triples for crash bugs, capped
        // per signature.
        let mut per_signature: BTreeMap<(usize, BugSignature), usize> = BTreeMap::new();
        let mut work: Vec<(usize, u64, BugSignature)> = Vec::new();
        for (t, results) in outcome.per_test.iter().enumerate() {
            for (i, signature) in results.iter().enumerate() {
                let Some(signature @ BugSignature::Crash(_)) = signature else {
                    continue;
                };
                let counter =
                    per_signature.entry((t, signature.clone())).or_insert(0);
                if *counter < cap_per_signature {
                    *counter += 1;
                    work.push((t, seed + i as u64, signature.clone()));
                }
            }
        }
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let reduced: Vec<Option<(ReducedTest, usize)>> =
            parallel_map(threads, work.len(), |w| {
                let (t, test_seed, signature) = &work[w];
                let reduced =
                    reduce_test(tool, *test_seed, &targets[*t], &donors, signature)?;
                // Unreduced delta for context.
                let test = generate_test(tool, *test_seed, &donors);
                let unreduced = crate::campaign::module_for_target(
                    tool,
                    &test.variant.module,
                )
                .instruction_count()
                .abs_diff(
                    crate::campaign::module_for_target(tool, &test.original.module)
                        .instruction_count(),
                );
                Some((reduced, unreduced))
            });
        for entry in reduced.into_iter().flatten() {
            let (test, unreduced) = entry;
            unreduced_deltas.push(unreduced);
            match tool {
                Tool::GlslFuzz => glsl_fuzz_deltas.push(test.delta_instructions),
                _ => spirv_fuzz_deltas.push(test.delta_instructions),
            }
        }
    }

    ReductionQualityData { spirv_fuzz_deltas, glsl_fuzz_deltas, unreduced_deltas }
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Target name.
    pub target: String,
    /// Reduced test cases fed to deduplication.
    pub tests: usize,
    /// Distinct crash signatures those tests collectively exhibit.
    pub sigs: usize,
    /// Test cases the algorithm recommends investigating.
    pub reports: usize,
    /// Distinct bugs actually covered by the recommendations.
    pub distinct: usize,
    /// Duplicate recommendations (`reports - distinct`).
    pub dups: usize,
}

/// Runs the §4.3 deduplication experiment (Table 4): gathers reduced
/// crash-triggering tests per target (NVIDIA excluded, as in the paper),
/// runs the Figure 6 algorithm on their transformation-type sets, and
/// scores the recommendations against ground truth.
#[must_use]
pub fn dedup_effectiveness(
    tests_per_tool: usize,
    cap_per_signature: usize,
    seed: u64,
) -> Vec<Table4Row> {
    let targets: Vec<Target> = catalog::all_targets()
        .into_iter()
        .filter(|t| t.name() != "NVIDIA")
        .collect();
    let donors = donor_modules();
    let tool = Tool::SpirvFuzz;
    let outcome = run_campaign(tool, &targets, tests_per_tool, seed);

    let mut rows = Vec::new();
    for (t, target) in targets.iter().enumerate() {
        // Crash-triggering seeds, capped per signature.
        let mut per_signature: BTreeMap<BugSignature, usize> = BTreeMap::new();
        let mut work: Vec<(u64, BugSignature)> = Vec::new();
        for (i, signature) in outcome.per_test[t].iter().enumerate() {
            let Some(signature @ BugSignature::Crash(_)) = signature else {
                continue;
            };
            let counter = per_signature.entry(signature.clone()).or_insert(0);
            if *counter < cap_per_signature {
                *counter += 1;
                work.push((seed + i as u64, signature.clone()));
            }
        }
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let reduced: Vec<Option<ReducedTest>> = parallel_map(threads, work.len(), |w| {
            let (test_seed, signature) = &work[w];
            reduce_test(tool, *test_seed, target, &donors, signature)
        });
        let reduced: Vec<ReducedTest> = reduced.into_iter().flatten().collect();
        if reduced.is_empty() {
            continue;
        }
        let sigs: BTreeSet<_> = reduced.iter().filter_map(|r| r.ground_truth.clone()).collect();
        let type_sets: Vec<BTreeSet<trx_core::TransformationKind>> =
            reduced.iter().map(|r| r.kinds.clone()).collect();
        let picked = trx_dedup::deduplicate_sets(&type_sets);
        let picked_bugs: BTreeSet<_> = picked
            .iter()
            .filter_map(|&i| reduced[i].ground_truth.clone())
            .collect();
        rows.push(Table4Row {
            target: target.name().to_owned(),
            tests: reduced.len(),
            sigs: sigs.len(),
            reports: picked.len(),
            distinct: picked_bugs.len(),
            dups: picked.len().saturating_sub(picked_bugs.len()),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bug_finding_run_produces_rows() {
        let config = ExperimentConfig { tests_per_tool: 12, groups: 3, seed: 100 };
        let data = bug_finding(config);
        assert_eq!(data.rows.len(), 9);
        assert_eq!(data.venn.len(), 9);
        assert_eq!(data.all_row.target, "All");
        // Venn totals must match the union sizes implied by tool totals.
        for ((name, v), row) in data.venn.iter().zip(&data.rows) {
            assert_eq!(name, &row.target);
            for k in 0..3 {
                assert!(v.total() >= row.totals[k]);
            }
        }
    }

    #[test]
    fn reduction_targets_exclude_gpu_targets() {
        let names: Vec<String> = reduction_targets()
            .iter()
            .map(|t| t.name().to_owned())
            .collect();
        assert_eq!(names, vec!["AMD-LLPC", "spirv-opt", "spirv-opt-old", "SwiftShader"]);
    }
}
