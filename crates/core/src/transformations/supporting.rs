//! Supporting transformations: declarations of types, constants and
//! variables.
//!
//! These are "not interesting in isolation, but fuzzer passes frequently use
//! them to enable more interesting transformations" (§3.2). They are on the
//! deduplication ignore list (§3.5).

use serde::{Deserialize, Serialize};

use trx_ir::{
    ConstantDecl, ConstantValue, GlobalVariable, Id, Instruction, Op, StorageClass, Type,
    TypeDecl,
};

use super::util::cover_ids;
use crate::Context;

/// Declares a new type.
///
/// Precondition: the fresh id is fresh; the type's referenced ids are
/// already-declared types; no structurally equal type exists (types stay
/// interned, so type equality is id equality everywhere else).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddType {
    /// Id for the new type.
    pub fresh_id: Id,
    /// The type to declare.
    pub ty: Type,
}

impl AddType {
    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        if !ctx.fresh_and_distinct(&[self.fresh_id]) {
            return false;
        }
        if ctx.module.lookup_type(&self.ty).is_some() {
            return false;
        }
        let refs_ok = self
            .ty
            .referenced_ids()
            .iter()
            .all(|&r| ctx.module.type_of(r).is_some());
        let shape_ok = match &self.ty {
            Type::Vector { component, count } => {
                (2..=4).contains(count)
                    && matches!(
                        ctx.module.type_of(*component),
                        Some(Type::Bool | Type::Int | Type::Float)
                    )
            }
            Type::Array { len, .. } => *len > 0,
            Type::Function { params, .. } => params
                .iter()
                .all(|&p| !matches!(ctx.module.type_of(p), Some(Type::Void))),
            _ => true,
        };
        refs_ok && shape_ok
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        ctx.module
            .types
            .push(TypeDecl { id: self.fresh_id, ty: self.ty.clone() });
        cover_ids(&mut ctx.module, &[self.fresh_id]);
    }
}

/// Declares a new constant.
///
/// Precondition: the fresh id is fresh; the type exists and matches the
/// value; composite parts are already-declared constants; no equal constant
/// of the same type exists (constants stay interned).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddConstant {
    /// Id for the new constant.
    pub fresh_id: Id,
    /// Id of the constant's type.
    pub ty: Id,
    /// The constant's value.
    pub value: ConstantValue,
}

impl AddConstant {
    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        if !ctx.fresh_and_distinct(&[self.fresh_id]) {
            return false;
        }
        if ctx.module.lookup_constant(self.ty, &self.value).is_some() {
            return false;
        }
        match (&self.value, ctx.module.type_of(self.ty)) {
            (ConstantValue::Bool(_), Some(Type::Bool))
            | (ConstantValue::Int(_), Some(Type::Int))
            | (ConstantValue::Float(_), Some(Type::Float)) => true,
            (ConstantValue::Composite(parts), Some(ty)) => {
                let member_types: Option<Vec<Id>> = match ty {
                    Type::Vector { component, count } => {
                        Some(vec![*component; *count as usize])
                    }
                    Type::Array { element, len } => Some(vec![*element; *len as usize]),
                    Type::Struct { members } => Some(members.clone()),
                    _ => None,
                };
                member_types.is_some_and(|member_types| {
                    member_types.len() == parts.len()
                        && parts.iter().zip(member_types).all(|(p, want)| {
                            ctx.module.constant(*p).map(|c| c.ty) == Some(want)
                        })
                })
            }
            _ => false,
        }
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        ctx.module.constants.push(ConstantDecl {
            id: self.fresh_id,
            ty: self.ty,
            value: self.value.clone(),
        });
        cover_ids(&mut ctx.module, &[self.fresh_id]);
    }
}

/// Adds a zero-initialised module-private global variable whose contents are
/// irrelevant to the final result (records the `IrrelevantPointee` fact).
///
/// Precondition: the fresh id is fresh and the pointer type
/// `Private -> pointee` is already declared (use [`AddType`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddGlobalVariable {
    /// Id for the new global.
    pub fresh_id: Id,
    /// Id of the pointee (data) type.
    pub pointee: Id,
}

impl AddGlobalVariable {
    fn pointer_type(&self, ctx: &Context) -> Option<Id> {
        ctx.module.lookup_type(&Type::Pointer {
            storage: StorageClass::Private,
            pointee: self.pointee,
        })
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        ctx.fresh_and_distinct(&[self.fresh_id])
            && self.pointer_type(ctx).is_some()
            && ctx
                .module
                .type_of(self.pointee)
                .is_some_and(|t| t.is_scalar() || t.is_composite())
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let ty = self.pointer_type(ctx).expect("checked by precondition");
        ctx.module.globals.push(GlobalVariable {
            id: self.fresh_id,
            ty,
            storage: StorageClass::Private,
            initializer: None,
        });
        ctx.facts.add_irrelevant_pointee(self.fresh_id);
        cover_ids(&mut ctx.module, &[self.fresh_id]);
    }
}

/// Adds a zero-initialised function-local variable whose contents are
/// irrelevant to the final result (records the `IrrelevantPointee` fact).
///
/// Precondition: the fresh id is fresh, the function exists and the pointer
/// type `Function -> pointee` is already declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddLocalVariable {
    /// Id for the new variable.
    pub fresh_id: Id,
    /// The function receiving the variable.
    pub function: Id,
    /// Id of the pointee (data) type.
    pub pointee: Id,
}

impl AddLocalVariable {
    fn pointer_type(&self, ctx: &Context) -> Option<Id> {
        ctx.module.lookup_type(&Type::Pointer {
            storage: StorageClass::Function,
            pointee: self.pointee,
        })
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        ctx.fresh_and_distinct(&[self.fresh_id])
            && ctx.module.function(self.function).is_some()
            && self.pointer_type(ctx).is_some()
            && ctx
                .module
                .type_of(self.pointee)
                .is_some_and(|t| t.is_scalar() || t.is_composite())
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let ty = self.pointer_type(ctx).expect("checked by precondition");
        let function = ctx
            .module
            .function_mut(self.function)
            .expect("checked by precondition");
        function.blocks[0].instructions.insert(
            0,
            Instruction::with_result(
                self.fresh_id,
                ty,
                Op::Variable { storage: StorageClass::Function, initializer: None },
            ),
        );
        ctx.facts.add_irrelevant_pointee(self.fresh_id);
        cover_ids(&mut ctx.module, &[self.fresh_id]);
    }
}
