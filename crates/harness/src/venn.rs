//! Three-set Venn segment counts, used for Figure 7 ("complementarity of
//! spirv-fuzz, spirv-fuzz-simple and glsl-fuzz with respect to bug
//! finding").

use std::collections::BTreeSet;

/// The seven segment counts of a three-set Venn diagram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VennSegments {
    /// Only in A.
    pub only_a: usize,
    /// Only in B.
    pub only_b: usize,
    /// Only in C.
    pub only_c: usize,
    /// In A and B, not C.
    pub a_and_b: usize,
    /// In A and C, not B.
    pub a_and_c: usize,
    /// In B and C, not A.
    pub b_and_c: usize,
    /// In all three.
    pub all: usize,
}

impl VennSegments {
    /// Total number of distinct elements across the three sets.
    #[must_use]
    pub fn total(&self) -> usize {
        self.only_a
            + self.only_b
            + self.only_c
            + self.a_and_b
            + self.a_and_c
            + self.b_and_c
            + self.all
    }
}

/// Computes the Venn segments of three sets.
pub fn venn_segments<T: Ord + Clone>(
    a: &BTreeSet<T>,
    b: &BTreeSet<T>,
    c: &BTreeSet<T>,
) -> VennSegments {
    let mut segments = VennSegments::default();
    let mut union: BTreeSet<T> = BTreeSet::new();
    union.extend(a.iter().cloned());
    union.extend(b.iter().cloned());
    union.extend(c.iter().cloned());
    for item in union {
        match (a.contains(&item), b.contains(&item), c.contains(&item)) {
            (true, false, false) => segments.only_a += 1,
            (false, true, false) => segments.only_b += 1,
            (false, false, true) => segments.only_c += 1,
            (true, true, false) => segments.a_and_b += 1,
            (true, false, true) => segments.a_and_c += 1,
            (false, true, true) => segments.b_and_c += 1,
            (true, true, true) => segments.all += 1,
            (false, false, false) => unreachable!("item from the union"),
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> BTreeSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn segments_partition_the_union() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        let c = set(&[4, 5, 6]);
        let v = venn_segments(&a, &b, &c);
        assert_eq!(v.only_a, 2); // 1, 2
        assert_eq!(v.a_and_b, 1); // 3
        assert_eq!(v.all, 1); // 4
        assert_eq!(v.b_and_c, 1); // 5
        assert_eq!(v.only_c, 1); // 6
        assert_eq!(v.only_b, 0);
        assert_eq!(v.a_and_c, 0);
        assert_eq!(v.total(), 6);
    }

    #[test]
    fn empty_sets() {
        let e = BTreeSet::<u32>::new();
        assert_eq!(venn_segments(&e, &e, &e).total(), 0);
    }
}
