//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements exactly the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_bool, gen_range}` and
//! `seq::SliceRandom::{choose, shuffle}`. The generator is xoshiro256**
//! seeded via SplitMix64 — deterministic across platforms, which is all the
//! campaign machinery needs (the exact stream differs from upstream rand).

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Samples a u64 in `[0, bound)` without modulo bias (Lemire-style rejection).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $ty;
                }
                let offset = uniform_below(rng, span as u64);
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = super::uniform_below(rng, self.len() as u64) as usize;
                self.get(index)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
