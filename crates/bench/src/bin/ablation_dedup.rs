//! Ablation for the §3.5 design decision: does ignoring the *supporting*
//! transformation types improve deduplication?
//!
//! Runs the Table 4 pipeline twice over the same reduced tests — once with
//! the ignore list (the paper's configuration) and once on raw type sets —
//! and scores both against ground truth.
//!
//! Usage: `ablation_dedup [--tests N] [--cap K] [--seed S]`

use std::collections::{BTreeMap, BTreeSet};

use trx_bench::{arg_u64, arg_usize, render_table};
use trx_harness::campaign::{
    generate_test, parallel_map, reduce_test, run_campaign, BugSignature, Tool,
};
use trx_harness::corpus::donor_modules;
use trx_targets::catalog;

fn main() {
    let tests = arg_usize("--tests", 1500);
    let cap = arg_usize("--cap", 15);
    let seed = arg_u64("--seed", 0);
    let targets: Vec<_> = catalog::all_targets()
        .into_iter()
        .filter(|t| t.name() != "NVIDIA")
        .collect();
    let donors = donor_modules();
    eprintln!("running {tests} tests, cap {cap}/signature ...");
    let outcome = run_campaign(Tool::SpirvFuzz, &targets, tests, seed);

    let mut rows = Vec::new();
    let mut totals = [[0usize; 3]; 2]; // [arm][reports, distinct, dups]
    for (t, target) in targets.iter().enumerate() {
        // Gather reduced tests with BOTH type-set variants.
        let mut per_signature: BTreeMap<BugSignature, usize> = BTreeMap::new();
        let mut work = Vec::new();
        for (i, signature) in outcome.per_test[t].iter().enumerate() {
            let Some(signature @ BugSignature::Crash(_)) = signature else { continue };
            let counter = per_signature.entry(signature.clone()).or_insert(0);
            if *counter < cap {
                *counter += 1;
                work.push((seed + i as u64, signature.clone()));
            }
        }
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let reduced: Vec<_> = parallel_map(threads, work.len(), |w| {
            let (test_seed, signature) = &work[w];
            let r = reduce_test(Tool::SpirvFuzz, *test_seed, target, &donors, signature)?;
            // Recompute the *raw* type set by replaying the reduction.
            let test = generate_test(Tool::SpirvFuzz, *test_seed, &donors);
            let reduction = trx_reducer::Reducer::default().reduce(
                &test.original,
                &test.transformations,
                |variant| {
                    trx_harness::campaign::classify(
                        Tool::SpirvFuzz,
                        target,
                        &test.original,
                        &variant.module,
                        &test.original.inputs,
                    )
                    .as_ref()
                        == Some(signature)
                },
            );
            Some((
                r.ground_truth,
                trx_dedup::interesting_types(&reduction.sequence),
                trx_dedup::all_types(&reduction.sequence),
            ))
        })
        .into_iter()
        .flatten()
        .collect();
        if reduced.is_empty() {
            continue;
        }
        for (arm, pick_sets) in [
            reduced.iter().map(|(_, a, _)| a.clone()).collect::<Vec<_>>(),
            reduced.iter().map(|(_, _, b)| b.clone()).collect::<Vec<_>>(),
        ]
        .into_iter()
        .enumerate()
        {
            let picked = trx_dedup::deduplicate_sets(&pick_sets);
            let distinct: BTreeSet<_> = picked
                .iter()
                .filter_map(|&i| reduced[i].0.clone())
                .collect();
            totals[arm][0] += picked.len();
            totals[arm][1] += distinct.len();
            totals[arm][2] += picked.len().saturating_sub(distinct.len());
            if arm == 0 {
                rows.push(vec![
                    target.name().to_owned(),
                    picked.len().to_string(),
                    distinct.len().to_string(),
                ]);
            } else {
                let row = rows.last_mut().expect("arm 0 pushed first");
                row.push(picked.len().to_string());
                row.push(distinct.len().to_string());
            }
        }
    }
    rows.push(vec![
        "Total".into(),
        totals[0][0].to_string(),
        totals[0][1].to_string(),
        totals[1][0].to_string(),
        totals[1][1].to_string(),
    ]);
    println!("Ablation: the §3.5 supporting-type ignore list\n");
    print!(
        "{}",
        render_table(
            &[
                "Target",
                "reports (ignore)",
                "distinct (ignore)",
                "reports (raw)",
                "distinct (raw)"
            ],
            &rows
        )
    );
    println!(
        "\nignore list: {} dups over {} reports; raw sets: {} dups over {} reports",
        totals[0][2], totals[0][0], totals[1][2], totals[1][0]
    );
    println!(
        "(Raw type sets share supporting types like AddType across unrelated tests,\n\
         so fewer tests survive the disjointness filter — coverage drops.)"
    );
}
