//! Property-based tests over the whole stack, using the fuzzers themselves
//! as generators of "arbitrary realistic modules".

use proptest::prelude::*;

use transfuzz::baseline::{cross_compile, BaselineFuzzer};
use transfuzz::core::Context;
use transfuzz::fuzzer::{Fuzzer, FuzzerOptions};
use transfuzz::harness::corpus::{donor_modules, reference_shader, REFERENCE_COUNT};
use transfuzz::ir::validate::validate;
use transfuzz::ir::{binary, interp};
use transfuzz::targets::catalog;

fn fuzzed_module(seed: u64) -> Context {
    let reference = reference_shader(seed as usize % REFERENCE_COUNT);
    let original = Context::new(reference.module, reference.inputs).unwrap();
    Fuzzer::new(FuzzerOptions::default())
        .run(original, &donor_modules(), seed)
        .context
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2.6, property-based: any seed's variant is valid and
    /// semantics-preserving under both fuzzers.
    #[test]
    fn variants_preserve_semantics(seed in 0u64..5_000) {
        let reference = reference_shader(seed as usize % REFERENCE_COUNT);
        let original = Context::new(reference.module, reference.inputs).unwrap();
        let expected = interp::execute(&original.module, &original.inputs).unwrap();

        let spirv = Fuzzer::new(FuzzerOptions::default())
            .run(original.clone(), &donor_modules(), seed);
        prop_assert!(validate(&spirv.context.module).is_ok());
        prop_assert_eq!(
            &interp::execute(&spirv.context.module, &original.inputs).unwrap(),
            &expected
        );

        let glsl = BaselineFuzzer::default().run(original.clone(), &donor_modules(), seed);
        prop_assert!(validate(&glsl.context.module).is_ok());
        prop_assert_eq!(
            &interp::execute(&glsl.context.module, &original.inputs).unwrap(),
            &expected
        );
    }

    /// The binary codec round-trips arbitrary fuzzed modules exactly.
    #[test]
    fn binary_round_trip_on_fuzzed_modules(seed in 0u64..5_000) {
        let ctx = fuzzed_module(seed);
        let words = binary::encode(&ctx.module);
        let decoded = binary::decode(&words).expect("decode");
        prop_assert_eq!(ctx.module, decoded);
    }

    /// Cross-compilation (the glslang analogue) is semantics-preserving and
    /// idempotent on fuzzed modules.
    #[test]
    fn cross_compile_preserves_and_is_idempotent(seed in 0u64..5_000) {
        let ctx = fuzzed_module(seed);
        let crossed = cross_compile(&ctx.module);
        prop_assert!(validate(&crossed).is_ok());
        prop_assert_eq!(
            interp::execute(&ctx.module, &ctx.inputs).unwrap(),
            interp::execute(&crossed, &ctx.inputs).unwrap()
        );
        prop_assert_eq!(cross_compile(&crossed), crossed.clone());
    }

    /// Every clean optimizer pass pipeline preserves semantics on fuzzed
    /// modules — the correctness baseline that injected bugs perturb.
    #[test]
    fn optimizer_pipelines_preserve_semantics(seed in 0u64..5_000) {
        let ctx = fuzzed_module(seed);
        let expected = interp::execute(&ctx.module, &ctx.inputs).unwrap();
        let mut optimized = ctx.module.clone();
        for pass in transfuzz::targets::PassKind::ALL {
            pass.run(&mut optimized);
            let result = interp::execute(&optimized, &ctx.inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", pass.name()));
            prop_assert_eq!(&result, &expected, "after {}", pass.name());
        }
    }

    /// Crash signatures are stable: compiling the same module twice yields
    /// the same outcome (targets are deterministic).
    #[test]
    fn targets_are_deterministic(seed in 0u64..2_000) {
        let ctx = fuzzed_module(seed);
        for target in catalog::all_targets() {
            let a = target.execute(&ctx.module, &ctx.inputs);
            let b = target.execute(&ctx.module, &ctx.inputs);
            prop_assert_eq!(a, b, "{}", target.name());
        }
    }

    /// The disassembler's size measure is consistent: the delta between a
    /// module and itself is zero lines.
    #[test]
    fn disassembly_self_delta_is_zero(seed in 0u64..5_000) {
        let ctx = fuzzed_module(seed);
        let text = transfuzz::ir::disasm::disassemble(&ctx.module);
        prop_assert_eq!(
            transfuzz::ir::disasm::changed_line_count(&text, &text),
            0
        );
    }
}
