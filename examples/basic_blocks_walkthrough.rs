//! A guided walkthrough of the paper's §2.1 example: the "basic blocks"
//! language of Table 1, the transformation chain of Figure 4, and the
//! reduction of Figure 5.
//!
//! Run with: `cargo run --example basic_blocks_walkthrough`

use transfuzz::basicblocks::{
    apply_sequence, figure4, reduce, run, Branch, Ctx, Instr, Operand, Program,
};

fn describe(program: &Program) -> String {
    let mut out = String::new();
    for block in &program.blocks {
        out.push_str(&format!("  {}:\n", block.name));
        for instr in &block.instrs {
            let line = match instr {
                Instr::Assign { dst, src } => format!("{dst} := {}", operand(src)),
                Instr::Add { dst, lhs, rhs } => {
                    format!("{dst} := {} + {}", operand(lhs), operand(rhs))
                }
                Instr::Print { src } => format!("print({})", operand(src)),
            };
            out.push_str(&format!("    {line}\n"));
        }
        let branch = match &block.branch {
            Branch::Halt => "halt".to_owned(),
            Branch::Goto(t) => format!("goto {t}"),
            Branch::CondGoto { var, if_true, if_false } => {
                format!("if {var} goto {if_true} else {if_false}")
            }
        };
        out.push_str(&format!("    {branch}\n"));
    }
    out
}

fn operand(op: &Operand) -> String {
    match op {
        Operand::Var(v) => v.clone(),
        Operand::Lit(v) => v.to_string(),
    }
}

fn main() {
    let mut ctx = Ctx {
        program: figure4::original_program(),
        inputs: figure4::inputs(),
        dead_blocks: Default::default(),
    };
    println!("=== Figure 4: the original program (prints 6 on i=1, j=2, k=true) ===");
    print!("{}", describe(&ctx.program));
    println!("output: {:?}\n", run(&ctx.program, &ctx.inputs).unwrap());

    let names = ["SplitBlock(a,1,b)", "AddDeadBlock(a,c,u)", "AddStore(c,0,s,i)",
                 "AddLoad(b,0,v,s)", "ChangeRHS(a,1,k)"];
    for (t, name) in figure4::transformations().iter().zip(names) {
        assert!(t.precondition(&ctx), "{name} must be applicable");
        t.apply(&mut ctx);
        println!("=== after T = {name} ===");
        print!("{}", describe(&ctx.program));
        println!("output: {:?}  (unchanged)\n", run(&ctx.program, &ctx.inputs).unwrap());
    }

    // Figure 5: suppose a hypothetical compiler bug triggers whenever a
    // dead block's guard has been obfuscated (assigned from a variable).
    println!("=== Figure 5: reducing against the hypothetical bug ===");
    let bug = |ctx: &Ctx| {
        ctx.program.blocks.iter().any(|b| {
            let Branch::CondGoto { var, .. } = &b.branch else { return false };
            b.instrs.iter().any(
                |i| matches!(i, Instr::Assign { dst, src: Operand::Var(_) } if dst == var),
            )
        })
    };
    let original = Ctx {
        program: figure4::original_program(),
        inputs: figure4::inputs(),
        dead_blocks: Default::default(),
    };
    let minimized = reduce(&original, &figure4::transformations(), bug);
    println!(
        "minimized sequence ({} of 5 transformations): {:?}\n",
        minimized.len(),
        ["T1 SplitBlock", "T2 AddDeadBlock", "T5 ChangeRHS"]
    );
    let mut reduced = original.clone();
    apply_sequence(&mut reduced, &minimized);
    println!("=== P3, the reduced variant ===");
    print!("{}", describe(&reduced.program));
    println!("output: {:?}", run(&reduced.program, &reduced.inputs).unwrap());
}
