//! # trx-basicblocks
//!
//! The paper's §2.1 "basic blocks" language, implemented end to end: the
//! language itself, the five transformation templates of Table 1, facts,
//! sequence application with precondition skipping (Definition 2.5) and a
//! delta-debugging reducer.
//!
//! The crate's tests reproduce Figure 4 (the transformation chain
//! `T1..T5`) and Figure 5 (the minimized subsequence `T1, T2, T5`) exactly.
//!
//! Every block contains instructions of the form `x := y`, `x := y1 + y2`
//! or `print(y)`; a block branches unconditionally to a single successor or
//! conditionally on a boolean variable.
//!
//! # Example
//!
//! ```
//! use trx_basicblocks::*;
//!
//! let program = figure4::original_program();
//! let inputs = figure4::inputs();
//! assert_eq!(run(&program, &inputs).unwrap(), vec![6]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod improved;

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// An operand: a variable or an integer literal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A variable reference.
    Var(String),
    /// An integer literal.
    Lit(i64),
}

impl Operand {
    /// Shorthand for a variable operand.
    #[must_use]
    pub fn var(name: &str) -> Self {
        Operand::Var(name.to_owned())
    }
}

/// An instruction of the basic-blocks language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `x := y`
    Assign {
        /// Destination variable.
        dst: String,
        /// Source operand.
        src: Operand,
    },
    /// `x := y1 + y2`
    Add {
        /// Destination variable.
        dst: String,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `print(y)`
    Print {
        /// The printed operand.
        src: Operand,
    },
}

/// A block terminator: unconditional or conditional branch, or the end of
/// the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Branch {
    /// Fall off the end (the last block of the figures has no successor).
    Halt,
    /// Unconditional branch.
    Goto(String),
    /// Conditional branch on a boolean variable: edges labelled `var` and
    /// `!var`.
    CondGoto {
        /// The condition variable.
        var: String,
        /// Successor when the variable is true.
        if_true: String,
        /// Successor when it is false.
        if_false: String,
    },
}

/// A basic block: a name, instructions, and a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block's name (`a`, `b`, `c` in the figures).
    pub name: String,
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub branch: Branch,
}

/// A program: an ordered list of blocks; the first is the entry.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The blocks, entry first.
    pub blocks: Vec<BasicBlock>,
}

impl Program {
    /// Finds a block by name.
    #[must_use]
    pub fn block(&self, name: &str) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Finds a block by name, mutably.
    #[must_use]
    pub fn block_mut(&mut self, name: &str) -> Option<&mut BasicBlock> {
        self.blocks.iter_mut().find(|b| b.name == name)
    }

    /// All variables assigned anywhere in the program.
    #[must_use]
    pub fn assigned_vars(&self) -> BTreeSet<String> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter_map(|i| match i {
                Instr::Assign { dst, .. } | Instr::Add { dst, .. } => Some(dst.clone()),
                Instr::Print { .. } => None,
            })
            .collect()
    }

    /// Total instruction count (a simple size measure).
    #[must_use]
    pub fn size(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }
}

/// Input values: boolean inputs are modelled as non-zero integers.
pub type Inputs = BTreeMap<String, i64>;

/// An execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An undefined variable was read.
    UndefinedVariable(String),
    /// A branch targeted a missing block.
    MissingBlock(String),
    /// The step limit was exceeded (treated as non-termination).
    StepLimit,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedVariable(v) => write!(f, "undefined variable {v}"),
            ExecError::MissingBlock(b) => write!(f, "missing block {b}"),
            ExecError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs `program` on `inputs`, returning the printed values.
///
/// # Errors
///
/// Returns an [`ExecError`] on undefined variables, missing branch targets,
/// or when 100,000 steps elapse without halting.
pub fn run(program: &Program, inputs: &Inputs) -> Result<Vec<i64>, ExecError> {
    let mut env: BTreeMap<String, i64> = inputs.clone();
    let mut output = Vec::new();
    let Some(mut current) = program.blocks.first() else {
        return Ok(output);
    };
    let mut steps = 0usize;
    loop {
        for instr in &current.instrs {
            steps += 1;
            if steps > 100_000 {
                return Err(ExecError::StepLimit);
            }
            let read = |env: &BTreeMap<String, i64>, op: &Operand| match op {
                Operand::Lit(v) => Ok(*v),
                Operand::Var(name) => env
                    .get(name)
                    .copied()
                    .ok_or_else(|| ExecError::UndefinedVariable(name.clone())),
            };
            match instr {
                Instr::Assign { dst, src } => {
                    let value = read(&env, src)?;
                    env.insert(dst.clone(), value);
                }
                Instr::Add { dst, lhs, rhs } => {
                    let value = read(&env, lhs)?.wrapping_add(read(&env, rhs)?);
                    env.insert(dst.clone(), value);
                }
                Instr::Print { src } => output.push(read(&env, src)?),
            }
        }
        steps += 1;
        if steps > 100_000 {
            return Err(ExecError::StepLimit);
        }
        match &current.branch {
            Branch::Halt => return Ok(output),
            Branch::Goto(target) => {
                current = program
                    .block(target)
                    .ok_or_else(|| ExecError::MissingBlock(target.clone()))?;
            }
            Branch::CondGoto { var, if_true, if_false } => {
                let value = env
                    .get(var)
                    .copied()
                    .ok_or_else(|| ExecError::UndefinedVariable(var.clone()))?;
                let target = if value != 0 { if_true } else { if_false };
                current = program
                    .block(target)
                    .ok_or_else(|| ExecError::MissingBlock(target.clone()))?;
            }
        }
    }
}

/// The context the transformations operate on: program, inputs, and facts.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    /// The program.
    pub program: Program,
    /// The input values.
    pub inputs: Inputs,
    /// Blocks known never to execute (the `dead` annotation in Figure 4).
    pub dead_blocks: BTreeSet<String>,
}

/// The five transformation templates of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transformation {
    /// `SplitBlock(b, o, f)`: instructions `b[o]` onward move to a new
    /// block `f`.
    SplitBlock {
        /// The block to split.
        block: String,
        /// The split offset.
        offset: usize,
        /// Fresh name for the new block.
        fresh: String,
    },
    /// `AddDeadBlock(b, f1, f2)`: a new block `f1` is introduced, guarded
    /// by the fresh always-true variable `f2`; records "`f1` is dead".
    AddDeadBlock {
        /// The block gaining a conditional.
        block: String,
        /// Fresh name for the dead block.
        fresh_block: String,
        /// Fresh name for the guard variable.
        fresh_var: String,
    },
    /// `AddLoad(b, o, f, x)`: `f := x` added at index `o`.
    AddLoad {
        /// The block receiving the load.
        block: String,
        /// Insertion offset.
        offset: usize,
        /// Fresh destination variable.
        fresh: String,
        /// Existing source variable.
        source: String,
    },
    /// `AddStore(b, o, x1, x2)`: `x1 := x2` added at index `o`; requires
    /// the fact "`b` is dead".
    AddStore {
        /// The (dead) block receiving the store.
        block: String,
        /// Insertion offset.
        offset: usize,
        /// Existing destination variable.
        dst: String,
        /// Existing source variable.
        src: String,
    },
    /// `ChangeRHS(b, o, x)`: in `b[o]` of the form `y := z`, `z` is
    /// replaced by `x`, provided `x` and `z` are guaranteed equal there.
    ChangeRhs {
        /// The block holding the assignment.
        block: String,
        /// The instruction offset.
        offset: usize,
        /// The replacement variable.
        replacement: String,
    },
}

fn block_name_fresh(ctx: &Ctx, name: &str) -> bool {
    ctx.program.block(name).is_none()
}

fn var_exists(ctx: &Ctx, name: &str) -> bool {
    ctx.inputs.contains_key(name) || ctx.program.assigned_vars().contains(name)
}

/// `x` is guaranteed to equal literal `lit` everywhere: `x` is an input
/// that the program never reassigns and whose input value is `lit`.
fn input_constantly(ctx: &Ctx, name: &str, lit: i64) -> bool {
    ctx.inputs.get(name) == Some(&lit) && !ctx.program.assigned_vars().contains(name)
}

impl Transformation {
    /// The transformation's precondition over the context (Table 1's
    /// "Precondition" column).
    #[must_use]
    pub fn precondition(&self, ctx: &Ctx) -> bool {
        match self {
            Transformation::SplitBlock { block, offset, fresh } => {
                block_name_fresh(ctx, fresh)
                    && ctx
                        .program
                        .block(block)
                        .is_some_and(|b| *offset <= b.instrs.len())
            }
            Transformation::AddDeadBlock { block, fresh_block, fresh_var } => {
                block_name_fresh(ctx, fresh_block)
                    && fresh_block != fresh_var
                    && !var_exists(ctx, fresh_var)
                    && ctx
                        .program
                        .block(block)
                        .is_some_and(|b| matches!(b.branch, Branch::Goto(_)))
            }
            Transformation::AddLoad { block, offset, fresh, source } => {
                !var_exists(ctx, fresh)
                    && var_exists(ctx, source)
                    && ctx
                        .program
                        .block(block)
                        .is_some_and(|b| *offset <= b.instrs.len())
            }
            Transformation::AddStore { block, offset, dst, src } => {
                ctx.dead_blocks.contains(block)
                    && var_exists(ctx, dst)
                    && var_exists(ctx, src)
                    && ctx
                        .program
                        .block(block)
                        .is_some_and(|b| *offset <= b.instrs.len())
            }
            Transformation::ChangeRhs { block, offset, replacement } => {
                let Some(b) = ctx.program.block(block) else {
                    return false;
                };
                let Some(Instr::Assign { src: Operand::Lit(lit), .. }) =
                    b.instrs.get(*offset)
                else {
                    return false;
                };
                input_constantly(ctx, replacement, *lit)
            }
        }
    }

    /// The transformation's effect (Table 1's "Effect" column).
    ///
    /// # Panics
    ///
    /// May panic if the precondition does not hold.
    pub fn apply(&self, ctx: &mut Ctx) {
        match self {
            Transformation::SplitBlock { block, offset, fresh } => {
                let b = ctx.program.block_mut(block).expect("precondition");
                let moved = b.instrs.split_off(*offset);
                let branch = std::mem::replace(&mut b.branch, Branch::Goto(fresh.clone()));
                let index = ctx
                    .program
                    .blocks
                    .iter()
                    .position(|blk| blk.name == *block)
                    .expect("precondition");
                ctx.program.blocks.insert(
                    index + 1,
                    BasicBlock { name: fresh.clone(), instrs: moved, branch },
                );
            }
            Transformation::AddDeadBlock { block, fresh_block, fresh_var } => {
                let b = ctx.program.block_mut(block).expect("precondition");
                let Branch::Goto(successor) = b.branch.clone() else {
                    unreachable!("precondition requires an unconditional branch");
                };
                b.instrs.push(Instr::Assign {
                    dst: fresh_var.clone(),
                    src: Operand::Lit(1),
                });
                b.branch = Branch::CondGoto {
                    var: fresh_var.clone(),
                    if_true: successor.clone(),
                    if_false: fresh_block.clone(),
                };
                let index = ctx
                    .program
                    .blocks
                    .iter()
                    .position(|blk| blk.name == *block)
                    .expect("precondition");
                ctx.program.blocks.insert(
                    index + 1,
                    BasicBlock {
                        name: fresh_block.clone(),
                        instrs: Vec::new(),
                        branch: Branch::Goto(successor),
                    },
                );
                ctx.dead_blocks.insert(fresh_block.clone());
            }
            Transformation::AddLoad { block, offset, fresh, source } => {
                let b = ctx.program.block_mut(block).expect("precondition");
                b.instrs.insert(
                    *offset,
                    Instr::Assign { dst: fresh.clone(), src: Operand::var(source) },
                );
            }
            Transformation::AddStore { block, offset, dst, src } => {
                let b = ctx.program.block_mut(block).expect("precondition");
                b.instrs.insert(
                    *offset,
                    Instr::Assign { dst: dst.clone(), src: Operand::var(src) },
                );
            }
            Transformation::ChangeRhs { block, offset, replacement } => {
                let b = ctx.program.block_mut(block).expect("precondition");
                if let Some(Instr::Assign { src, .. }) = b.instrs.get_mut(*offset) {
                    *src = Operand::var(replacement);
                }
            }
        }
    }
}

/// Applies a sequence, skipping transformations whose preconditions fail
/// (Definition 2.5). Returns the applied mask.
pub fn apply_sequence(ctx: &mut Ctx, sequence: &[Transformation]) -> Vec<bool> {
    sequence
        .iter()
        .map(|t| {
            if t.precondition(ctx) {
                t.apply(ctx);
                true
            } else {
                false
            }
        })
        .collect()
}

/// Delta-debugs a transformation sequence to a 1-minimal subsequence for
/// which `interesting` holds of the transformed context (the §2.1 reducer).
pub fn reduce(
    original: &Ctx,
    sequence: &[Transformation],
    mut interesting: impl FnMut(&Ctx) -> bool,
) -> Vec<Transformation> {
    let mut current = sequence.to_vec();
    let mut check = |candidate: &[Transformation]| {
        let mut ctx = original.clone();
        apply_sequence(&mut ctx, candidate);
        interesting(&ctx)
    };
    if !check(&current) {
        return current;
    }
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed = false;
        let mut end = current.len();
        while end > 0 {
            let start = end.saturating_sub(chunk);
            let mut candidate = Vec::new();
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if check(&candidate) {
                current = candidate;
                removed = true;
                end = start.min(current.len());
            } else {
                end = start;
            }
        }
        if removed {
            continue;
        }
        if chunk == 1 {
            return current;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// The exact programs and transformations of Figures 4 and 5.
pub mod figure4 {
    use super::{BasicBlock, Branch, Inputs, Instr, Operand, Program, Transformation};

    /// The original program: block `a` = `[s := i + j; t := s + s;
    /// print(t)]`.
    #[must_use]
    pub fn original_program() -> Program {
        Program {
            blocks: vec![BasicBlock {
                name: "a".into(),
                instrs: vec![
                    Instr::Add {
                        dst: "s".into(),
                        lhs: Operand::var("i"),
                        rhs: Operand::var("j"),
                    },
                    Instr::Add {
                        dst: "t".into(),
                        lhs: Operand::var("s"),
                        rhs: Operand::var("s"),
                    },
                    Instr::Print { src: Operand::var("t") },
                ],
                branch: Branch::Halt,
            }],
        }
    }

    /// The inputs of Figure 4: `i = 1, j = 2, k = true`.
    #[must_use]
    pub fn inputs() -> Inputs {
        [("i".to_owned(), 1), ("j".to_owned(), 2), ("k".to_owned(), 1)]
            .into_iter()
            .collect()
    }

    /// The transformation sequence `T1..T5` of Figure 4.
    #[must_use]
    pub fn transformations() -> Vec<Transformation> {
        vec![
            // T1 = SplitBlock(a, 1, b)
            Transformation::SplitBlock { block: "a".into(), offset: 1, fresh: "b".into() },
            // T2 = AddDeadBlock(a, c, u)
            Transformation::AddDeadBlock {
                block: "a".into(),
                fresh_block: "c".into(),
                fresh_var: "u".into(),
            },
            // T3 = AddStore(c, 0, s, i)
            Transformation::AddStore {
                block: "c".into(),
                offset: 0,
                dst: "s".into(),
                src: "i".into(),
            },
            // T4 = AddLoad(b, 0, v, s)
            Transformation::AddLoad {
                block: "b".into(),
                offset: 0,
                fresh: "v".into(),
                source: "s".into(),
            },
            // T5 = ChangeRHS(a, 1, k)
            Transformation::ChangeRhs {
                block: "a".into(),
                offset: 1,
                replacement: "k".into(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::figure4::{inputs, original_program, transformations};
    use super::*;

    fn original_ctx() -> Ctx {
        Ctx { program: original_program(), inputs: inputs(), dead_blocks: BTreeSet::new() }
    }

    fn bug_triggers(ctx: &Ctx) -> bool {
        // The hypothetical bug of §2.1: "it suffices to add a dead block and
        // obfuscate the fact that it is dead" — i.e. some conditional guard
        // is assigned from a variable rather than a literal.
        ctx.program.blocks.iter().any(|b| {
            let Branch::CondGoto { var, .. } = &b.branch else {
                return false;
            };
            b.instrs.iter().any(|i| {
                matches!(
                    i,
                    Instr::Assign { dst, src: Operand::Var(_) } if dst == var
                )
            })
        })
    }

    #[test]
    fn original_prints_six() {
        assert_eq!(run(&original_program(), &inputs()).unwrap(), vec![6]);
    }

    #[test]
    fn figure4_chain_preserves_output_at_every_step() {
        let mut ctx = original_ctx();
        for (index, t) in transformations().into_iter().enumerate() {
            assert!(t.precondition(&ctx), "T{} precondition", index + 1);
            t.apply(&mut ctx);
            assert_eq!(
                run(&ctx.program, &ctx.inputs).unwrap(),
                vec![6],
                "output changed after T{}",
                index + 1
            );
        }
        // Final shape: blocks a, c, b with c dead.
        assert!(ctx.dead_blocks.contains("c"));
        assert_eq!(ctx.program.blocks.len(), 3);
        // T5 rewrote `u := true` into `u := k`.
        let a = ctx.program.block("a").unwrap();
        assert_eq!(
            a.instrs[1],
            Instr::Assign { dst: "u".into(), src: Operand::var("k") }
        );
        // T3's store sits in the dead block.
        let c = ctx.program.block("c").unwrap();
        assert_eq!(
            c.instrs[0],
            Instr::Assign { dst: "s".into(), src: Operand::var("i") }
        );
        // T4's load leads block b.
        let b = ctx.program.block("b").unwrap();
        assert_eq!(
            b.instrs[0],
            Instr::Assign { dst: "v".into(), src: Operand::var("s") }
        );
    }

    #[test]
    fn skipping_semantics_of_definition_2_5() {
        // Apply the subsequence T1, T3, T4, T5 — the paper's example:
        // "only T1 and T4 are applied: T3's precondition does not hold
        // because block c does not exist; T5 cannot be applied because the
        // assignment u := true is not present."
        let ts = transformations();
        let subsequence = vec![ts[0].clone(), ts[2].clone(), ts[3].clone(), ts[4].clone()];
        let mut ctx = original_ctx();
        let applied = apply_sequence(&mut ctx, &subsequence);
        assert_eq!(applied, vec![true, false, true, false]);
        assert_eq!(run(&ctx.program, &ctx.inputs).unwrap(), vec![6]);
    }

    #[test]
    fn figure5_reduction_finds_t1_t2_t5() {
        let full = transformations();
        // The full sequence triggers the hypothetical bug...
        let mut ctx = original_ctx();
        apply_sequence(&mut ctx, &full);
        assert!(bug_triggers(&ctx));
        // ...and reduction converges on exactly T1, T2, T5 (Figure 5).
        let minimized = reduce(&original_ctx(), &full, bug_triggers);
        assert_eq!(
            minimized,
            vec![full[0].clone(), full[1].clone(), full[4].clone()]
        );
        // The reduced variant is the P3 of Figure 5 and still prints 6.
        let mut reduced_ctx = original_ctx();
        apply_sequence(&mut reduced_ctx, &minimized);
        assert_eq!(run(&reduced_ctx.program, &reduced_ctx.inputs).unwrap(), vec![6]);
        assert!(bug_triggers(&reduced_ctx));
    }

    #[test]
    fn figure5_intermediate_programs_do_not_trigger() {
        // Ticks and cross in Figure 5: P0, P1, P2 do not trigger, P3 does.
        let full = transformations();
        let minimized = [full[0].clone(), full[1].clone(), full[4].clone()];
        for prefix_len in 0..minimized.len() {
            let mut ctx = original_ctx();
            apply_sequence(&mut ctx, &minimized[..prefix_len]);
            assert!(
                !bug_triggers(&ctx),
                "P{prefix_len} must not trigger (1-minimality)"
            );
        }
    }

    #[test]
    fn store_outside_dead_block_rejected() {
        let t = Transformation::AddStore {
            block: "a".into(),
            offset: 0,
            dst: "s".into(),
            src: "i".into(),
        };
        let ctx = original_ctx();
        assert!(!t.precondition(&ctx));
    }

    #[test]
    fn change_rhs_requires_matching_input() {
        // u := true may only become u := k because k = true in the input.
        let mut ctx = original_ctx();
        apply_sequence(&mut ctx, &transformations()[..2]);
        let with_j = Transformation::ChangeRhs {
            block: "a".into(),
            offset: 1,
            replacement: "j".into(),
        };
        // j = 2 != 1, so the guarantee fails.
        assert!(!with_j.precondition(&ctx));
        let with_i = Transformation::ChangeRhs {
            block: "a".into(),
            offset: 1,
            replacement: "i".into(),
        };
        // i = 1 == true's encoding, so this is allowed.
        assert!(with_i.precondition(&ctx));
    }

    #[test]
    fn execution_errors_are_reported() {
        let program = Program {
            blocks: vec![BasicBlock {
                name: "a".into(),
                instrs: vec![Instr::Print { src: Operand::var("nope") }],
                branch: Branch::Halt,
            }],
        };
        assert_eq!(
            run(&program, &Inputs::new()),
            Err(ExecError::UndefinedVariable("nope".into()))
        );
        let looping = Program {
            blocks: vec![BasicBlock {
                name: "a".into(),
                instrs: vec![],
                branch: Branch::Goto("a".into()),
            }],
        };
        assert_eq!(run(&looping, &Inputs::new()), Err(ExecError::StepLimit));
    }

    #[test]
    fn program_size_counts_instructions_and_terminators() {
        assert_eq!(original_program().size(), 4);
    }
}
