//! Fault injection at the harness boundary: a [`FaultyTarget`] wraps any
//! [`Target`] and makes it misbehave the way real compiler-testing
//! infrastructure does — hangs, transient crashes that vanish on retry, and
//! flip-flopping outcomes — while staying fully deterministic per
//! `(plan seed, test)`.
//!
//! The fault decision for a test is a pure function of the plan's seed and a
//! fingerprint of the `(module, inputs)` pair, so two identical campaign
//! runs inject identical faults. Retry behaviour is modelled with a
//! per-test attempt counter: transient faults clear once a test has been
//! attempted [`FaultPlan::transient_ttl`] times, which is exactly what a
//! resilient executor's bounded retry loop needs to be able to recover.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use trx_ir::{interp::ExecConfig, Inputs, Module};

use crate::target::{CompileOutcome, Target, TargetResult, TestTarget};

/// The interpreter budget used to force an injected hang: small enough that
/// any module that reaches execution exhausts it immediately, surfacing as
/// `Fault::StepLimitExceeded` — indistinguishable from a genuine timeout.
const HANG_BUDGET: ExecConfig = ExecConfig {
    step_limit: 1,
    call_depth_limit: 1,
    memory_limit: 65_536,
    value_limit: 1 << 20,
};

/// The kind of fault a plan injects for a particular test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// No fault: the wrapped target behaves normally.
    None,
    /// The worker panics (until the transient TTL expires).
    Panic,
    /// Execution exhausts a shrunken step budget (until the TTL expires).
    Hang,
    /// A spurious compiler crash (until the TTL expires).
    TransientCrash,
    /// The outcome alternates between a spurious crash and the real result
    /// on every attempt, forever.
    FlipFlop,
}

/// A seeded, serializable description of which faults to inject and how
/// often. Probabilities are per *test* (per distinct `(module, inputs)`
/// pair), evaluated in the order panic → hang → transient crash →
/// flip-flop; at most one fault kind applies to a given test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed making all fault decisions deterministic.
    pub seed: u64,
    /// Probability a test's worker panics.
    pub panic_probability: f64,
    /// Probability a test hangs (forced step-limit exhaustion).
    pub hang_probability: f64,
    /// Probability a test crashes spuriously.
    pub transient_crash_probability: f64,
    /// Probability a test's outcome flip-flops on every attempt.
    pub flip_flop_probability: f64,
    /// Number of attempts a transient fault (panic, hang, spurious crash)
    /// survives before the test starts behaving normally. Must be ≥ 1.
    pub transient_ttl: u32,
}

impl FaultPlan {
    /// A plan that injects nothing — the wrapper becomes a transparent
    /// pass-through.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_probability: 0.0,
            hang_probability: 0.0,
            transient_crash_probability: 0.0,
            flip_flop_probability: 0.0,
            transient_ttl: 1,
        }
    }

    /// An aggressive plan for chaos campaigns: roughly one test in five is
    /// disrupted somehow, and transient faults clear after one retry.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_probability: 0.03,
            hang_probability: 0.05,
            transient_crash_probability: 0.08,
            flip_flop_probability: 0.04,
            transient_ttl: 1,
        }
    }

    /// The fault kind this plan injects for a test with fingerprint `key`.
    #[must_use]
    pub fn fault_for(&self, key: u64) -> FaultKind {
        // One uniform draw in [0, 1), checked against cumulative thresholds.
        let unit = (mix(self.seed ^ 0x9e37_79b9_7f4a_7c15, key) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        let mut threshold = self.panic_probability;
        if unit < threshold {
            return FaultKind::Panic;
        }
        threshold += self.hang_probability;
        if unit < threshold {
            return FaultKind::Hang;
        }
        threshold += self.transient_crash_probability;
        if unit < threshold {
            return FaultKind::TransientCrash;
        }
        threshold += self.flip_flop_probability;
        if unit < threshold {
            return FaultKind::FlipFlop;
        }
        FaultKind::None
    }
}

/// A [`Target`] wrapper that injects the faults described by a
/// [`FaultPlan`]. Compilation for ground-truth purposes ([`TestTarget::compile`])
/// is left untouched; only [`TestTarget::execute`] — the path the harness
/// exercises per test — misbehaves.
#[derive(Debug)]
pub struct FaultyTarget {
    inner: Target,
    plan: FaultPlan,
    attempts: Mutex<HashMap<u64, u32>>,
}

impl FaultyTarget {
    /// Wraps `inner` with the fault behaviour of `plan`.
    #[must_use]
    pub fn new(inner: Target, plan: FaultPlan) -> Self {
        assert!(plan.transient_ttl >= 1, "transient_ttl must be at least 1");
        FaultyTarget { inner, plan, attempts: Mutex::new(HashMap::new()) }
    }

    /// The wrapped target.
    #[must_use]
    pub fn inner(&self) -> &Target {
        &self.inner
    }

    /// The plan driving the injection.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault kind injected for a given test, for inspection in tests
    /// and benches.
    #[must_use]
    pub fn fault_for_test(&self, module: &Module, inputs: &Inputs) -> FaultKind {
        self.plan.fault_for(test_key(self.plan.seed, module, inputs))
    }

    /// Forgets all per-test attempt counters, so a repeated campaign over
    /// this instance replays the exact same fault schedule.
    pub fn reset_attempts(&self) {
        self.attempts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Returns the 0-based attempt index for `key` and records the attempt.
    fn bump_attempt(&self, key: u64) -> u32 {
        let mut attempts = self
            .attempts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let counter = attempts.entry(key).or_insert(0);
        let attempt = *counter;
        *counter = counter.saturating_add(1);
        attempt
    }
}

impl TestTarget for FaultyTarget {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn compile(&self, module: &Module) -> CompileOutcome {
        self.inner.compile(module)
    }

    fn execute(&self, module: &Module, inputs: &Inputs) -> TargetResult {
        let key = test_key(self.plan.seed, module, inputs);
        let attempt = self.bump_attempt(key);
        let ttl = self.plan.transient_ttl;
        match self.plan.fault_for(key) {
            FaultKind::Panic if attempt < ttl => {
                panic!(
                    "injected panic in {} (test {key:016x}, attempt {attempt})",
                    self.inner.name()
                );
            }
            FaultKind::Hang if attempt < ttl => self
                .inner
                .clone()
                .with_exec_config(HANG_BUDGET)
                .execute(module, inputs),
            FaultKind::TransientCrash if attempt < ttl => TargetResult::CompilerCrash(
                format!("spurious worker crash in {} (injected)", self.inner.name()),
            ),
            FaultKind::FlipFlop if attempt.is_multiple_of(2) => TargetResult::CompilerCrash(
                format!("flip-flop crash in {} (injected)", self.inner.name()),
            ),
            _ => self.inner.execute(module, inputs),
        }
    }

    fn execute_reference(&self, module: &Module, inputs: &Inputs) -> TargetResult {
        // References are shared across tests and (conceptually) compiled
        // once, so the fault injector leaves them alone — this is also what
        // keeps concurrent campaigns deterministic, since per-test attempt
        // counters never apply to shared modules.
        self.inner.execute(module, inputs)
    }
}

/// A stable fingerprint for a `(module, inputs)` pair under a plan seed:
/// FNV-1a over the debug rendering, which covers every structural detail of
/// the test. Stability across runs of the same binary is all the
/// determinism guarantee needs.
fn test_key(seed: u64, module: &Module, inputs: &Inputs) -> u64 {
    let mut hasher = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(hasher, "{module:?}|{inputs:?}");
    mix(seed, hasher.0)
}

/// SplitMix64-style avalanche of two words into one.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a accumulator usable as a `fmt::Write` sink, so fingerprinting
/// never materialises the debug string.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use trx_ir::{Fault, ModuleBuilder};

    fn simple_module() -> Module {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(7);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        b.finish()
    }

    fn modules(n: usize) -> Vec<Module> {
        (0..n)
            .map(|i| {
                let mut b = ModuleBuilder::new();
                let c = b.constant_int(i as i32);
                let mut f = b.begin_entry_function("main");
                f.store_output("out", c);
                f.ret();
                f.finish();
                b.finish()
            })
            .collect()
    }

    #[test]
    fn none_plan_is_transparent() {
        let target = catalog::target_by_name("SwiftShader").unwrap();
        let faulty = FaultyTarget::new(target.clone(), FaultPlan::none(1));
        let module = simple_module();
        let inputs = Inputs::default();
        assert_eq!(
            TestTarget::execute(&faulty, &module, &inputs),
            Target::execute(&target, &module, &inputs)
        );
    }

    #[test]
    fn fault_decisions_are_deterministic_and_seed_sensitive() {
        let plan_a = FaultPlan::chaos(1);
        let plan_b = FaultPlan::chaos(2);
        let keys: Vec<u64> = (0..2_000).map(|i| mix(7, i)).collect();
        let first: Vec<FaultKind> = keys.iter().map(|&k| plan_a.fault_for(k)).collect();
        let again: Vec<FaultKind> = keys.iter().map(|&k| plan_a.fault_for(k)).collect();
        assert_eq!(first, again, "same plan, same decisions");
        let other: Vec<FaultKind> = keys.iter().map(|&k| plan_b.fault_for(k)).collect();
        assert_ne!(first, other, "different seeds disagree somewhere");
        // The chaos plan actually injects something.
        assert!(first.iter().any(|k| *k != FaultKind::None));
        assert!(first.iter().filter(|k| **k == FaultKind::None).count() > keys.len() / 2);
    }

    #[test]
    fn transient_crash_clears_after_ttl() {
        let target = catalog::target_by_name("SwiftShader").unwrap();
        let mut plan = FaultPlan::none(3);
        plan.transient_crash_probability = 1.0;
        plan.transient_ttl = 2;
        let faulty = FaultyTarget::new(target.clone(), plan);
        let module = simple_module();
        let inputs = Inputs::default();
        for _ in 0..2 {
            assert!(matches!(
                TestTarget::execute(&faulty, &module, &inputs),
                TargetResult::CompilerCrash(ref s) if s.contains("spurious")
            ));
        }
        assert_eq!(
            TestTarget::execute(&faulty, &module, &inputs),
            Target::execute(&target, &module, &inputs),
            "the fault must clear after transient_ttl attempts"
        );
    }

    #[test]
    fn hang_surfaces_as_step_limit_fault() {
        let target = catalog::target_by_name("SwiftShader").unwrap();
        let mut plan = FaultPlan::none(4);
        plan.hang_probability = 1.0;
        let faulty = FaultyTarget::new(target, plan);
        let module = simple_module();
        assert_eq!(
            TestTarget::execute(&faulty, &module, &Inputs::default()),
            TargetResult::RuntimeFault(Fault::StepLimitExceeded)
        );
    }

    #[test]
    fn flip_flop_alternates_forever() {
        let target = catalog::target_by_name("SwiftShader").unwrap();
        let mut plan = FaultPlan::none(5);
        plan.flip_flop_probability = 1.0;
        let faulty = FaultyTarget::new(target.clone(), plan);
        let module = simple_module();
        let inputs = Inputs::default();
        let clean = Target::execute(&target, &module, &inputs);
        for round in 0..3 {
            assert!(
                matches!(
                    TestTarget::execute(&faulty, &module, &inputs),
                    TargetResult::CompilerCrash(ref s) if s.contains("flip-flop")
                ),
                "round {round}: even attempts crash"
            );
            assert_eq!(
                TestTarget::execute(&faulty, &module, &inputs),
                clean,
                "round {round}: odd attempts behave"
            );
        }
    }

    #[test]
    fn injected_panic_fires_and_reset_replays_the_schedule() {
        let target = catalog::target_by_name("SwiftShader").unwrap();
        let mut plan = FaultPlan::none(6);
        plan.panic_probability = 1.0;
        let faulty = FaultyTarget::new(target, plan);
        let module = simple_module();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TestTarget::execute(&faulty, &module, &Inputs::default())
        }));
        assert!(result.is_err(), "first attempt must panic");
        // Second attempt is past the TTL and succeeds.
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TestTarget::execute(&faulty, &module, &Inputs::default())
        }));
        assert!(second.is_ok());
        // After a reset, the schedule replays from the beginning.
        faulty.reset_attempts();
        let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TestTarget::execute(&faulty, &module, &Inputs::default())
        }));
        assert!(replay.is_err(), "reset must replay the injected panic");
    }

    #[test]
    fn distinct_tests_get_independent_decisions() {
        let plan = FaultPlan::chaos(8);
        let inputs = Inputs::default();
        let kinds: Vec<FaultKind> = modules(400)
            .iter()
            .map(|m| plan.fault_for(test_key(plan.seed, m, &inputs)))
            .collect();
        assert!(kinds.iter().any(|k| *k != FaultKind::None));
        assert!(kinds.contains(&FaultKind::None));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::chaos(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
