//! Statistics for the evaluation: medians and the Mann–Whitney U test used
//! throughout §4.1 (Table 3's confidence columns).

/// The median of a sample (mean of the two central elements for even sizes).
///
/// Returns `None` for an empty sample.
#[must_use]
pub fn median(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// The outcome of a one-sided Mann–Whitney U comparison of two samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// One-sided confidence (in percent) that the first sample is
    /// stochastically larger than the second — the number reported in
    /// Table 3's "spirv-fuzz beats ...?" columns.
    pub confidence_first_larger: f64,
}

impl MannWhitney {
    /// `true` when the first sample is judged larger with the usual 95%
    /// threshold.
    #[must_use]
    pub fn significant(&self) -> bool {
        self.confidence_first_larger >= 95.0
    }
}

/// Runs the Mann–Whitney U test (normal approximation with tie correction),
/// following the original Mann & Whitney 1947 formulation the paper cites.
///
/// Returns `None` when either sample is empty or all values are identical
/// (no ordering information).
#[must_use]
pub fn mann_whitney_u(first: &[f64], second: &[f64]) -> Option<MannWhitney> {
    if first.is_empty() || second.is_empty() {
        return None;
    }
    let n1 = first.len() as f64;
    let n2 = second.len() as f64;

    // Rank the pooled sample with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = first
        .iter()
        .map(|&v| (v, 0usize))
        .chain(second.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));

    let total = pooled.len();
    let mut ranks = vec![0.0f64; total];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < total {
        let mut j = i;
        while j + 1 < total && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let tied = (j - i + 1) as f64;
        let mid_rank = (i + 1 + j + 1) as f64 / 2.0;
        for rank in ranks.iter_mut().take(j + 1).skip(i) {
            *rank = mid_rank;
        }
        tie_correction += tied * tied * tied - tied;
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, &rank)| rank)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let n = n1 + n2;
    let mean = n1 * n2 / 2.0;
    let variance = (n1 * n2 / 12.0) * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
    if variance <= 0.0 {
        // All observations identical: no evidence either way.
        return Some(MannWhitney { u: u1, confidence_first_larger: 50.0 });
    }
    // Continuity-corrected z for the one-sided "first larger" alternative.
    let z = (u1 - mean - 0.5) / variance.sqrt();
    let confidence = normal_cdf(z) * 100.0;
    Some(MannWhitney { u: u1, confidence_first_larger: confidence })
}

/// The standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7, plenty for reporting percentages).
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t
            - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.959_96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn clearly_larger_sample_wins() {
        let big = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0, 19.0];
        let small = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 0.0];
        let result = mann_whitney_u(&big, &small).unwrap();
        assert!(result.confidence_first_larger > 99.9, "{result:?}");
        assert!(result.significant());
        let reversed = mann_whitney_u(&small, &big).unwrap();
        assert!(reversed.confidence_first_larger < 0.1, "{reversed:?}");
    }

    #[test]
    fn identical_samples_are_inconclusive() {
        let a = vec![5.0; 10];
        let result = mann_whitney_u(&a, &a).unwrap();
        assert!((result.confidence_first_larger - 50.0).abs() < f64::EPSILON);
        assert!(!result.significant());
    }

    #[test]
    fn ties_are_handled() {
        let a = vec![1.0, 2.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 2.0, 3.0, 3.0, 1.0];
        let result = mann_whitney_u(&a, &b).unwrap();
        assert!(result.confidence_first_larger > 0.0);
        assert!(result.confidence_first_larger < 100.0);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }
}
