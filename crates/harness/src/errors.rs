//! Typed errors for the harness hot paths.
//!
//! The campaign and executor code paths used to panic on internal
//! inconsistencies; a resilient campaign instead routes these into the
//! [`crate::executor::ErrorLedger`] so one broken test or target cannot
//! take down a long-running run.

use std::fmt;

/// An error on a harness hot path (test generation, classification,
/// checkpointing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// A reference shader failed validation when building a test — an
    /// internal invariant violation surfaced as data instead of a panic.
    ReferenceInvalid {
        /// The seed whose reference failed.
        seed: u64,
        /// The validator's message.
        reason: String,
    },
    /// A worker panicked; the payload message was captured.
    WorkerPanicked {
        /// What the panic payload said.
        message: String,
    },
    /// A checkpoint does not describe the campaign being resumed.
    CheckpointMismatch {
        /// Which field disagreed.
        reason: String,
    },
    /// A write-ahead-log record (other than a torn final line) failed to
    /// parse — the journal is corrupt, not merely truncated.
    WalCorrupt {
        /// 1-based line number of the unparseable record.
        line: usize,
        /// The parser's message.
        reason: String,
    },
    /// A write-ahead log does not describe the pipeline being resumed.
    WalMismatch {
        /// Which field disagreed.
        reason: String,
    },
    /// Reading or writing a journal file failed.
    Io(String),
    /// Serialising or parsing a checkpoint or report failed.
    Serialization(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::ReferenceInvalid { seed, reason } => {
                write!(f, "reference for seed {seed} failed validation: {reason}")
            }
            HarnessError::WorkerPanicked { message } => {
                write!(f, "worker panicked: {message}")
            }
            HarnessError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match this campaign: {reason}")
            }
            HarnessError::WalCorrupt { line, reason } => {
                write!(f, "journal line {line} is corrupt: {reason}")
            }
            HarnessError::WalMismatch { reason } => {
                write!(f, "journal does not match this pipeline: {reason}")
            }
            HarnessError::Io(message) => {
                write!(f, "journal I/O failed: {message}")
            }
            HarnessError::Serialization(message) => {
                write!(f, "serialization failed: {message}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<serde_json::Error> for HarnessError {
    fn from(e: serde_json::Error) -> Self {
        HarnessError::Serialization(e.to_string())
    }
}

/// Renders a `catch_unwind` payload as a readable message.
#[must_use]
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
