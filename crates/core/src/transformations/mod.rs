//! The transformation catalogue, grouped by family.
//!
//! Every public struct here is one transformation template; see
//! [`Transformation`](crate::Transformation) for the sum type and the
//! engine.

pub(crate) mod blocks;
pub(crate) mod functions;
pub(crate) mod memory;
pub(crate) mod misc;
pub(crate) mod supporting;
pub(crate) mod synonyms;
mod util;

pub use blocks::{
    AddDeadBlock, InvertConditionalBranch, MoveBlockDown, PropagateInstructionUp,
    ReplaceBranchWithKill, SelectionForm, SplitBlock, WrapRegionInSelection, EscapePatch,
};
pub use functions::{AddFunction, AddParameter, FunctionCall, InlineFunction, SetFunctionControl};
pub use memory::{AddAccessChain, AddLoad, AddStore};
pub use misc::{ReplaceConstantWithUniform, ReplaceIrrelevantId, SwapCommutativeOperands};
pub use supporting::{AddConstant, AddGlobalVariable, AddLocalVariable, AddType};
pub use synonyms::{
    AddArithmeticSynonym, ArithmeticIdentity, CompositeConstruct, CompositeExtract, CopyObject,
    ReplaceIdWithSynonym,
};
