//! Correct optimizer passes over `trx-ir` modules.
//!
//! These form the pipelines of the simulated compilers; injected bugs are
//! layered on top of them (see [`bugs`](crate::bugs)), so a clean pipeline is
//! a correct compiler: `interp(optimize(P), I) == interp(P, I)` for every
//! valid `P` and input `I`.

use std::collections::{HashMap, HashSet};

use trx_ir::cfg::Dominators;
use trx_ir::{
    BinOp, ConstantValue, Function, FunctionControl, Id, Instruction, Merge, Module, Op,
    Terminator, UnOp,
};

/// The optimizer passes available to target pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum PassKind {
    CopyPropagation,
    ConstantFolding,
    DeadCodeElimination,
    CfgSimplification,
    LocalCse,
    Inlining,
    PhiSimplification,
    StoreLoadForwarding,
}

impl PassKind {
    /// All pass kinds.
    pub const ALL: [PassKind; 8] = [
        PassKind::CopyPropagation,
        PassKind::ConstantFolding,
        PassKind::DeadCodeElimination,
        PassKind::CfgSimplification,
        PassKind::LocalCse,
        PassKind::Inlining,
        PassKind::PhiSimplification,
        PassKind::StoreLoadForwarding,
    ];

    /// A human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PassKind::CopyPropagation => "copy-propagation",
            PassKind::ConstantFolding => "constant-folding",
            PassKind::DeadCodeElimination => "dce",
            PassKind::CfgSimplification => "cfg-simplification",
            PassKind::LocalCse => "local-cse",
            PassKind::Inlining => "inlining",
            PassKind::PhiSimplification => "phi-simplification",
            PassKind::StoreLoadForwarding => "store-load-forwarding",
        }
    }

    /// Runs the pass over `module`.
    pub fn run(self, module: &mut Module) {
        match self {
            PassKind::CopyPropagation => copy_propagation(module),
            PassKind::ConstantFolding => constant_folding(module),
            PassKind::DeadCodeElimination => dead_code_elimination(module),
            PassKind::CfgSimplification => cfg_simplification(module),
            PassKind::LocalCse => local_cse(module),
            PassKind::Inlining => inlining(module),
            PassKind::PhiSimplification => phi_simplification(module),
            PassKind::StoreLoadForwarding => store_load_forwarding(module),
        }
    }
}

fn replace_uses(function: &mut Function, replacements: &HashMap<Id, Id>) {
    if replacements.is_empty() {
        return;
    }
    let subst = |id: &mut Id| {
        // Chase chains (a -> b -> c) to a fixpoint.
        let mut guard = 0;
        while let Some(next) = replacements.get(id) {
            *id = *next;
            guard += 1;
            if guard > replacements.len() {
                break;
            }
        }
    };
    for block in &mut function.blocks {
        for inst in &mut block.instructions {
            inst.op.for_each_id_operand_mut(subst);
        }
        block.terminator.for_each_id_operand_mut(subst);
    }
}

/// Replaces uses of `OpCopyObject` results with their sources and removes
/// the copies.
pub fn copy_propagation(module: &mut Module) {
    for function in &mut module.functions {
        let mut replacements: HashMap<Id, Id> = HashMap::new();
        for block in &function.blocks {
            for inst in &block.instructions {
                if let (Some(result), Op::CopyObject { src }) = (inst.result, &inst.op) {
                    replacements.insert(result, *src);
                }
            }
        }
        replace_uses(function, &replacements);
        for block in &mut function.blocks {
            block
                .instructions
                .retain(|i| !matches!(i.op, Op::CopyObject { .. }));
        }
    }
}

fn constant_of(module: &Module, id: Id) -> Option<ConstantValue> {
    module.constant(id).map(|c| c.value.clone())
}

fn fold_binary(op: BinOp, l: &ConstantValue, r: &ConstantValue) -> Option<ConstantValue> {
    use BinOp::*;
    let int = |v: &ConstantValue| v.as_int();
    let boolean = |v: &ConstantValue| v.as_bool();
    Some(match op {
        IAdd => ConstantValue::Int(int(l)?.wrapping_add(int(r)?)),
        ISub => ConstantValue::Int(int(l)?.wrapping_sub(int(r)?)),
        IMul => ConstantValue::Int(int(l)?.wrapping_mul(int(r)?)),
        SDiv => {
            let (a, b) = (int(l)?, int(r)?);
            ConstantValue::Int(if b == 0 { 0 } else { a.wrapping_div(b) })
        }
        SRem => {
            let (a, b) = (int(l)?, int(r)?);
            ConstantValue::Int(if b == 0 { 0 } else { a.wrapping_rem(b) })
        }
        BitAnd => ConstantValue::Int(int(l)? & int(r)?),
        BitOr => ConstantValue::Int(int(l)? | int(r)?),
        BitXor => ConstantValue::Int(int(l)? ^ int(r)?),
        ShiftLeft => ConstantValue::Int(int(l)?.wrapping_shl(int(r)? as u32 & 31)),
        ShiftRightArith => ConstantValue::Int(int(l)?.wrapping_shr(int(r)? as u32 & 31)),
        LogicalAnd => ConstantValue::Bool(boolean(l)? && boolean(r)?),
        LogicalOr => ConstantValue::Bool(boolean(l)? || boolean(r)?),
        IEqual => ConstantValue::Bool(int(l)? == int(r)?),
        INotEqual => ConstantValue::Bool(int(l)? != int(r)?),
        SLessThan => ConstantValue::Bool(int(l)? < int(r)?),
        SLessThanEqual => ConstantValue::Bool(int(l)? <= int(r)?),
        SGreaterThan => ConstantValue::Bool(int(l)? > int(r)?),
        SGreaterThanEqual => ConstantValue::Bool(int(l)? >= int(r)?),
        // Floats are deliberately not folded: keeps the pass trivially
        // bit-exact with the interpreter.
        _ => return None,
    })
}

fn fold_unary(op: UnOp, v: &ConstantValue) -> Option<ConstantValue> {
    Some(match op {
        UnOp::SNegate => ConstantValue::Int(v.as_int()?.wrapping_neg()),
        UnOp::BitNot => ConstantValue::Int(!v.as_int()?),
        UnOp::LogicalNot => ConstantValue::Bool(!v.as_bool()?),
        _ => return None,
    })
}

/// Folds constant expressions, rewiring uses to (possibly new) constants,
/// and folds conditional branches on constant conditions.
pub fn constant_folding(module: &mut Module) {
    // Collect folds first (needs immutable access to constants).
    let mut new_constants: Vec<(Id, Id, ConstantValue)> = Vec::new();
    let mut replacements_per_fn: Vec<HashMap<Id, Id>> = Vec::new();
    let mut alloc = module.allocator();
    for function in &module.functions {
        let mut replacements: HashMap<Id, Id> = HashMap::new();
        for block in &function.blocks {
            for inst in &block.instructions {
                let (Some(result), Some(ty)) = (inst.result, inst.ty) else {
                    continue;
                };
                let folded = match &inst.op {
                    Op::Binary { op, lhs, rhs } => {
                        match (constant_of(module, *lhs), constant_of(module, *rhs)) {
                            (Some(l), Some(r)) => fold_binary(*op, &l, &r),
                            _ => None,
                        }
                    }
                    Op::Unary { op, src } => {
                        constant_of(module, *src).and_then(|v| fold_unary(*op, &v))
                    }
                    Op::Select { cond, if_true, if_false } => {
                        let chosen = match constant_of(module, *cond)
                            .and_then(|c| c.as_bool())
                        {
                            Some(true) => Some(*if_true),
                            Some(false) => Some(*if_false),
                            None => None,
                        };
                        if let Some(id) = chosen {
                            replacements.insert(result, id);
                        }
                        None
                    }
                    _ => None,
                };
                if let Some(value) = folded {
                    // Find or mint a constant id for the folded value.
                    let existing = module.lookup_constant(ty, &value).or_else(|| {
                        new_constants
                            .iter()
                            .find(|(_, t, v)| *t == ty && *v == value)
                            .map(|(id, _, _)| *id)
                    });
                    let id = existing.unwrap_or_else(|| {
                        let id = alloc.fresh();
                        new_constants.push((id, ty, value));
                        id
                    });
                    replacements.insert(result, id);
                }
            }
        }
        replacements_per_fn.push(replacements);
    }
    for (id, ty, value) in new_constants {
        module.constants.push(trx_ir::ConstantDecl { id, ty, value });
        module.ensure_bound_covers(id);
    }
    for (function, replacements) in module.functions.iter_mut().zip(&replacements_per_fn) {
        // Drop the folded instructions, then rewire.
        for block in &mut function.blocks {
            block.instructions.retain(|i| {
                i.result.is_none_or(|r| !replacements.contains_key(&r))
            });
        }
        replace_uses(function, replacements);
    }

    // Fold conditional branches on constants.
    for fi in 0..module.functions.len() {
        let labels: Vec<Id> = module.functions[fi].blocks.iter().map(|b| b.label).collect();
        for label in labels {
            let (cond_value, true_t, false_t) = {
                let block = module.functions[fi].block(label).expect("label listed");
                match &block.terminator {
                    Terminator::BranchConditional { cond, true_target, false_target } => {
                        match constant_of(module, *cond).and_then(|c| c.as_bool()) {
                            Some(v) => (v, *true_target, *false_target),
                            None => continue,
                        }
                    }
                    _ => continue,
                }
            };
            let taken = if cond_value { true_t } else { false_t };
            let not_taken = if cond_value { false_t } else { true_t };
            let block = module.functions[fi].block_mut(label).expect("label listed");
            block.terminator = Terminator::Branch { target: taken };
            if matches!(block.merge, Some(Merge::Selection { .. })) {
                block.merge = None;
            }
            // The edge to the not-taken side is gone; prune its phis
            // (only when the two targets differed).
            if taken != not_taken {
                let not_taken_block =
                    module.functions[fi].block_mut(not_taken).expect("target exists");
                for inst in &mut not_taken_block.instructions {
                    if let Op::Phi { incoming } = &mut inst.op {
                        incoming.retain(|(_, p)| *p != label);
                    }
                }
            }
        }
    }
}

/// Removes pure instructions whose results are never used.
pub fn dead_code_elimination(module: &mut Module) {
    for function in &mut module.functions {
        loop {
            let mut used: HashSet<Id> = HashSet::new();
            for block in &function.blocks {
                for inst in &block.instructions {
                    inst.op.for_each_id_operand(|id| {
                        used.insert(id);
                    });
                }
                for id in block.terminator.id_operands() {
                    used.insert(id);
                }
            }
            let mut removed = false;
            for block in &mut function.blocks {
                let before = block.instructions.len();
                block.instructions.retain(|inst| {
                    let removable = inst
                        .result
                        .is_some_and(|r| !used.contains(&r))
                        && !inst.op.has_side_effects()
                        && !matches!(inst.op, Op::Phi { .. });
                    !removable
                });
                removed |= block.instructions.len() != before;
            }
            if !removed {
                break;
            }
        }
    }
}

/// Removes CFG-unreachable blocks and merges straight-line block chains.
pub fn cfg_simplification(module: &mut Module) {
    for function in &mut module.functions {
        // Drop unreachable blocks.
        let dom = Dominators::compute(function);
        let reachable: HashSet<Id> = function
            .blocks
            .iter()
            .map(|b| b.label)
            .filter(|&l| dom.is_reachable(l))
            .collect();
        let removed: Vec<Id> = function
            .blocks
            .iter()
            .map(|b| b.label)
            .filter(|l| !reachable.contains(l))
            .collect();
        function.blocks.retain(|b| reachable.contains(&b.label));
        for block in &mut function.blocks {
            for inst in &mut block.instructions {
                if let Op::Phi { incoming } = &mut inst.op {
                    incoming.retain(|(_, p)| !removed.contains(p));
                }
            }
        }

        // Merge `a -> b` chains where b has a single predecessor and no
        // phis, and a has no merge annotation guarding its branch.
        loop {
            let mut merged = false;
            let labels: Vec<Id> = function.blocks.iter().map(|b| b.label).collect();
            for a_label in labels {
                let Some(a) = function.block(a_label) else { continue };
                let Terminator::Branch { target: b_label } = a.terminator else {
                    continue;
                };
                if a.merge.is_some() || b_label == a_label {
                    continue;
                }
                let preds = function.predecessors(b_label);
                let Some(b) = function.block(b_label) else { continue };
                if preds.len() != 1 || b.phi_count() > 0 {
                    continue;
                }
                if b_label == function.entry_label() {
                    continue;
                }
                // No other block may use b as a merge/continue target.
                let referenced = function.blocks.iter().any(|blk| {
                    blk.merge
                        .is_some_and(|m| m.referenced_labels().contains(&b_label))
                });
                if referenced {
                    continue;
                }
                // Splice b into a.
                let b_index = function.block_index(b_label).expect("exists");
                let b_block = function.blocks.remove(b_index);
                let a_index = function.block_index(a_label).expect("exists");
                let a_block = &mut function.blocks[a_index];
                a_block.instructions.extend(b_block.instructions);
                a_block.merge = b_block.merge;
                a_block.terminator = b_block.terminator;
                // Phi predecessors referencing b now come from a.
                for block in &mut function.blocks {
                    for inst in &mut block.instructions {
                        if let Op::Phi { incoming } = &mut inst.op {
                            for (_, p) in incoming {
                                if *p == b_label {
                                    *p = a_label;
                                }
                            }
                        }
                    }
                }
                merged = true;
                break;
            }
            if !merged {
                break;
            }
        }
    }
}

/// Local common-subexpression elimination within each block.
pub fn local_cse(module: &mut Module) {
    for function in &mut module.functions {
        let mut replacements: HashMap<Id, Id> = HashMap::new();
        for block in &mut function.blocks {
            let mut seen: HashMap<String, Id> = HashMap::new();
            block.instructions.retain(|inst| {
                let Some(result) = inst.result else { return true };
                let pure = matches!(
                    inst.op,
                    Op::Binary { .. }
                        | Op::Unary { .. }
                        | Op::Select { .. }
                        | Op::CompositeConstruct { .. }
                        | Op::CompositeExtract { .. }
                        | Op::CompositeInsert { .. }
                );
                if !pure {
                    return true;
                }
                // A cheap structural key; operands have already been
                // canonicalised by earlier retains in this block.
                let key = format!("{:?}|{:?}", inst.ty, inst.op);
                match seen.get(&key) {
                    Some(&prior) => {
                        replacements.insert(result, prior);
                        false
                    }
                    None => {
                        seen.insert(key, result);
                        true
                    }
                }
            });
        }
        replace_uses(function, &replacements);
    }
}

/// Inlines calls to small functions, honouring `FunctionControl` hints:
/// `DontInline` is never inlined, `Inline` always is, and unannotated
/// functions are inlined when their body is small.
pub fn inlining(module: &mut Module) {
    const SMALL_BODY: usize = 12;
    // Repeatedly inline the first eligible call; bounded by the absence of
    // recursion plus a safety counter.
    for _ in 0..64 {
        let Some((fi, bi, ii)) = find_inlinable_call(module, SMALL_BODY) else {
            return;
        };
        inline_call_at(module, fi, bi, ii);
    }
}

fn find_inlinable_call(module: &Module, small: usize) -> Option<(usize, usize, usize)> {
    for (fi, function) in module.functions.iter().enumerate() {
        for (bi, block) in function.blocks.iter().enumerate() {
            for (ii, inst) in block.instructions.iter().enumerate() {
                let Op::Call { callee, .. } = &inst.op else { continue };
                let Some(callee_fn) = module.function(*callee) else { continue };
                let eligible = match callee_fn.control {
                    FunctionControl::DontInline => false,
                    FunctionControl::Inline => true,
                    FunctionControl::None => callee_fn.instruction_count() <= small,
                };
                // Only single-block callees without kills are inlined by
                // this simple inliner.
                if eligible
                    && callee_fn.blocks.len() == 1
                    && matches!(
                        callee_fn.blocks[0].terminator,
                        Terminator::Return | Terminator::ReturnValue { .. }
                    )
                {
                    return Some((fi, bi, ii));
                }
            }
        }
    }
    None
}

fn inline_call_at(module: &mut Module, fi: usize, bi: usize, ii: usize) {
    let inst = module.functions[fi].blocks[bi].instructions[ii].clone();
    let Op::Call { callee, args } = inst.op else {
        unreachable!("caller located a call");
    };
    let callee_fn = module.function(callee).expect("callee exists").clone();
    let body = callee_fn.blocks[0].clone();

    let mut alloc = module.allocator();
    let mut map: HashMap<Id, Id> = callee_fn
        .params
        .iter()
        .map(|p| p.id)
        .zip(args.iter().copied())
        .collect();
    // Copy body instructions with fresh result ids, splicing them in place
    // of the call; variables keep working because single-block callees hold
    // them in that same block (still the entry block after inlining only if
    // the caller block is the entry — so rehome them).
    let mut new_instructions: Vec<Instruction> = Vec::new();
    let mut hoisted: Vec<Instruction> = Vec::new();
    for body_inst in &body.instructions {
        let mut copy = body_inst.clone();
        if let Some(r) = copy.result {
            let fresh = alloc.fresh();
            map.insert(r, fresh);
            copy.result = Some(fresh);
        }
        copy.op.for_each_id_operand_mut(|id| {
            if let Some(new) = map.get(id) {
                *id = *new;
            }
        });
        if copy.is_variable() {
            hoisted.push(copy);
        } else {
            new_instructions.push(copy);
        }
    }
    let returned = match &body.terminator {
        Terminator::ReturnValue { value } => Some(map.get(value).copied().unwrap_or(*value)),
        _ => None,
    };
    // Wire the call result to the returned value via a copy (cleaned by
    // copy-propagation on a later run).
    if let (Some(result), Some(value), Some(ty)) = (inst.result, returned, inst.ty) {
        new_instructions.push(Instruction::with_result(
            result,
            ty,
            Op::CopyObject { src: value },
        ));
    }
    let caller = &mut module.functions[fi];
    caller.blocks[bi]
        .instructions
        .splice(ii..=ii, new_instructions);
    caller.blocks[0].instructions.splice(0..0, hoisted);
    module.id_bound = alloc.bound();
}

/// Replaces phis whose incomings all carry the same value with that value.
pub fn phi_simplification(module: &mut Module) {
    for function in &mut module.functions {
        let mut replacements: HashMap<Id, Id> = HashMap::new();
        for block in &mut function.blocks {
            block.instructions.retain(|inst| {
                let (Some(result), Op::Phi { incoming }) = (inst.result, &inst.op) else {
                    return true;
                };
                let mut values: Vec<Id> = incoming.iter().map(|(v, _)| *v).collect();
                values.dedup();
                if values.len() == 1 && !incoming.is_empty() {
                    replacements.insert(result, values[0]);
                    false
                } else {
                    true
                }
            });
        }
        replace_uses(function, &replacements);
    }
}

/// Forwards stored values to subsequent loads of the same pointer within a
/// block (conservatively invalidated by any other store or call).
pub fn store_load_forwarding(module: &mut Module) {
    for function in &mut module.functions {
        let mut replacements: HashMap<Id, Id> = HashMap::new();
        for block in &mut function.blocks {
            let mut known: HashMap<Id, Id> = HashMap::new();
            for inst in &block.instructions {
                match &inst.op {
                    Op::Store { pointer, value } => {
                        // A store to one pointer invalidates knowledge about
                        // others only if they may alias; our pointers are
                        // distinct roots or access chains, so conservatively
                        // clear everything except this root.
                        known.clear();
                        known.insert(*pointer, *value);
                    }
                    Op::Call { .. } => known.clear(),
                    Op::Load { pointer } => {
                        if let (Some(result), Some(&value)) =
                            (inst.result, known.get(pointer))
                        {
                            replacements.insert(result, value);
                        }
                    }
                    _ => {}
                }
            }
            block.instructions.retain(|inst| {
                inst.result
                    .is_none_or(|r| !replacements.contains_key(&r))
            });
        }
        replace_uses(function, &replacements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_ir::validate::validate;
    use trx_ir::{interp, Inputs, ModuleBuilder, Value};

    fn check_pass_preserves(module: &Module, pass: PassKind) -> Module {
        let inputs = Inputs::default();
        let reference = interp::execute(module, &inputs).expect("reference runs");
        let mut optimized = module.clone();
        pass.run(&mut optimized);
        validate(&optimized)
            .unwrap_or_else(|e| panic!("{} broke validity: {e}", pass.name()));
        let result = interp::execute(&optimized, &inputs).expect("optimized runs");
        assert_eq!(reference, result, "{} changed semantics", pass.name());
        optimized
    }

    fn arithmetic_module() -> Module {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c2 = b.constant_int(2);
        let c3 = b.constant_int(3);
        let mut f = b.begin_entry_function("main");
        let x = f.imul(t_int, c2, c3);
        let copy = f.copy_object(x);
        let y = f.iadd(t_int, copy, c2);
        let y2 = f.iadd(t_int, copy, c2); // CSE fodder
        let z = f.iadd(t_int, y, y2);
        f.store_output("out", z);
        f.ret();
        f.finish();
        b.finish()
    }

    #[test]
    fn copy_propagation_removes_copies() {
        let m = arithmetic_module();
        let optimized = check_pass_preserves(&m, PassKind::CopyPropagation);
        let copies = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::CopyObject { .. }))
            .count();
        assert_eq!(copies, 0);
    }

    #[test]
    fn constant_folding_folds_arithmetic() {
        let m = arithmetic_module();
        let optimized = check_pass_preserves(&m, PassKind::ConstantFolding);
        // 2*3 folded away.
        let muls = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::Binary { op: BinOp::IMul, .. }))
            .count();
        assert_eq!(muls, 0);
    }

    #[test]
    fn dce_removes_unused() {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c = b.constant_int(5);
        let mut f = b.begin_entry_function("main");
        let _unused = f.iadd(t_int, c, c);
        f.store_output("out", c);
        f.ret();
        f.finish();
        let m = b.finish();
        let optimized = check_pass_preserves(&m, PassKind::DeadCodeElimination);
        assert_eq!(
            optimized.entry_function().entry_block().instructions.len(),
            1 // just the store
        );
    }

    #[test]
    fn cse_merges_duplicates() {
        let m = arithmetic_module();
        let optimized = check_pass_preserves(&m, PassKind::LocalCse);
        let adds = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::Binary { op: BinOp::IAdd, .. }))
            .count();
        assert_eq!(adds, 2, "one duplicated add should be eliminated");
    }

    fn branching_module(cond_value: bool) -> Module {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c_cond = b.constant_bool(cond_value);
        let c1 = b.constant_int(1);
        let c2 = b.constant_int(2);
        let mut f = b.begin_entry_function("main");
        let then_l = f.reserve_label();
        let merge_l = f.reserve_label();
        let entry = f.current_label();
        f.selection_merge(merge_l);
        f.branch_cond(c_cond, then_l, merge_l);
        f.begin_block_with_label(then_l);
        let doubled = f.imul(t_int, c2, c2);
        f.branch(merge_l);
        f.begin_block_with_label(merge_l);
        let phi = f.phi(t_int, vec![(doubled, then_l), (c1, entry)]);
        f.store_output("out", phi);
        f.ret();
        f.finish();
        b.finish()
    }

    #[test]
    fn branch_folding_prunes_phis() {
        for value in [true, false] {
            let m = branching_module(value);
            let optimized = check_pass_preserves(&m, PassKind::ConstantFolding);
            let entry = optimized.entry_function().entry_block();
            assert!(
                matches!(entry.terminator, Terminator::Branch { .. }),
                "constant branch should fold"
            );
        }
    }

    #[test]
    fn cfg_simplification_after_branch_folding() {
        let m = branching_module(false);
        let mut optimized = m.clone();
        PassKind::ConstantFolding.run(&mut optimized);
        let optimized2 = check_pass_preserves(&optimized, PassKind::CfgSimplification);
        // then-block unreachable, merged/removed; far fewer blocks.
        assert!(
            optimized2.entry_function().blocks.len()
                < m.entry_function().blocks.len()
        );
    }

    fn call_module(control: FunctionControl) -> Module {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c2 = b.constant_int(2);
        let mut h = b.begin_function(t_int, &[t_int]);
        h.set_control(control);
        let p = h.param_ids()[0];
        let doubled = h.imul(t_int, p, c2);
        h.ret_value(doubled);
        let helper = h.finish();
        let c21 = b.constant_int(21);
        let mut f = b.begin_entry_function("main");
        let r = f.call(helper, vec![c21]);
        f.store_output("out", r);
        f.ret();
        f.finish();
        b.finish()
    }

    #[test]
    fn inlining_respects_dont_inline() {
        let m = call_module(FunctionControl::DontInline);
        let optimized = check_pass_preserves(&m, PassKind::Inlining);
        let calls = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::Call { .. }))
            .count();
        assert_eq!(calls, 1, "DontInline must be honoured");

        let m = call_module(FunctionControl::None);
        let optimized = check_pass_preserves(&m, PassKind::Inlining);
        let calls = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::Call { .. }))
            .count();
        assert_eq!(calls, 0, "small functions inline");
    }

    #[test]
    fn phi_simplification_collapses_trivial_phis() {
        let mut m = branching_module(true);
        // Make both phi incomings the same constant.
        let c1 = m.constants.iter().find(|c| c.value == ConstantValue::Int(1)).unwrap().id;
        let f = m.functions.first_mut().unwrap();
        for block in &mut f.blocks {
            for inst in &mut block.instructions {
                if let Op::Phi { incoming } = &mut inst.op {
                    for (v, _) in incoming {
                        *v = c1;
                    }
                }
            }
        }
        let optimized = check_pass_preserves(&m, PassKind::PhiSimplification);
        let phis = optimized
            .entry_function()
            .instructions()
            .filter(|i| i.is_phi())
            .count();
        assert_eq!(phis, 0);
    }

    #[test]
    fn store_load_forwarding_within_block() {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c7 = b.constant_int(7);
        let mut f = b.begin_entry_function("main");
        let v = f.local_var(t_int, None);
        f.store(v, c7);
        let loaded = f.load(v);
        f.store_output("out", loaded);
        f.ret();
        f.finish();
        let m = b.finish();
        let optimized = check_pass_preserves(&m, PassKind::StoreLoadForwarding);
        let loads = optimized
            .entry_function()
            .instructions()
            .filter(|i| matches!(i.op, Op::Load { .. }))
            .count();
        assert_eq!(loads, 0, "the load should be forwarded");
    }

    #[test]
    fn full_pipeline_preserves_semantics_on_uniform_input() {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let u = b.uniform("k", t_int);
        let c10 = b.constant_int(10);
        let mut f = b.begin_entry_function("main");
        let loaded = f.load(u);
        let sum = f.iadd(t_int, loaded, c10);
        f.store_output("out", sum);
        f.ret();
        f.finish();
        let m = b.finish();
        let inputs = Inputs::new().with("k", Value::Int(5));
        let reference = interp::execute(&m, &inputs).unwrap();
        let mut optimized = m;
        for pass in PassKind::ALL {
            pass.run(&mut optimized);
            validate(&optimized).unwrap_or_else(|e| panic!("{}: {e}", pass.name()));
        }
        assert_eq!(reference, interp::execute(&optimized, &inputs).unwrap());
    }

    use trx_ir::ConstantValue;
}
