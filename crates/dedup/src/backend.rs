//! Pluggable deduplication backends.
//!
//! The paper evaluates exactly one dedup heuristic — the transformation-type
//! set of §3.5 — and can only compare it against crash-signature dedup
//! because real compilers hide ground truth. Our simulated targets don't:
//! every [`trx_targets::Target`] is an explicit pass pipeline with labeled
//! injected bugs, so *any* dedup strategy can be scored for precision and
//! recall against known bug identities. This module defines the common
//! interface: a [`DedupBackend`] consumes one [`FindingEvidence`] per
//! reduced finding and emits an opaque comparable [`DedupKey`]; findings
//! with equal keys are considered duplicates.
//!
//! Three backends are provided:
//!
//! * [`TransformationSetBackend`] — the paper's heuristic, wrapping the
//!   existing [`interesting_types`](crate::interesting_types) /
//!   [`deduplicate_sets`](crate::deduplicate_sets) path. Its
//!   recommendations are byte-identical to the legacy pipeline output.
//! * [`CrashSignatureBackend`] — the industry baseline the paper compares
//!   against: two findings are duplicates iff they came from the same
//!   target with the same crash signature (or are both miscompilations).
//! * [`PassBisectionBackend`](crate::bisect::PassBisectionBackend) — dedup
//!   by the optimizer pass that introduces the failure, located by binary
//!   search over pipeline prefixes (arXiv 2506.23281).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use trx_core::{Transformation, TransformationKind};
use trx_ir::{Inputs, Module};
use trx_observe::SinkHandle;

use crate::{deduplicate_sets, interesting_types};

/// How a finding manifested: a crash signature or a silent miscompilation.
///
/// Mirrors the harness's bug-signature taxonomy (compiler crashes and
/// runtime faults both render as `Crash` with the scraped signature
/// string).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FindingOutcome {
    /// The target crashed (at compile time, or at runtime — rendered as
    /// `runtime fault: …` by the harness).
    Crash(String),
    /// The target silently produced wrong output.
    Miscompilation,
}

impl fmt::Display for FindingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingOutcome::Crash(sig) => write!(f, "crash: {sig}"),
            FindingOutcome::Miscompilation => write!(f, "miscompilation"),
        }
    }
}

/// Everything a backend may consult about one reduced finding.
///
/// The transformation-set backend reads only `sequence`; crash-signature
/// reads `target` and `outcome`; pass bisection re-compiles `module` under
/// pipeline prefixes and re-runs it on `inputs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FindingEvidence {
    /// Name of the target the finding was observed on.
    pub target: String,
    /// How the finding manifested.
    pub outcome: FindingOutcome,
    /// The reduced transformation sequence that still exposes the bug.
    pub sequence: Vec<Transformation>,
    /// The reduced module, as prepared for the target (post
    /// transformation-application, pre optimization).
    pub module: Module,
    /// The inputs that exposed the finding.
    pub inputs: Inputs,
}

/// An opaque, comparable deduplication verdict: two findings are considered
/// duplicates exactly when their keys are equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DedupKey {
    /// The paper's §3.5 heuristic: the set of non-supporting
    /// transformation kinds remaining after reduction.
    TypeSet {
        /// Interesting (non-supporting) transformation kinds in the
        /// reduced sequence.
        types: BTreeSet<TransformationKind>,
    },
    /// Crash-signature dedup: same target, same rendered outcome.
    Signature {
        /// Target the finding was observed on.
        target: String,
        /// Rendered outcome (`crash: …` or `miscompilation`).
        signature: String,
    },
    /// Pass-bisection dedup: the pipeline pass that introduces the
    /// failure.
    Pass {
        /// Target the finding was observed on.
        target: String,
        /// Name of the culprit pass, or `front-end` when the failure
        /// fires before any pass runs.
        culprit: String,
    },
    /// The backend could not assign a meaningful key (unknown target,
    /// finding not reproducible under probing, …). Unresolved keys still
    /// compare — two findings failing the same way share one.
    Unresolved {
        /// Target the finding was observed on.
        target: String,
        /// Why no key could be assigned.
        reason: String,
    },
}

/// A deduplication strategy: maps findings to comparable keys and picks
/// which findings to recommend for manual inspection.
pub trait DedupBackend: Send + Sync {
    /// Stable backend name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Computes the dedup key for one finding. Probe-style backends report
    /// their work through `sink` under [`trx_observe::Scope::Dedup`].
    fn key(&self, evidence: &FindingEvidence, sink: &SinkHandle) -> DedupKey;

    /// Given the keys of all findings in arrival order, returns the indices
    /// to recommend for manual inspection. The default keeps the first
    /// finding of each distinct key.
    fn recommend(&self, keys: &[DedupKey]) -> Vec<usize> {
        let mut seen: BTreeSet<&DedupKey> = BTreeSet::new();
        let mut kept = Vec::new();
        for (index, key) in keys.iter().enumerate() {
            if seen.insert(key) {
                kept.push(index);
            }
        }
        kept
    }
}

/// The paper's transformation-type-set heuristic as a [`DedupBackend`].
///
/// `recommend` routes through [`deduplicate_sets`], so its output is
/// *identical* to the legacy non-backend pipeline path — including the
/// greedy smallest-set-first cover and the rule that empty sets are never
/// recommended (which the default first-per-key rule would violate).
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformationSetBackend;

impl DedupBackend for TransformationSetBackend {
    fn name(&self) -> &'static str {
        "transformation-set"
    }

    fn key(&self, evidence: &FindingEvidence, _sink: &SinkHandle) -> DedupKey {
        DedupKey::TypeSet {
            types: interesting_types(&evidence.sequence),
        }
    }

    fn recommend(&self, keys: &[DedupKey]) -> Vec<usize> {
        let sets: Vec<BTreeSet<TransformationKind>> = keys
            .iter()
            .map(|key| match key {
                DedupKey::TypeSet { types } => types.clone(),
                // Foreign keys carry no type set; treat as empty (never
                // recommended), matching the legacy path's view.
                _ => BTreeSet::new(),
            })
            .collect();
        deduplicate_sets(&sets)
    }
}

/// Crash-signature dedup: the baseline the paper's §5.4 compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashSignatureBackend;

impl DedupBackend for CrashSignatureBackend {
    fn name(&self) -> &'static str {
        "crash-signature"
    }

    fn key(&self, evidence: &FindingEvidence, _sink: &SinkHandle) -> DedupKey {
        DedupKey::Signature {
            target: evidence.target.clone(),
            signature: evidence.outcome.to_string(),
        }
    }
}

/// Which [`DedupBackend`] a pipeline run uses. Serialized into job specs
/// and the pipeline WAL's `Start` record (as its kebab-case name — see the
/// hand-written serde impls below); the default is skipped when serializing
/// the `Start` record so existing golden files stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupBackendKind {
    /// The paper's transformation-type-set heuristic (the default — the
    /// legacy pipeline path, byte-identical output).
    #[default]
    TransformationSet,
    /// Pass-prefix bisection (arXiv 2506.23281) against the catalog
    /// targets.
    PassBisection,
    /// Same-target same-signature dedup.
    CrashSignature,
}

impl DedupBackendKind {
    /// True for the default kind — used as a `skip_serializing_if`
    /// predicate so journals written before backends existed replay
    /// unchanged.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == DedupBackendKind::TransformationSet
    }

    /// Stable kebab-case name, matching the serde representation.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DedupBackendKind::TransformationSet => "transformation-set",
            DedupBackendKind::PassBisection => "pass-bisection",
            DedupBackendKind::CrashSignature => "crash-signature",
        }
    }

    /// Parses the kebab-case name back into a kind.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "transformation-set" => Some(DedupBackendKind::TransformationSet),
            "pass-bisection" => Some(DedupBackendKind::PassBisection),
            "crash-signature" => Some(DedupBackendKind::CrashSignature),
            _ => None,
        }
    }

    /// Instantiates the backend. Pass bisection probes the standard
    /// catalog targets; findings from unknown targets fall back to
    /// signature keys.
    #[must_use]
    pub fn instantiate(self) -> Box<dyn DedupBackend> {
        match self {
            DedupBackendKind::TransformationSet => Box::new(TransformationSetBackend),
            DedupBackendKind::PassBisection => {
                Box::new(crate::bisect::PassBisectionBackend::from_catalog())
            }
            DedupBackendKind::CrashSignature => Box::new(CrashSignatureBackend),
        }
    }
}

impl fmt::Display for DedupBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-written (de)serialization: the offline serde stand-in has no
// `#[serde(rename_all)]`, and the kind's wire form is its kebab-case name.
impl Serialize for DedupBackendKind {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.name().to_string())
    }
}

impl Deserialize for DedupBackendKind {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(name) => DedupBackendKind::parse(name).ok_or_else(|| {
                serde::Error::msg(format!("DedupBackendKind: unknown backend `{name}`"))
            }),
            other => Err(serde::Error::msg(format!(
                "DedupBackendKind: expected string, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_core::transformations::{AddType, SetFunctionControl};
    use trx_ir::{FunctionControl, Id, Type};

    fn trivial_module() -> Module {
        let mut b = trx_ir::ModuleBuilder::new();
        let c = b.constant_int(0);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        b.finish()
    }

    fn evidence(sequence: Vec<Transformation>, outcome: FindingOutcome) -> FindingEvidence {
        FindingEvidence {
            target: "toy".to_string(),
            outcome,
            sequence,
            module: trivial_module(),
            inputs: Inputs::default(),
        }
    }

    #[test]
    fn transformation_set_backend_reproduces_legacy_recommendations() {
        let seqs: Vec<Vec<Transformation>> = vec![
            vec![SetFunctionControl {
                function: Id::new(1),
                control: FunctionControl::Inline,
            }
            .into()],
            // Supporting-only sequence: empty set, never recommended.
            vec![AddType {
                fresh_id: Id::new(999),
                ty: Type::Int,
            }
            .into()],
            vec![SetFunctionControl {
                function: Id::new(2),
                control: FunctionControl::DontInline,
            }
            .into()],
        ];
        let backend = TransformationSetBackend;
        let sink = SinkHandle::noop();
        let keys: Vec<DedupKey> = seqs
            .iter()
            .map(|s| backend.key(&evidence(s.clone(), FindingOutcome::Miscompilation), &sink))
            .collect();
        let sets: Vec<_> = seqs.iter().map(|s| interesting_types(s)).collect();
        assert_eq!(backend.recommend(&keys), deduplicate_sets(&sets));
        // The empty set is not recommended even though its key is distinct
        // from nothing — the default first-per-key rule would keep it.
        assert_eq!(backend.recommend(&keys), vec![0]);
    }

    #[test]
    fn crash_signature_backend_keys_on_target_and_outcome() {
        let backend = CrashSignatureBackend;
        let sink = SinkHandle::noop();
        let a = backend.key(
            &evidence(Vec::new(), FindingOutcome::Crash("boom".into())),
            &sink,
        );
        let b = backend.key(
            &evidence(Vec::new(), FindingOutcome::Crash("boom".into())),
            &sink,
        );
        let c = backend.key(&evidence(Vec::new(), FindingOutcome::Miscompilation), &sink);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(backend.recommend(&[a, b, c]), vec![0, 2]);
    }

    #[test]
    fn backend_kind_round_trips_names_and_serde() {
        for kind in [
            DedupBackendKind::TransformationSet,
            DedupBackendKind::PassBisection,
            DedupBackendKind::CrashSignature,
        ] {
            assert_eq!(DedupBackendKind::parse(kind.name()), Some(kind));
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.name()));
            let back: DedupBackendKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        assert!(DedupBackendKind::TransformationSet.is_default());
        assert!(!DedupBackendKind::PassBisection.is_default());
        assert_eq!(DedupBackendKind::parse("nope"), None);
    }
}
