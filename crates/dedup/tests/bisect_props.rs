//! Satellite: the pass-prefix bisector is total and deterministic.
//!
//! Over arbitrary pipelines (duplicated passes included), arbitrary bug
//! stagings (front-end, any pass, absent), mismatched evidence and
//! concurrent probing, the bisector must never panic, must always agree
//! with a brute-force linear scan over prefix lengths, must return the
//! same key regardless of thread count or probe order, and must honour
//! the memo accounting invariant `probes + memo_hits == lookups`.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use trx_dedup::bisect::FRONT_END_CULPRIT;
use trx_dedup::{DedupBackend, DedupKey, FindingEvidence, FindingOutcome, PassBisectionBackend};
use trx_ir::{Inputs, ModuleBuilder};
use trx_observe::{Counter, RecordingSink, SinkHandle};
use trx_targets::{CompileOutcome, InjectedBug, PassKind, Target, Trigger};

const SIGNATURE: &str = "assert failed: prop";

fn trivial_module() -> trx_ir::Module {
    let mut b = ModuleBuilder::new();
    let c1 = b.constant_int(1);
    let mut f = b.begin_entry_function("main");
    f.store_output("out", c1);
    f.ret();
    f.finish();
    b.finish()
}

fn const_conditional_module() -> trx_ir::Module {
    let mut b = ModuleBuilder::new();
    let c_true = b.constant_bool(true);
    let c1 = b.constant_int(1);
    let mut f = b.begin_entry_function("main");
    let then_l = f.reserve_label();
    let merge_l = f.reserve_label();
    f.selection_merge(merge_l);
    f.branch_cond(c_true, then_l, merge_l);
    f.begin_block_with_label(then_l);
    f.branch(merge_l);
    f.begin_block_with_label(merge_l);
    f.store_output("out", c1);
    f.ret();
    f.finish();
    b.finish()
}

fn arb_pipeline() -> impl Strategy<Value = Vec<PassKind>> {
    // Duplicated passes are deliberately possible: arming must work at
    // every occurrence, and bisection must still converge.
    vec(0usize..PassKind::ALL.len(), 0..6)
        .prop_map(|v| v.into_iter().map(|i| PassKind::ALL[i]).collect())
}

/// `stage_index == ALL.len()` means a front-end bug (`stage: None`).
fn arb_stage() -> impl Strategy<Value = Option<PassKind>> {
    (0usize..=PassKind::ALL.len()).prop_map(|i| PassKind::ALL.get(i).copied())
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    (0usize..4).prop_map(|i| match i {
        0 => Trigger::ConstantConditionalPresent,
        1 => Trigger::KillPresent,
        2 => Trigger::PhiCountAtLeast(1),
        _ => Trigger::BlockCountAtLeast(1),
    })
}

fn arb_outcome() -> impl Strategy<Value = FindingOutcome> {
    (0usize..3).prop_map(|i| match i {
        0 => FindingOutcome::Crash(SIGNATURE.to_owned()),
        1 => FindingOutcome::Crash("assert failed: unrelated".to_owned()),
        _ => FindingOutcome::Miscompilation,
    })
}

fn build_target(pipeline: Vec<PassKind>, stage: Option<PassKind>, trigger: Trigger) -> Target {
    Target::new(
        "prop",
        "1.0",
        "None",
        pipeline,
        vec![InjectedBug::crash("prop-bug", stage, trigger, SIGNATURE)],
    )
}

fn evidence(target: &Target, outcome: FindingOutcome, conditional: bool) -> FindingEvidence {
    FindingEvidence {
        target: target.name().to_string(),
        outcome,
        sequence: Vec::new(),
        module: if conditional {
            const_conditional_module()
        } else {
            trivial_module()
        },
        inputs: Inputs::default(),
    }
}

/// Ground truth for crash evidence: the smallest prefix whose compile
/// crashes with the evidence signature, scanned linearly.
fn linear_scan_culprit(target: &Target, ev: &FindingEvidence) -> Option<String> {
    let FindingOutcome::Crash(expected) = &ev.outcome else {
        return None;
    };
    let crashes = |k: usize| {
        matches!(
            target.compile_with_prefix(&ev.module, k),
            CompileOutcome::Crash { signature, .. } if signature == *expected
        )
    };
    let n = target.pipeline().len();
    if !crashes(n) {
        return None;
    }
    if crashes(0) {
        return Some(FRONT_END_CULPRIT.to_owned());
    }
    (1..=n)
        .find(|&k| crashes(k))
        .map(|k| target.pipeline()[k - 1].name().to_owned())
}

fn counters(sink: &RecordingSink) -> (u64, u64, u64) {
    let report = sink.snapshot();
    (
        report.counter("dedup", Counter::DedupBisectLookups),
        report.counter("dedup", Counter::DedupBisectProbes),
        report.counter("dedup", Counter::DedupBisectMemoHits),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The bisector never panics, always returns a well-formed key, and
    /// for crash evidence agrees exactly with the brute-force linear scan
    /// (front-end keys when prefix 0 already fails, `Unresolved` when even
    /// the full pipeline does not reproduce).
    #[test]
    fn bisection_agrees_with_linear_scan(
        pipeline in arb_pipeline(),
        stage in arb_stage(),
        trigger in arb_trigger(),
        outcome in arb_outcome(),
        conditional in (0usize..2).prop_map(|i| i == 1),
    ) {
        let target = build_target(pipeline, stage, trigger);
        let backend = PassBisectionBackend::new([target.clone()]);
        let sink = Arc::new(RecordingSink::deterministic());
        let handle = SinkHandle::new(sink.clone());
        let ev = evidence(&target, outcome, conditional);
        let key = backend.key(&ev, &handle);

        match &key {
            DedupKey::Pass { target: t, culprit } => {
                prop_assert_eq!(t, target.name());
                let known = culprit == FRONT_END_CULPRIT
                    || target.pipeline().iter().any(|p| p.name() == culprit);
                prop_assert!(known, "culprit {} not in pipeline", culprit);
            }
            DedupKey::Unresolved { target: t, .. } => prop_assert_eq!(t, target.name()),
            other => prop_assert!(false, "unexpected key variant {:?}", other),
        }

        if let FindingOutcome::Crash(_) = &ev.outcome {
            match linear_scan_culprit(&target, &ev) {
                Some(expected) => prop_assert_eq!(
                    key,
                    DedupKey::Pass { target: target.name().to_owned(), culprit: expected }
                ),
                None => prop_assert!(
                    matches!(key, DedupKey::Unresolved { .. }),
                    "irreproducible evidence must be Unresolved, got {:?}", key
                ),
            }
        }

        let (lookups, probes, memo_hits) = counters(&sink);
        prop_assert_eq!(probes + memo_hits, lookups);
    }

    /// The same evidence keyed concurrently from many threads — all racing
    /// one shared memo — yields exactly the serial key on every thread,
    /// and the memo accounting stays consistent.
    #[test]
    fn keys_are_identical_across_thread_counts(
        pipeline in arb_pipeline(),
        stage in arb_stage(),
        threads in 1usize..6,
        conditional in (0usize..2).prop_map(|i| i == 1),
    ) {
        let target = build_target(pipeline, stage, Trigger::ConstantConditionalPresent);
        let ev = evidence(&target, FindingOutcome::Crash(SIGNATURE.to_owned()), conditional);

        let serial = {
            let backend = PassBisectionBackend::new([target.clone()]);
            let sink = Arc::new(RecordingSink::deterministic());
            backend.key(&ev, &SinkHandle::new(sink))
        };

        let backend = Arc::new(PassBisectionBackend::new([target.clone()]));
        let sink = Arc::new(RecordingSink::deterministic());
        let keys: Vec<DedupKey> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let backend = Arc::clone(&backend);
                    let handle = SinkHandle::new(sink.clone());
                    let ev = &ev;
                    scope.spawn(move || backend.key(ev, &handle))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        for key in &keys {
            prop_assert_eq!(key, &serial);
        }
        let (lookups, probes, memo_hits) = counters(&sink);
        prop_assert_eq!(probes + memo_hits, lookups);
    }

    /// Keying a batch of evidences in any order gives order-independent
    /// keys: probe order (and therefore memo population order) never
    /// changes a verdict.
    #[test]
    fn keys_are_independent_of_probe_order(
        pipeline in arb_pipeline(),
        order in vec(0usize..4, 1..8),
    ) {
        // Four evidences with distinct stagings against one shared memo.
        let stages = [
            None,
            Some(PassKind::ConstantFolding),
            Some(PassKind::DeadCodeElimination),
            Some(PassKind::Inlining),
        ];
        let targets: Vec<Target> = stages
            .iter()
            .map(|&stage| build_target(pipeline.clone(), stage, Trigger::ConstantConditionalPresent))
            .collect();

        // Reference keys, each from a fresh backend (no shared memo).
        let reference: Vec<DedupKey> = targets
            .iter()
            .map(|t| {
                let backend = PassBisectionBackend::new([t.clone()]);
                let sink = Arc::new(RecordingSink::deterministic());
                let ev = evidence(t, FindingOutcome::Crash(SIGNATURE.to_owned()), true);
                backend.key(&ev, &SinkHandle::new(sink))
            })
            .collect();

        // One backend keyed in the generated order: answers must match the
        // fresh-backend reference regardless of what the memo already holds.
        // (Targets share a name, so register just the probed one per step.)
        for &i in &order {
            let backend = PassBisectionBackend::new([targets[i].clone()]);
            let sink = Arc::new(RecordingSink::deterministic());
            let handle = SinkHandle::new(sink.clone());
            let ev = evidence(&targets[i], FindingOutcome::Crash(SIGNATURE.to_owned()), true);
            // Key twice: the second answer comes from the warm memo.
            let cold = backend.key(&ev, &handle);
            let warm = backend.key(&ev, &handle);
            prop_assert_eq!(&cold, &reference[i]);
            prop_assert_eq!(&warm, &reference[i]);
            let (lookups, probes, memo_hits) = counters(&sink);
            prop_assert_eq!(probes + memo_hits, lookups);
            prop_assert!(memo_hits >= probes, "second pass must be memo-served");
        }
    }
}
