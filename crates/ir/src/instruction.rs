use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Id, StorageClass};

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    // Integer arithmetic (wrapping, two's complement).
    IAdd,
    ISub,
    IMul,
    SDiv,
    SRem,
    // Float arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    // Bitwise.
    BitAnd,
    BitOr,
    BitXor,
    ShiftLeft,
    ShiftRightArith,
    // Logical.
    LogicalAnd,
    LogicalOr,
    // Integer comparison.
    IEqual,
    INotEqual,
    SLessThan,
    SLessThanEqual,
    SGreaterThan,
    SGreaterThanEqual,
    // Float comparison (ordered).
    FOrdEqual,
    FOrdNotEqual,
    FOrdLessThan,
    FOrdLessThanEqual,
    FOrdGreaterThan,
    FOrdGreaterThanEqual,
}

impl BinOp {
    /// All binary operators, in encoding order.
    pub const ALL: [BinOp; 28] = [
        BinOp::IAdd,
        BinOp::ISub,
        BinOp::IMul,
        BinOp::SDiv,
        BinOp::SRem,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::ShiftLeft,
        BinOp::ShiftRightArith,
        BinOp::LogicalAnd,
        BinOp::LogicalOr,
        BinOp::IEqual,
        BinOp::INotEqual,
        BinOp::SLessThan,
        BinOp::SLessThanEqual,
        BinOp::SGreaterThan,
        BinOp::SGreaterThanEqual,
        BinOp::FOrdEqual,
        BinOp::FOrdNotEqual,
        BinOp::FOrdLessThan,
        BinOp::FOrdLessThanEqual,
        BinOp::FOrdGreaterThan,
        BinOp::FOrdGreaterThanEqual,
    ];

    /// Returns `true` if `a op b == b op a` for all defined inputs, which is
    /// what the `SwapCommutativeOperands` transformation relies on.
    ///
    /// Note that `FAdd`/`FMul` are commutative (though not associative) under
    /// IEEE-754, so they are included.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::IAdd
                | BinOp::IMul
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::LogicalAnd
                | BinOp::LogicalOr
                | BinOp::IEqual
                | BinOp::INotEqual
                | BinOp::FOrdEqual
                | BinOp::FOrdNotEqual
        )
    }

    /// Returns `true` if the result type is `Bool` regardless of operand type.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::IEqual
                | BinOp::INotEqual
                | BinOp::SLessThan
                | BinOp::SLessThanEqual
                | BinOp::SGreaterThan
                | BinOp::SGreaterThanEqual
                | BinOp::FOrdEqual
                | BinOp::FOrdNotEqual
                | BinOp::FOrdLessThan
                | BinOp::FOrdLessThanEqual
                | BinOp::FOrdGreaterThan
                | BinOp::FOrdGreaterThanEqual
        )
    }

    /// The mnemonic used by the disassembler, in SPIR-V style.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::IAdd => "OpIAdd",
            BinOp::ISub => "OpISub",
            BinOp::IMul => "OpIMul",
            BinOp::SDiv => "OpSDiv",
            BinOp::SRem => "OpSRem",
            BinOp::FAdd => "OpFAdd",
            BinOp::FSub => "OpFSub",
            BinOp::FMul => "OpFMul",
            BinOp::FDiv => "OpFDiv",
            BinOp::BitAnd => "OpBitwiseAnd",
            BinOp::BitOr => "OpBitwiseOr",
            BinOp::BitXor => "OpBitwiseXor",
            BinOp::ShiftLeft => "OpShiftLeftLogical",
            BinOp::ShiftRightArith => "OpShiftRightArithmetic",
            BinOp::LogicalAnd => "OpLogicalAnd",
            BinOp::LogicalOr => "OpLogicalOr",
            BinOp::IEqual => "OpIEqual",
            BinOp::INotEqual => "OpINotEqual",
            BinOp::SLessThan => "OpSLessThan",
            BinOp::SLessThanEqual => "OpSLessThanEqual",
            BinOp::SGreaterThan => "OpSGreaterThan",
            BinOp::SGreaterThanEqual => "OpSGreaterThanEqual",
            BinOp::FOrdEqual => "OpFOrdEqual",
            BinOp::FOrdNotEqual => "OpFOrdNotEqual",
            BinOp::FOrdLessThan => "OpFOrdLessThan",
            BinOp::FOrdLessThanEqual => "OpFOrdLessThanEqual",
            BinOp::FOrdGreaterThan => "OpFOrdGreaterThan",
            BinOp::FOrdGreaterThanEqual => "OpFOrdGreaterThanEqual",
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnOp {
    SNegate,
    FNegate,
    LogicalNot,
    BitNot,
    /// Signed int to float conversion.
    ConvertSToF,
    /// Float to signed int conversion (round toward zero).
    ConvertFToS,
}

impl UnOp {
    /// All unary operators, in encoding order.
    pub const ALL: [UnOp; 6] = [
        UnOp::SNegate,
        UnOp::FNegate,
        UnOp::LogicalNot,
        UnOp::BitNot,
        UnOp::ConvertSToF,
        UnOp::ConvertFToS,
    ];

    /// The mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::SNegate => "OpSNegate",
            UnOp::FNegate => "OpFNegate",
            UnOp::LogicalNot => "OpLogicalNot",
            UnOp::BitNot => "OpNot",
            UnOp::ConvertSToF => "OpConvertSToF",
            UnOp::ConvertFToS => "OpConvertFToS",
        }
    }
}

/// The operation performed by an [`Instruction`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// An undefined value of the instruction's type.
    Undef,
    /// Copies `src`; the result is synonymous with the source.
    CopyObject {
        /// The id being copied.
        src: Id,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Id,
        /// Right operand.
        rhs: Id,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        src: Id,
    },
    /// Selects `if_true` or `if_false` based on a boolean condition.
    Select {
        /// Boolean condition.
        cond: Id,
        /// Value when the condition holds.
        if_true: Id,
        /// Value when the condition does not hold.
        if_false: Id,
    },
    /// Builds a composite value from parts.
    CompositeConstruct {
        /// The constituent ids, one per component/member/element.
        parts: Vec<Id>,
    },
    /// Extracts a nested component from a composite value.
    CompositeExtract {
        /// The composite being indexed.
        composite: Id,
        /// Literal index path.
        indices: Vec<u32>,
    },
    /// Produces a copy of `composite` with `object` inserted at a path.
    CompositeInsert {
        /// The value to insert.
        object: Id,
        /// The composite being updated.
        composite: Id,
        /// Literal index path.
        indices: Vec<u32>,
    },
    /// Declares a function-local variable (a memory cell).
    Variable {
        /// Storage class; `Function` for locals.
        storage: StorageClass,
        /// Optional constant initializer.
        initializer: Option<Id>,
    },
    /// Forms a pointer to a sub-object of a pointed-to composite.
    AccessChain {
        /// The base pointer.
        base: Id,
        /// Ids of integer indexes into the pointee.
        indices: Vec<Id>,
    },
    /// Loads the value a pointer refers to.
    Load {
        /// The pointer loaded from.
        pointer: Id,
    },
    /// Stores a value through a pointer. Produces no result.
    Store {
        /// The pointer stored through.
        pointer: Id,
        /// The value stored.
        value: Id,
    },
    /// Calls a function.
    Call {
        /// Id of the callee function.
        callee: Id,
        /// Argument ids, in order.
        args: Vec<Id>,
    },
    /// Selects a value according to the predecessor block control arrived
    /// from. Must appear at the start of a block.
    Phi {
        /// `(value, predecessor-label)` pairs.
        incoming: Vec<(Id, Id)>,
    },
    /// Does nothing.
    Nop,
}

impl Op {
    /// Returns `true` if the operation yields a result id.
    #[must_use]
    pub fn has_result(&self) -> bool {
        !matches!(self, Op::Store { .. } | Op::Nop)
    }

    /// Ids of values this operation uses (excluding phi predecessor labels).
    pub fn id_operands(&self) -> Vec<Id> {
        let mut ids = Vec::new();
        self.for_each_id_operand(|id| ids.push(id));
        ids
    }

    /// Visits each used value id (excluding phi predecessor labels).
    pub fn for_each_id_operand(&self, mut f: impl FnMut(Id)) {
        match self {
            Op::Undef | Op::Nop | Op::Variable { initializer: None, .. } => {}
            Op::Variable { initializer: Some(init), .. } => f(*init),
            Op::CopyObject { src } => f(*src),
            Op::Binary { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Op::Unary { src, .. } => f(*src),
            Op::Select { cond, if_true, if_false } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            Op::CompositeConstruct { parts } => parts.iter().copied().for_each(f),
            Op::CompositeExtract { composite, .. } => f(*composite),
            Op::CompositeInsert { object, composite, .. } => {
                f(*object);
                f(*composite);
            }
            Op::AccessChain { base, indices } => {
                f(*base);
                indices.iter().copied().for_each(f);
            }
            Op::Load { pointer } => f(*pointer),
            Op::Store { pointer, value } => {
                f(*pointer);
                f(*value);
            }
            Op::Call { callee, args } => {
                f(*callee);
                args.iter().copied().for_each(f);
            }
            Op::Phi { incoming } => incoming.iter().for_each(|(value, _)| f(*value)),
        }
    }

    /// Rewrites each used value id in place (excluding phi predecessor
    /// labels). Used by `ReplaceIdWithSynonym`-style transformations and the
    /// inliner.
    pub fn for_each_id_operand_mut(&mut self, mut f: impl FnMut(&mut Id)) {
        match self {
            Op::Undef | Op::Nop | Op::Variable { initializer: None, .. } => {}
            Op::Variable { initializer: Some(init), .. } => f(init),
            Op::CopyObject { src } => f(src),
            Op::Binary { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Unary { src, .. } => f(src),
            Op::Select { cond, if_true, if_false } => {
                f(cond);
                f(if_true);
                f(if_false);
            }
            Op::CompositeConstruct { parts } => parts.iter_mut().for_each(f),
            Op::CompositeExtract { composite, .. } => f(composite),
            Op::CompositeInsert { object, composite, .. } => {
                f(object);
                f(composite);
            }
            Op::AccessChain { base, indices } => {
                f(base);
                indices.iter_mut().for_each(f);
            }
            Op::Load { pointer } => f(pointer),
            Op::Store { pointer, value } => {
                f(pointer);
                f(value);
            }
            Op::Call { callee, args } => {
                f(callee);
                args.iter_mut().for_each(f);
            }
            Op::Phi { incoming } => incoming.iter_mut().for_each(|(value, _)| f(value)),
        }
    }

    /// The mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Undef => "OpUndef",
            Op::CopyObject { .. } => "OpCopyObject",
            Op::Binary { op, .. } => op.mnemonic(),
            Op::Unary { op, .. } => op.mnemonic(),
            Op::Select { .. } => "OpSelect",
            Op::CompositeConstruct { .. } => "OpCompositeConstruct",
            Op::CompositeExtract { .. } => "OpCompositeExtract",
            Op::CompositeInsert { .. } => "OpCompositeInsert",
            Op::Variable { .. } => "OpVariable",
            Op::AccessChain { .. } => "OpAccessChain",
            Op::Load { .. } => "OpLoad",
            Op::Store { .. } => "OpStore",
            Op::Call { .. } => "OpFunctionCall",
            Op::Phi { .. } => "OpPhi",
            Op::Nop => "OpNop",
        }
    }

    /// Returns `true` if the operation reads or writes memory, or transfers
    /// control; such instructions cannot be freely reordered.
    #[must_use]
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Call { .. } | Op::Variable { .. } | Op::Load { .. }
        )
    }
}

/// An instruction: an optional result id and type, plus the operation.
///
/// Instructions without results (`Store`, `Nop`) have `result: None`;
/// `Variable`, `Call` and all value-producing operations carry a result id
/// unique within the module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// The result id, if the operation produces one.
    pub result: Option<Id>,
    /// The id of the result's type, if the operation produces a result.
    pub ty: Option<Id>,
    /// The operation.
    pub op: Op,
}

impl Instruction {
    /// Builds an instruction with a result id and type.
    #[must_use]
    pub fn with_result(result: Id, ty: Id, op: Op) -> Self {
        Instruction { result: Some(result), ty: Some(ty), op }
    }

    /// Builds a result-less instruction (e.g. a store).
    #[must_use]
    pub fn without_result(op: Op) -> Self {
        Instruction { result: None, ty: None, op }
    }

    /// Returns `true` if this is a `Phi`.
    #[must_use]
    pub fn is_phi(&self) -> bool {
        matches!(self.op, Op::Phi { .. })
    }

    /// Returns `true` if this is a local `Variable` declaration.
    #[must_use]
    pub fn is_variable(&self) -> bool {
        matches!(self.op, Op::Variable { .. })
    }
}

/// A basic block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Branch {
        /// The successor block label.
        target: Id,
    },
    /// Two-way conditional branch.
    BranchConditional {
        /// Boolean condition id.
        cond: Id,
        /// Label taken when the condition holds.
        true_target: Id,
        /// Label taken when the condition does not hold.
        false_target: Id,
    },
    /// Return from a void function.
    Return,
    /// Return a value.
    ReturnValue {
        /// The returned value id.
        value: Id,
    },
    /// Terminates the whole invocation (SPIR-V `OpKill`), discarding the
    /// fragment.
    Kill,
    /// Declares the block unreachable.
    Unreachable,
}

impl Terminator {
    /// The labels this terminator may branch to.
    pub fn targets(&self) -> Vec<Id> {
        match self {
            Terminator::Branch { target } => vec![*target],
            Terminator::BranchConditional { true_target, false_target, .. } => {
                vec![*true_target, *false_target]
            }
            Terminator::Return
            | Terminator::ReturnValue { .. }
            | Terminator::Kill
            | Terminator::Unreachable => Vec::new(),
        }
    }

    /// Rewrites each branch target label in place.
    pub fn for_each_target_mut(&mut self, mut f: impl FnMut(&mut Id)) {
        match self {
            Terminator::Branch { target } => f(target),
            Terminator::BranchConditional { true_target, false_target, .. } => {
                f(true_target);
                f(false_target);
            }
            _ => {}
        }
    }

    /// Ids of values the terminator uses.
    pub fn id_operands(&self) -> Vec<Id> {
        match self {
            Terminator::BranchConditional { cond, .. } => vec![*cond],
            Terminator::ReturnValue { value } => vec![*value],
            _ => Vec::new(),
        }
    }

    /// Rewrites each used value id in place.
    pub fn for_each_id_operand_mut(&mut self, mut f: impl FnMut(&mut Id)) {
        match self {
            Terminator::BranchConditional { cond, .. } => f(cond),
            Terminator::ReturnValue { value } => f(value),
            _ => {}
        }
    }

    /// The mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Terminator::Branch { .. } => "OpBranch",
            Terminator::BranchConditional { .. } => "OpBranchConditional",
            Terminator::Return => "OpReturn",
            Terminator::ReturnValue { .. } => "OpReturnValue",
            Terminator::Kill => "OpKill",
            Terminator::Unreachable => "OpUnreachable",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::disasm::fmt_instruction(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_of_float_ops() {
        assert!(BinOp::FAdd.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::FSub.is_commutative());
        assert!(!BinOp::SDiv.is_commutative());
    }

    #[test]
    fn comparisons_are_boolean() {
        assert!(BinOp::SLessThan.is_comparison());
        assert!(!BinOp::IAdd.is_comparison());
    }

    #[test]
    fn store_has_no_result() {
        let op = Op::Store { pointer: Id::new(1), value: Id::new(2) };
        assert!(!op.has_result());
        assert!(Op::Load { pointer: Id::new(1) }.has_result());
    }

    #[test]
    fn operand_iteration_matches_mutation() {
        let mut op = Op::Select { cond: Id::new(1), if_true: Id::new(2), if_false: Id::new(3) };
        assert_eq!(op.id_operands(), vec![Id::new(1), Id::new(2), Id::new(3)]);
        op.for_each_id_operand_mut(|id| *id = Id::new(id.raw() + 10));
        assert_eq!(op.id_operands(), vec![Id::new(11), Id::new(12), Id::new(13)]);
    }

    #[test]
    fn phi_operands_exclude_labels() {
        let op = Op::Phi { incoming: vec![(Id::new(5), Id::new(100)), (Id::new(6), Id::new(101))] };
        assert_eq!(op.id_operands(), vec![Id::new(5), Id::new(6)]);
    }

    #[test]
    fn terminator_targets() {
        let t = Terminator::BranchConditional {
            cond: Id::new(1),
            true_target: Id::new(2),
            false_target: Id::new(3),
        };
        assert_eq!(t.targets(), vec![Id::new(2), Id::new(3)]);
        assert_eq!(Terminator::Return.targets(), Vec::<Id>::new());
        assert_eq!(t.id_operands(), vec![Id::new(1)]);
    }

    #[test]
    fn variable_initializer_is_an_operand() {
        let op = Op::Variable { storage: StorageClass::Function, initializer: Some(Id::new(9)) };
        assert_eq!(op.id_operands(), vec![Id::new(9)]);
    }
}
