//! Length-prefixed JSON wire protocol for the triage daemon.
//!
//! Every message — request or response — travels as one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of JSON. The
//! framing layer is deliberately defensive, mirroring the binary decoder's
//! contract in `trx-ir`: [`FrameDecoder`] is total over arbitrary bytes
//! (it returns typed [`FrameError`]s, never panics) and rejects frames
//! whose declared length exceeds the configured ceiling *before* buffering
//! them, so a hostile or corrupt peer cannot balloon daemon memory.
//!
//! The payload schema is the externally-tagged JSON of [`Request`] and
//! [`Response`]. JSON keeps the protocol debuggable with `nc` and makes
//! the in-process transport byte-identical to the TCP one.

use std::fmt;

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use trx_core::TransformationKind;
use trx_dedup::DedupBackendKind;
use trx_harness::BugSignature;
use trx_targets::FaultPlan;

/// Default ceiling on one frame's payload, in bytes.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Bytes of length prefix per frame.
pub const FRAME_HEADER: usize = 4;

/// A typed framing failure. Any error tears the connection down — framing
/// has no resynchronization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer declared a payload longer than the configured ceiling.
    Oversized {
        /// The declared payload length.
        declared: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// A complete frame's payload was not the expected JSON.
    BadPayload {
        /// The parser's message.
        reason: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, ceiling is {max}")
            }
            FrameError::BadPayload { reason } => {
                write!(f, "frame payload is not a valid message: {reason}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in a length-prefixed frame.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Serializes `value` to JSON and frames it.
pub fn encode_message<T: Serialize>(value: &T) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(value)
        .map_err(|e| FrameError::BadPayload { reason: e.to_string() })?;
    Ok(encode_frame(json.as_bytes()))
}

/// Parses one frame payload back into a message.
pub fn decode_message<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::BadPayload { reason: e.to_string() })?;
    serde_json::from_str(text).map_err(|e| FrameError::BadPayload { reason: e.to_string() })
}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// Feed bytes with [`FrameDecoder::push`] as they arrive; drain complete
/// payloads with [`FrameDecoder::next_frame`]. The declared length is
/// validated against the ceiling as soon as the 4-byte header is visible,
/// before any payload accumulates.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_frame: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` as the payload ceiling.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder { buf: Vec::new(), max_frame, poisoned: false }
    }

    /// Appends newly received bytes. Bytes past an already-detected
    /// oversized header are ignored — the connection is dead.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered (header included).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete payload, `Ok(None)` if more bytes are needed, or
    /// the typed error that should tear the connection down.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Oversized { declared: 0, max: self.max_frame });
        }
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
            as usize;
        if declared > self.max_frame {
            // Poison rather than consume: every later call reports the
            // same terminal condition instead of misparsing the stream.
            self.poisoned = true;
            self.buf.clear();
            return Err(FrameError::Oversized { declared, max: self.max_frame });
        }
        if self.buf.len() < FRAME_HEADER + declared {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER..FRAME_HEADER + declared].to_vec();
        self.buf.drain(..FRAME_HEADER + declared);
        Ok(Some(payload))
    }
}

/// One triage job as submitted over the wire: a self-contained campaign →
/// reduction → dedup pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Campaign tests to generate.
    pub tests: usize,
    /// First campaign seed.
    pub seed_base: u64,
    /// How many catalog targets the job runs against (clamped to the
    /// catalog size; 0 means the whole catalog).
    pub target_count: usize,
    /// Optional fault injection wrapped around every target. `None` runs
    /// clean targets.
    pub plan: Option<FaultPlan>,
    /// Wall-clock watchdog deadline per reduction probe, in milliseconds.
    /// 0 runs probes inline (deterministic), mirroring the pipeline knob.
    pub deadline_ms: u64,
    /// Worker threads for the job's per-bug reduction stage (1 = serial).
    pub reduction_threads: usize,
    /// Chaos schedule: kill the shard running this job (a real panic out
    /// of the pipeline) when the job's journal reaches each of these
    /// record counts. Sorted and deduplicated at admission. Production
    /// jobs leave it empty; benches and tests use it to prove
    /// restart-with-resume is byte-exact.
    pub kill_at_appends: Vec<usize>,
    /// Whether the job consults the daemon's durable signature store:
    /// signatures the store already knows are answered as duplicates
    /// without re-reduction, and the job's novel signatures are committed
    /// back atomically with its verdict. `false` runs the job fully
    /// self-contained (the PR 6 behaviour).
    pub consult_store: bool,
    /// Which dedup backend the job's pipeline uses for its verdict. The
    /// default transformation-set kind is the paper's §3.5 path; see
    /// [`trx_dedup::DedupBackendKind`] for the alternatives.
    pub dedup_backend: DedupBackendKind,
}

impl JobSpec {
    /// A small clean job — the building block benches and tests scale up.
    #[must_use]
    pub fn small(seed_base: u64) -> Self {
        JobSpec {
            tests: 4,
            seed_base,
            target_count: 2,
            plan: None,
            deadline_ms: 0,
            reduction_threads: 1,
            kill_at_appends: Vec::new(),
            consult_store: false,
            dedup_backend: DedupBackendKind::default(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Admitted, waiting for a shard.
    Queued,
    /// Executing on a shard.
    Running,
    /// Finished with a report.
    Done,
    /// Circuit-broken: the job killed its shard more than the restart
    /// budget allows and was isolated with its journal intact.
    Quarantined,
    /// The job's per-job deadline (measured from admission) expired — in
    /// the queue or mid-run. The run was rolled back cleanly: its partial
    /// journal is retained for inspection, nothing was committed to the
    /// durable store, and the shard survived.
    DeadlineExceeded,
}

/// A job's externally visible status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Times the job was restarted after killing a shard.
    pub restarts: u32,
    /// Total logical backoff charged before restarts, in milliseconds
    /// (recorded, not slept — the same discipline as the executor).
    pub backoff_ms: u64,
    /// Journal records durably appended so far.
    pub journal_records: usize,
}

/// A snapshot of daemon-level counters and supervision state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Configured shard count.
    pub shards: usize,
    /// Per-shard death count (index = shard id). Every death was answered
    /// by a replacement thread.
    pub shard_deaths: Vec<u64>,
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs rejected with [`Response::Overloaded`].
    pub shed: u64,
    /// Jobs that finished with a report.
    pub completed: u64,
    /// Jobs quarantined by the circuit breaker.
    pub quarantined: u64,
    /// Journal records replayed across all restarts.
    pub resume_replays: u64,
    /// Jobs currently queued (not running).
    pub queued: usize,
    /// Jobs terminated because their per-job deadline expired.
    pub deadline_exceeded: u64,
    /// Bug signatures answered from the durable store as duplicates
    /// (reductions suppressed).
    pub duplicates_suppressed: u64,
    /// Signatures the durable store currently knows.
    pub store_signatures: u64,
    /// Jobs that committed at least one novel signature to the store.
    pub store_jobs_committed: u64,
    /// Store commits that failed even after tail repair and retry.
    pub store_commit_failures: u64,
    /// WAL records the store replayed when this daemon opened it.
    pub store_recovered_records: u64,
    /// Snapshot-and-truncate compactions performed by this daemon.
    pub store_compactions: u64,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job for triage.
    Submit(JobSpec),
    /// Poll one job's status.
    Status {
        /// The job id to inspect.
        job: u64,
    },
    /// Stream a job's findings: its journal records from index `from`.
    Findings {
        /// The job id to stream from.
        job: u64,
        /// First record index wanted.
        from: usize,
    },
    /// Snapshot daemon-level counters.
    Stats,
    /// Ask the durable store whether it already knows a signature.
    Signature {
        /// The target the signature was seen on.
        target: String,
        /// The signature itself.
        signature: BugSignature,
    },
    /// Snapshot the durable store's corpus: committed jobs, known
    /// signatures, and the global dedup verdict.
    Corpus,
    /// Per-job admission→terminal latencies, in submission order.
    Latencies,
    /// Stop admission, finish in-flight jobs, and return the merged
    /// drain artifacts.
    Drain,
    /// Ask the daemon process to stop serving (transports exit their
    /// accept loops). Does not imply a drain.
    Shutdown,
}

/// A daemon reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job was admitted under this id.
    Accepted {
        /// The assigned job id.
        job: u64,
    },
    /// Admission control shed the job: the queue is full.
    Overloaded {
        /// Jobs already queued.
        queued: usize,
        /// The queue capacity they filled.
        capacity: usize,
    },
    /// Status of one job.
    Status(JobStatus),
    /// A slice of one job's journal.
    Findings {
        /// The job id streamed from.
        job: u64,
        /// Index of the first returned record.
        from: usize,
        /// The records, one encoded WAL line each.
        records: Vec<String>,
        /// Whether the job is terminal (no more records will ever come).
        terminal: bool,
    },
    /// Daemon-level counters.
    Stats(DaemonStats),
    /// The durable store already knows this signature: no reduction
    /// needed.
    Duplicate {
        /// The store's cross-job signature key.
        key: String,
        /// Interesting transformation kinds of the stored reduced
        /// sequence — the dedup key.
        kinds: BTreeSet<TransformationKind>,
        /// Job that first reduced the signature.
        first_job: u64,
        /// Length of that reduced sequence.
        reduced_length: usize,
    },
    /// The durable store has not seen this signature.
    Novel {
        /// The key it would be stored under.
        key: String,
    },
    /// The durable store's corpus snapshot.
    Corpus {
        /// Jobs that committed at least one novel signature.
        jobs_committed: u64,
        /// Signatures known.
        signatures: u64,
        /// The global dedup verdict: kept signature keys in Figure 6
        /// selection order.
        kept_keys: Vec<String>,
    },
    /// Admission→terminal latency per job (submission order); `None` for
    /// jobs not yet terminal.
    Latencies {
        /// Latencies in nanoseconds.
        nanos: Vec<Option<u64>>,
    },
    /// The drain finished; every job is terminal.
    Drained {
        /// Deterministic job-order merged report (JSON).
        merged_report: String,
        /// Deterministic job-order merged journal (JSON lines with
        /// `# job N` separators).
        merged_journal: String,
    },
    /// The daemon acknowledged [`Request::Shutdown`].
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// What went wrong.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let spec = JobSpec::small(7);
        let bytes = encode_message(&Request::Submit(spec.clone())).unwrap();
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        // Feed byte-by-byte: reassembly must not depend on chunking.
        for b in &bytes {
            decoder.push(&[*b]);
        }
        let payload = decoder.next_frame().unwrap().expect("one whole frame");
        let back: Request = decode_message(&payload).unwrap();
        assert_eq!(back, Request::Submit(spec));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn oversized_header_is_a_typed_error_before_payload_arrives() {
        let mut decoder = FrameDecoder::new(16);
        decoder.push(&u32::MAX.to_be_bytes());
        match decoder.next_frame() {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 16);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The decoder stays poisoned: later pushes cannot resurrect it.
        decoder.push(&[0, 0, 0, 1, 42]);
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn two_frames_in_one_push_drain_in_order() {
        let a = encode_message(&Request::Stats).unwrap();
        let b = encode_message(&Request::Drain).unwrap();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        decoder.push(&joined);
        let first: Request =
            decode_message(&decoder.next_frame().unwrap().unwrap()).unwrap();
        let second: Request =
            decode_message(&decoder.next_frame().unwrap().unwrap()).unwrap();
        assert_eq!(first, Request::Stats);
        assert_eq!(second, Request::Drain);
        assert!(decoder.next_frame().unwrap().is_none());
    }

    #[test]
    fn garbage_payload_is_a_typed_error() {
        let frame = encode_frame(b"not json");
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        decoder.push(&frame);
        let payload = decoder.next_frame().unwrap().unwrap();
        let parsed: Result<Request, FrameError> = decode_message(&payload);
        assert!(matches!(parsed, Err(FrameError::BadPayload { .. })));
    }
}
