//! Chaos campaign: every catalog target wrapped in a fault injector, run
//! under the resilient executor, twice — verifying that each run completes
//! with partial results and a populated error ledger, never panics, and is
//! bit-identical across same-seed runs. Writes the robustness baseline to
//! `BENCH_robustness.json`.
//!
//! Two scenarios are recorded:
//!
//! * `chaos` — the [`FaultPlan::chaos`] mix with TTL 1, where bounded retry
//!   absorbs every transient and the ledger mostly logs flaky outcomes;
//! * `persistent-hangs` — hangs that outlive the retry budget, driving the
//!   circuit breaker to quarantine targets and degrade to partial results.
//!
//! Usage: `chaos_campaign [--tests N] [--seed S] [--plan-seed P] [--out FILE]`

use trx_bench::robustness::{RobustnessBaseline, ScenarioBaseline};
use trx_bench::{arg_string, arg_u64, arg_usize, render_table};
use trx_harness::campaign::Tool;
use trx_harness::executor::{
    run_campaign_resilient, ExecutorConfig, FailureKind, ResilientOutcome,
};
use trx_targets::{catalog, FaultPlan, FaultyTarget};

fn run_once(
    tests: usize,
    seed: u64,
    plan: &FaultPlan,
    config: &ExecutorConfig,
) -> ResilientOutcome {
    // Fresh targets per run: attempt counters start empty, so the fault
    // schedule replays identically. Each target gets a derived plan seed so
    // fault decisions are decorrelated across targets, as they would be for
    // independent physical devices.
    let targets: Vec<FaultyTarget> = catalog::all_targets()
        .into_iter()
        .enumerate()
        .map(|(t, target)| {
            let plan = FaultPlan { seed: plan.seed.wrapping_add(t as u64), ..plan.clone() };
            FaultyTarget::new(target, plan)
        })
        .collect();
    run_campaign_resilient(Tool::SpirvFuzz, &targets, tests, seed, config)
}

fn run_scenario(
    name: &str,
    tests: usize,
    seed: u64,
    plan: FaultPlan,
    config: &ExecutorConfig,
    target_count: usize,
) -> (ScenarioBaseline, ResilientOutcome) {
    eprintln!("scenario {name}: {tests} tests x {target_count} targets ...");
    let first = run_once(tests, seed, &plan, config);
    let second = run_once(tests, seed, &plan, config);
    let bit_identical = first.outcome.per_test == second.outcome.per_test
        && first.ledger == second.ledger
        && first.retries_spent == second.retries_spent
        && first.quarantined == second.quarantined;

    let cells_total = tests * target_count;
    let cells_flagging_bugs = first
        .outcome
        .per_test
        .iter()
        .map(|cells| cells.iter().filter(|c| c.is_some()).count())
        .sum::<usize>();
    let distinct_signatures = (0..target_count)
        .map(|t| first.outcome.distinct(t).len())
        .sum::<usize>();

    let baseline = ScenarioBaseline {
        scenario: name.to_owned(),
        plan,
        tests_survived: first.tests_completed,
        cells_flagging_bugs,
        cells_total,
        retries_spent: first.retries_spent,
        quarantines_triggered: first.quarantined.len(),
        skipped_by_quarantine: first.skipped_by_quarantine,
        ledger_entries: first.ledger.len(),
        panics_absorbed: first.ledger.count(FailureKind::Panic),
        hangs_absorbed: first.ledger.count(FailureKind::Hang),
        unstable_outcomes: first.ledger.count(FailureKind::UnstableOutcome),
        distinct_signatures,
        bit_identical_reruns: bit_identical,
    };
    (baseline, first)
}

fn scenario_rows(s: &ScenarioBaseline, tests: usize) -> Vec<Vec<String>> {
    vec![
        vec![s.scenario.clone(), String::new()],
        vec!["  tests survived".to_owned(), format!("{}/{tests}", s.tests_survived)],
        vec![
            "  cells flagging bugs".to_owned(),
            format!("{}/{}", s.cells_flagging_bugs, s.cells_total),
        ],
        vec!["  retries spent".to_owned(), s.retries_spent.to_string()],
        vec![
            "  quarantines triggered".to_owned(),
            s.quarantines_triggered.to_string(),
        ],
        vec![
            "  skipped by quarantine".to_owned(),
            s.skipped_by_quarantine.to_string(),
        ],
        vec!["  ledger entries".to_owned(), s.ledger_entries.to_string()],
        vec!["    panics absorbed".to_owned(), s.panics_absorbed.to_string()],
        vec!["    hangs absorbed".to_owned(), s.hangs_absorbed.to_string()],
        vec!["    unstable outcomes".to_owned(), s.unstable_outcomes.to_string()],
        vec![
            "  distinct signatures".to_owned(),
            s.distinct_signatures.to_string(),
        ],
        vec!["  bit-identical reruns".to_owned(), s.bit_identical_reruns.to_string()],
    ]
}

fn main() {
    let tests = arg_usize("--tests", 120);
    let seed = arg_u64("--seed", 0);
    let plan_seed = arg_u64("--plan-seed", 1_000);
    let out = arg_string("--out", "BENCH_robustness.json");

    let config = ExecutorConfig::default();
    let target_names: Vec<String> =
        catalog::all_targets().iter().map(|t| t.name().to_owned()).collect();

    // Injected panics are expected by the hundred here; silence the default
    // hook's backtrace spam (the executor records every payload anyway).
    std::panic::set_hook(Box::new(|_| {}));

    // Scenario 1: the standard chaos mix. Transients have TTL 1, so the
    // retry budget absorbs them; flip-flops surface as unstable outcomes.
    let (chaos, chaos_outcome) = run_scenario(
        "chaos",
        tests,
        seed,
        FaultPlan::chaos(plan_seed),
        &config,
        target_names.len(),
    );

    // Scenario 2: a third of tests hang persistently (TTL far beyond the
    // retry budget), so hard failures accumulate and the circuit breaker
    // quarantines targets mid-campaign.
    let persistent_plan = FaultPlan {
        seed: plan_seed.wrapping_add(100),
        panic_probability: 0.0,
        hang_probability: 0.35,
        transient_crash_probability: 0.0,
        flip_flop_probability: 0.0,
        transient_ttl: 1_000,
    };
    let (persistent, persistent_outcome) = run_scenario(
        "persistent-hangs",
        tests,
        seed,
        persistent_plan,
        &config,
        target_names.len(),
    );
    let _ = std::panic::take_hook();

    let mut rows = scenario_rows(&chaos, tests);
    rows.extend(scenario_rows(&persistent, tests));
    println!("{}", render_table(&["metric", "value"], &rows));

    // Preserve the sections owned by chaos_pipeline, chaos_server and
    // chaos_state if the file already carries them.
    let prior = RobustnessBaseline::load(&out);
    let pipeline = prior.as_ref().and_then(|b| b.pipeline.clone());
    let server = prior.as_ref().and_then(|b| b.server.clone());
    let overload = prior.as_ref().and_then(|b| b.overload.clone());
    let state = prior.and_then(|b| b.state);
    let baseline = RobustnessBaseline {
        tool: Tool::SpirvFuzz.name().to_owned(),
        tests,
        targets: target_names,
        executor: config,
        scenarios: vec![chaos, persistent],
        pipeline,
        server,
        overload,
        state,
    };
    if let Err(e) = baseline.save(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    let mut failed = false;
    for s in &baseline.scenarios {
        if !s.bit_identical_reruns {
            eprintln!("FAIL: {}: same-seed campaigns diverged", s.scenario);
            failed = true;
        }
        if s.tests_survived != tests {
            eprintln!("FAIL: {}: campaign lost tests", s.scenario);
            failed = true;
        }
    }
    if chaos_outcome.ledger.is_empty() && persistent_outcome.ledger.is_empty() {
        eprintln!("FAIL: fault plans injected nothing — both ledgers are empty");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
