//! # trx-reducer
//!
//! Test-case reduction "almost for free" (§2.1, §3.4): delta debugging over
//! the *transformation sequence* rather than over program text.
//!
//! Because every transformation is semantics-preserving and sequence
//! application skips transformations whose preconditions fail
//! (Definition 2.5), any subsequence of a bug-inducing sequence yields a
//! valid, UB-free variant — no external sanitizers or oracles are needed.
//! The reducer searches for a **1-minimal** subsequence: one that still
//! triggers the bug, such that removing any single transformation stops it
//! triggering.
//!
//! The algorithm is the one described in §3.4: a chunk size `c` starts at
//! `⌊n/2⌋`; the sequence is divided into chunks of size `c` *from the back*
//! (the leading chunk may be smaller); each chunk is tentatively removed;
//! when no chunk of size `c` can be removed, `c` is halved; reduction stops
//! when no chunk of size 1 can be removed.
//!
//! After delta debugging, [`Reducer::reduce`] optionally shrinks the bodies
//! of any remaining `AddFunction` payloads — the analogue of spirv-fuzz's
//! final spirv-reduce pass, "merely an optimization" per §3.4.
//!
//! For *flaky* oracles — crashes that only reproduce some of the time, a
//! routine hazard in GPU-driver testing — [`ReducerOptions::votes`] turns
//! every interestingness query into a `k`-of-`n` vote. Each vote invokes
//! the oracle once and counts against [`ReducerOptions::max_tests`], so
//! voting trades test budget for robustness.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use trx_core::{apply_sequence, Context, Transformation};

/// Statistics about a reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Number of interestingness-test invocations.
    pub tests_run: usize,
    /// Number of successful chunk removals.
    pub chunks_removed: usize,
    /// Number of instructions removed from `AddFunction` payloads by the
    /// shrink phase.
    pub payload_instructions_removed: usize,
    /// Number of probe invocations that faulted instead of answering.
    pub probe_faults: usize,
    /// Number of interestingness queries abandoned because the probe kept
    /// faulting on the candidate (poison-test quarantine).
    pub poisoned_queries: usize,
}

/// A fault raised by an interestingness probe itself — the worker crashed,
/// hung past its watchdog deadline, or otherwise failed to produce a
/// verdict. Distinct from the probe *answering* "not interesting".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeFault(pub String);

impl fmt::Display for ProbeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interestingness probe faulted: {}", self.0)
    }
}

impl Error for ProbeFault {}

/// One journaled probe invocation: the unit of the reducer's write-ahead
/// attempt log. The reduction search is a pure function of the record
/// stream, so replaying a log prefix resumes a crashed reduction on the
/// exact path the uninterrupted run would have taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeRecord {
    /// The probe ran to completion and answered.
    Answered(bool),
    /// The probe itself faulted; no verdict was produced.
    Faulted,
}

/// The journaled attempt log of a reduction: every probe invocation, in
/// order. Serialise records as they are emitted (see
/// [`Reducer::reduce_journaled`]'s `on_record`) and replay them after a
/// crash to resume deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionLog {
    /// The records, in invocation order.
    pub records: Vec<ProbeRecord>,
}

impl ReductionLog {
    /// Creates an empty log (a fresh, non-resumed reduction).
    #[must_use]
    pub fn new() -> Self {
        ReductionLog::default()
    }

    /// Number of journaled probe invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The outcome of a journaled reduction: the reduction itself plus the
/// complete attempt log (replayed prefix and live suffix).
#[derive(Debug, Clone)]
pub struct JournaledReduction {
    /// The reduction result.
    pub reduction: Reduction,
    /// The full attempt log; persisting it makes the reduction resumable
    /// from any prefix.
    pub log: ReductionLog,
}

/// The outcome of a reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The 1-minimal transformation subsequence.
    pub sequence: Vec<Transformation>,
    /// The reduced variant context (original plus `sequence`).
    pub context: Context,
    /// Counters describing the run.
    pub stats: ReductionStats,
}

/// Configuration for the reducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducerOptions {
    /// Whether to run the `AddFunction` payload shrink phase after delta
    /// debugging.
    pub shrink_added_functions: bool,
    /// Safety cap on interestingness-test invocations. Every *vote* counts
    /// against this cap.
    pub max_tests: usize,
    /// Votes (`n`) cast per interestingness query. With a flaky oracle —
    /// a crash that only reproduces some of the time — a single vote makes
    /// the reducer keep chunks whose removal failed to reproduce by bad
    /// luck. Each vote invokes the interestingness closure once.
    pub votes: u32,
    /// Votes (`k`) that must say "interesting" for the query to pass.
    /// Clamped to `1..=votes`. The default 1-of-1 is exact single-shot
    /// testing; for an oracle with reproduction probability `p`, `k`-of-`n`
    /// drives the per-query false-negative rate from `1 - p` down to
    /// `P[Binomial(n, p) < k]`.
    pub votes_required: u32,
    /// Consecutive probe faults within one interestingness query before the
    /// candidate is quarantined as a poison test: the query resolves to
    /// "not interesting" (conservatively keeping the chunk) and
    /// [`ReductionStats::poisoned_queries`] is bumped. Faulting probe runs
    /// count against [`ReducerOptions::max_tests`] but cast no vote.
    pub poison_retries: u32,
}

impl ReducerOptions {
    /// `k`-of-`n` voting with a strict majority: `k = n / 2 + 1`.
    #[must_use]
    pub fn with_majority_votes(mut self, n: u32) -> Self {
        let n = n.max(1);
        self.votes = n;
        self.votes_required = n / 2 + 1;
        self
    }

    /// Explicit `k`-of-`n` voting.
    #[must_use]
    pub fn with_votes(mut self, required: u32, total: u32) -> Self {
        self.votes = total.max(1);
        self.votes_required = required.clamp(1, self.votes);
        self
    }
}

impl Default for ReducerOptions {
    fn default() -> Self {
        ReducerOptions {
            shrink_added_functions: true,
            max_tests: 100_000,
            votes: 1,
            votes_required: 1,
            poison_retries: 3,
        }
    }
}

/// The transformation-sequence reducer.
#[derive(Debug, Clone, Default)]
pub struct Reducer {
    options: ReducerOptions,
}

impl Reducer {
    /// Creates a reducer with the given options.
    #[must_use]
    pub fn new(options: ReducerOptions) -> Self {
        Reducer { options }
    }

    /// Reduces `sequence` against `original`, keeping subsequences for which
    /// `interesting` returns `true` on the resulting variant.
    ///
    /// `interesting` receives the variant context produced by applying a
    /// candidate subsequence to `original`. It must return `true` for the
    /// full initial sequence, or the input is returned unchanged.
    pub fn reduce(
        &self,
        original: &Context,
        sequence: &[Transformation],
        mut interesting: impl FnMut(&Context) -> bool,
    ) -> Reduction {
        self.reduce_journaled(
            original,
            sequence,
            &ReductionLog::new(),
            |ctx| Ok(interesting(ctx)),
            |_, _| {},
        )
        .reduction
    }

    /// Reduces `sequence` against `original` with a fallible probe and a
    /// write-ahead attempt log.
    ///
    /// Every probe invocation appends one [`ProbeRecord`]; `on_record` fires
    /// for each record *as it is produced* (with its index), so callers can
    /// persist the log incrementally. The search consumes `prior`'s records
    /// before invoking `probe` at all: resuming a crashed reduction with the
    /// journaled prefix replays it onto the exact same search path,
    /// bit-identically — whatever the probe would answer today.
    ///
    /// A probe returning `Err` casts no vote; after
    /// [`ReducerOptions::poison_retries`] consecutive faults within one
    /// query the candidate is quarantined ("poison test"): the query
    /// resolves to *not interesting*, conservatively keeping the chunk.
    pub fn reduce_journaled(
        &self,
        original: &Context,
        sequence: &[Transformation],
        prior: &ReductionLog,
        mut probe: impl FnMut(&Context) -> Result<bool, ProbeFault>,
        mut on_record: impl FnMut(usize, ProbeRecord),
    ) -> JournaledReduction {
        let mut stats = ReductionStats::default();
        let mut current: Vec<Transformation> = sequence.to_vec();
        let mut log = ReductionLog::new();
        let mut replay_pos = 0usize;

        let max_tests = self.options.max_tests;
        let votes = self.options.votes.max(1);
        let votes_required = self.options.votes_required.clamp(1, votes);
        let poison_retries = self.options.poison_retries.max(1);

        // One probe invocation: replayed from the journal prefix when
        // available, live (and journaled) otherwise.
        let mut invoke = move |ctx: &Context, log: &mut ReductionLog| -> ProbeRecord {
            let record = if replay_pos < prior.records.len() {
                let r = prior.records[replay_pos];
                replay_pos += 1;
                r
            } else {
                let r = match probe(ctx) {
                    Ok(verdict) => ProbeRecord::Answered(verdict),
                    Err(_) => ProbeRecord::Faulted,
                };
                on_record(log.records.len(), r);
                r
            };
            log.records.push(record);
            record
        };

        // One k-of-n interestingness query. Early exit once the verdict is
        // decided, so votes only cost budget while the outcome is open;
        // `None` means the test budget ran out mid-query.
        let mut poll = move |ctx: &Context,
                             stats: &mut ReductionStats,
                             log: &mut ReductionLog|
              -> Option<bool> {
            let mut yes = 0u32;
            let mut cast = 0u32;
            let mut consecutive_faults = 0u32;
            while cast < votes {
                if stats.tests_run >= max_tests {
                    return None;
                }
                stats.tests_run += 1;
                match invoke(ctx, log) {
                    ProbeRecord::Faulted => {
                        stats.probe_faults += 1;
                        consecutive_faults += 1;
                        if consecutive_faults >= poison_retries {
                            stats.poisoned_queries += 1;
                            return Some(false);
                        }
                    }
                    ProbeRecord::Answered(verdict) => {
                        consecutive_faults = 0;
                        cast += 1;
                        if verdict {
                            yes += 1;
                        }
                        if yes >= votes_required {
                            return Some(true);
                        }
                        let remaining = votes - cast;
                        if yes + remaining < votes_required {
                            return Some(false);
                        }
                    }
                }
            }
            Some(false)
        };
        let mut check = |candidate: &[Transformation],
                         stats: &mut ReductionStats,
                         log: &mut ReductionLog| {
            let mut ctx = original.clone();
            apply_sequence(&mut ctx, candidate);
            poll(&ctx, stats, log).map(|verdict| (verdict, ctx))
        };

        // The full sequence must be interesting to begin with.
        let Some((initially_interesting, full_ctx)) = check(&current, &mut stats, &mut log)
        else {
            let mut ctx = original.clone();
            apply_sequence(&mut ctx, &current);
            return JournaledReduction {
                reduction: Reduction { sequence: current, context: ctx, stats },
                log,
            };
        };
        if !initially_interesting {
            return JournaledReduction {
                reduction: Reduction { sequence: current, context: full_ctx, stats },
                log,
            };
        }

        let mut chunk_size = (current.len() / 2).max(1);
        let mut budget_exhausted = false;
        loop {
            let mut removed_any = false;
            // Chunks from the back: the final chunk is [n - c, n), then
            // [n - 2c, n - c), ...; the leading chunk may be smaller than c.
            let mut end = current.len();
            while end > 0 {
                let start = end.saturating_sub(chunk_size);
                let mut candidate = Vec::with_capacity(current.len() - (end - start));
                candidate.extend_from_slice(&current[..start]);
                candidate.extend_from_slice(&current[end..]);
                match check(&candidate, &mut stats, &mut log) {
                    Some((true, _)) => {
                        current = candidate;
                        stats.chunks_removed += 1;
                        removed_any = true;
                        // Continue leftwards over the shortened sequence.
                        end = start.min(current.len());
                    }
                    Some((false, _)) => {
                        end = start;
                    }
                    None => {
                        budget_exhausted = true;
                        end = 0;
                    }
                }
            }
            if budget_exhausted {
                break;
            }
            if removed_any {
                // Another pass at the same granularity (§3.4 repeats until
                // no chunk of size c can be removed).
                continue;
            }
            if chunk_size == 1 {
                break;
            }
            chunk_size = (chunk_size / 2).max(1);
        }

        if self.options.shrink_added_functions && !budget_exhausted {
            self.shrink_payloads(original, &mut current, &mut stats, &mut log, &mut poll);
        }

        let mut context = original.clone();
        apply_sequence(&mut context, &current);
        JournaledReduction {
            reduction: Reduction { sequence: current, context, stats },
            log,
        }
    }

    /// Tries to delete instructions from the bodies of `AddFunction`
    /// payloads while the test stays interesting (the spirv-reduce
    /// analogue). `poll` is the shared k-of-n interestingness query;
    /// `None` means the test budget ran out.
    fn shrink_payloads(
        &self,
        original: &Context,
        current: &mut Vec<Transformation>,
        stats: &mut ReductionStats,
        log: &mut ReductionLog,
        poll: &mut impl FnMut(&Context, &mut ReductionStats, &mut ReductionLog) -> Option<bool>,
    ) {
        for index in 0..current.len() {
            let Transformation::AddFunction(payload) = &current[index] else {
                continue;
            };
            let mut payload = payload.clone();
            let mut progress = true;
            while progress {
                progress = false;
                // Try removing each instruction, from the back.
                let positions: Vec<(usize, usize)> = payload
                    .function
                    .blocks
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, b)| (0..b.instructions.len()).map(move |ii| (bi, ii)))
                    .collect();
                for &(bi, ii) in positions.iter().rev() {
                    let mut candidate_payload = payload.clone();
                    candidate_payload.function.blocks[bi].instructions.remove(ii);
                    let mut candidate = current.clone();
                    candidate[index] = Transformation::AddFunction(candidate_payload.clone());
                    let mut ctx = original.clone();
                    let applied = apply_sequence(&mut ctx, &candidate);
                    // The shrunken payload must still apply — otherwise the
                    // variant silently loses the whole function.
                    if !applied[index] {
                        continue;
                    }
                    match poll(&ctx, stats, log) {
                        None => return,
                        Some(true) => {
                            payload = candidate_payload;
                            *current = candidate;
                            stats.payload_instructions_removed += 1;
                            progress = true;
                            break;
                        }
                        Some(false) => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_core::transformations::SetFunctionControl;
    use trx_ir::{FunctionControl, Inputs, ModuleBuilder};

    fn tiny_context() -> Context {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(1);
        let t_int = b.type_int();
        let mut h = b.begin_function(t_int, &[]);
        h.ret_value(c);
        let helper = h.finish();
        let mut f = b.begin_entry_function("main");
        let r = f.call(helper, vec![]);
        f.store_output("out", r);
        f.ret();
        f.finish();
        Context::new(b.finish(), Inputs::default()).unwrap()
    }

    fn helper_of(ctx: &Context) -> trx_ir::Id {
        ctx.module
            .functions
            .iter()
            .map(|f| f.id)
            .find(|&id| id != ctx.module.entry_point)
            .unwrap()
    }

    /// A synthetic sequence of N SetFunctionControl flips.
    fn flip_sequence(ctx: &Context, n: usize) -> Vec<Transformation> {
        let helper = helper_of(ctx);
        (0..n)
            .map(|i| {
                let control = if i % 2 == 0 {
                    FunctionControl::DontInline
                } else {
                    FunctionControl::Inline
                };
                SetFunctionControl { function: helper, control }.into()
            })
            .collect()
    }

    #[test]
    fn reduces_to_single_needed_transformation() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        // Interesting iff the helper ends with DontInline; the 1-minimal
        // answer is a single DontInline flip.
        let reduction = Reducer::default().reduce(&ctx, &sequence, |variant| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        });
        assert_eq!(reduction.sequence.len(), 1);
        assert_eq!(
            reduction.context.module.function(helper).unwrap().control,
            FunctionControl::DontInline
        );
        assert!(reduction.stats.tests_run > 0);
        assert!(reduction.stats.chunks_removed > 0);
    }

    #[test]
    fn uninteresting_input_returned_unchanged() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 5);
        let reduction = Reducer::default().reduce(&ctx, &sequence, |_| false);
        assert_eq!(reduction.sequence.len(), 5);
    }

    #[test]
    fn empty_sequence_is_handled() {
        let ctx = tiny_context();
        let reduction = Reducer::default().reduce(&ctx, &[], |_| true);
        assert!(reduction.sequence.is_empty());
    }

    #[test]
    fn result_is_one_minimal() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 13);
        let helper = helper_of(&ctx);
        let is_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let reduction = Reducer::default().reduce(&ctx, &sequence, is_interesting);
        // Dropping any single remaining transformation must lose
        // interestingness.
        for skip in 0..reduction.sequence.len() {
            let mut candidate = reduction.sequence.clone();
            candidate.remove(skip);
            let mut variant = ctx.clone();
            apply_sequence(&mut variant, &candidate);
            assert!(
                !is_interesting(&variant),
                "sequence is not 1-minimal: position {skip} removable"
            );
        }
    }

    #[test]
    fn test_budget_is_respected() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 40);
        let helper = helper_of(&ctx);
        let reducer = Reducer::new(ReducerOptions {
            shrink_added_functions: false,
            max_tests: 3,
            ..ReducerOptions::default()
        });
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        });
        assert!(reduction.stats.tests_run <= 3);
    }

    #[test]
    fn budget_exhaustion_keeps_best_so_far() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let is_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let full = flip_sequence(&ctx, 31);
        for budget in 1..40 {
            let reducer = Reducer::new(ReducerOptions {
                shrink_added_functions: false,
                max_tests: budget,
                ..ReducerOptions::default()
            });
            let reduction = reducer.reduce(&ctx, &full, is_interesting);
            assert!(reduction.stats.tests_run <= budget);
            // Whatever the budget, the kept sequence is never worse than
            // the input: it still triggers the bug.
            assert!(
                is_interesting(&reduction.context),
                "budget {budget}: best-so-far sequence lost interestingness"
            );
            assert!(reduction.sequence.len() <= full.len());
        }
    }

    #[test]
    fn votes_count_against_the_budget() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 4);
        // 3-of-3 voting with an always-true oracle: the initial query alone
        // costs 3 tests.
        let mut calls = 0usize;
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                max_tests: 3,
                ..ReducerOptions::default()
            }
            .with_votes(3, 3),
        );
        let reduction = reducer.reduce(&ctx, &sequence, |_| {
            calls += 1;
            true
        });
        assert_eq!(calls, 3, "each vote invokes the oracle");
        assert_eq!(reduction.stats.tests_run, 3);
        // Budget spent on the initial query: nothing was reduced.
        assert_eq!(reduction.sequence.len(), 4);
    }

    #[test]
    fn majority_vote_short_circuits() {
        let ctx = tiny_context();
        // 2-of-3 with an always-true oracle decides after 2 votes.
        let mut calls = 0usize;
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                ..ReducerOptions::default()
            }
            .with_majority_votes(3),
        );
        let reduction = reducer.reduce(&ctx, &[], |_| {
            calls += 1;
            true
        });
        assert_eq!(calls, 2, "a decided vote stops early");
        assert!(reduction.sequence.is_empty());
    }

    /// A deterministic flaky oracle: reports a genuine "interesting" with
    /// probability ~`1 - flake`, never reports a spurious one (the
    /// crash-doesn't-reproduce failure mode).
    struct FlakyOracle {
        state: u64,
        flake_millis: u64,
    }

    impl FlakyOracle {
        fn flakes(&mut self) -> bool {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            z % 1000 < self.flake_millis
        }
    }

    #[test]
    fn journaled_reduction_matches_plain_reduction() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let plain = Reducer::default().reduce(&ctx, &sequence, oracle);
        let mut streamed = Vec::new();
        let journaled = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| Ok(oracle(variant)),
            |index, record| streamed.push((index, record)),
        );
        assert_eq!(journaled.reduction.sequence, plain.sequence);
        assert_eq!(journaled.reduction.stats, plain.stats);
        assert_eq!(journaled.log.len(), plain.stats.tests_run);
        // on_record streamed every record, in order, with its index.
        assert_eq!(streamed.len(), journaled.log.len());
        for (i, (index, record)) in streamed.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*record, journaled.log.records[i]);
        }
    }

    #[test]
    fn resume_from_any_log_prefix_is_bit_identical() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| Ok(oracle(variant)),
            |_, _| {},
        );
        // Crash after k journaled probes, for every k: resuming replays the
        // prefix without touching the probe and lands on the same result.
        for k in 0..=golden.log.len() {
            let prefix = ReductionLog { records: golden.log.records[..k].to_vec() };
            let mut live_probes = 0usize;
            let resumed = Reducer::default().reduce_journaled(
                &ctx,
                &sequence,
                &prefix,
                |variant| {
                    live_probes += 1;
                    Ok(oracle(variant))
                },
                |_, _| {},
            );
            assert_eq!(resumed.reduction.sequence, golden.reduction.sequence, "prefix {k}");
            assert_eq!(resumed.reduction.stats, golden.reduction.stats, "prefix {k}");
            assert_eq!(resumed.log, golden.log, "prefix {k}");
            assert_eq!(live_probes, golden.log.len() - k, "prefix {k}");
        }
    }

    #[test]
    fn resume_with_full_log_never_invokes_probe() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                Ok(variant.module.function(helper).unwrap().control
                    == FunctionControl::DontInline)
            },
            |_, _| {},
        );
        // A probe that would change every answer — and must never run.
        let resumed = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &golden.log,
            |_| panic!("resume with a complete log must not invoke the probe"),
            |_, _| {},
        );
        assert_eq!(resumed.reduction.sequence, golden.reduction.sequence);
        assert_eq!(resumed.log, golden.log);
    }

    #[test]
    fn transient_probe_faults_are_retried() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let clean = Reducer::default().reduce(&ctx, &sequence, oracle);
        // Every third probe faults once; poison_retries 3 absorbs each.
        let mut calls = 0usize;
        let faulty = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                calls += 1;
                if calls.is_multiple_of(3) {
                    Err(ProbeFault("injected".into()))
                } else {
                    Ok(oracle(variant))
                }
            },
            |_, _| {},
        );
        assert_eq!(faulty.reduction.sequence, clean.sequence);
        assert!(faulty.reduction.stats.probe_faults > 0);
        assert_eq!(faulty.reduction.stats.poisoned_queries, 0);
        // Faults cost budget: more tests than the clean run.
        assert!(faulty.reduction.stats.tests_run > clean.stats.tests_run);
    }

    #[test]
    fn persistent_probe_faults_quarantine_the_candidate() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        // The probe faults persistently on every uninteresting variant —
        // poison candidates. The reducer must quarantine those queries
        // (verdict "not interesting", which here matches the oracle) and
        // still converge on the same answer as a clean run.
        let journaled = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                if oracle(variant) {
                    Ok(true)
                } else {
                    Err(ProbeFault("poison".into()))
                }
            },
            |_, _| {},
        );
        assert!(journaled.reduction.stats.poisoned_queries > 0);
        assert_eq!(
            journaled.reduction.stats.probe_faults,
            journaled.reduction.stats.poisoned_queries * 3,
            "each quarantine costs exactly poison_retries faulting probes"
        );
        // The result still triggers the bug.
        assert!(oracle(&journaled.reduction.context));
    }

    #[test]
    fn poisoned_reduction_resumes_bit_identically() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let probe = |variant: &Context| {
            if oracle(variant) {
                Ok(true)
            } else {
                Err(ProbeFault("poison".into()))
            }
        };
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            probe,
            |_, _| {},
        );
        let mid = golden.log.len() / 2;
        let prefix = ReductionLog { records: golden.log.records[..mid].to_vec() };
        let resumed = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &prefix,
            probe,
            |_, _| {},
        );
        assert_eq!(resumed.reduction.sequence, golden.reduction.sequence);
        assert_eq!(resumed.reduction.stats, golden.reduction.stats);
        assert_eq!(resumed.log, golden.log);
    }

    #[test]
    fn majority_vote_reduces_under_flaky_oracle() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let truly_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let sequence = flip_sequence(&ctx, 17);

        // 30% of genuine reproductions are missed.
        let mut oracle = FlakyOracle { state: 0xdead_beef, flake_millis: 300 };
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                ..ReducerOptions::default()
            }
            .with_votes(2, 5),
        );
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            truly_interesting(variant) && !oracle.flakes()
        });

        // The reduced sequence must trigger the bug *deterministically* —
        // verified against the non-flaky oracle.
        assert!(truly_interesting(&reduction.context));
        assert!(
            reduction.sequence.len() <= 3,
            "2-of-5 voting should get close to minimal, got {}",
            reduction.sequence.len()
        );
        assert!(reduction.stats.tests_run > reduction.stats.chunks_removed);
    }
}

#[cfg(test)]
mod shrink_tests {
    use super::*;
    use trx_core::transformations::AddFunction;
    use trx_ir::{
        BinOp, Block, Function, FunctionControl, FunctionParam, Id, Inputs, Instruction,
        ModuleBuilder, Op, Terminator, Type,
    };

    /// Builds a context plus an AddFunction whose payload contains dead
    /// instructions the shrink phase can delete.
    fn context_and_bloated_function() -> (Context, Vec<Transformation>) {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c1 = b.constant_int(1);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c1);
        f.ret();
        f.finish();
        let module = b.finish();
        let ctx = Context::new(module, Inputs::default()).unwrap();

        let fn_ty = ctx
            .module
            .lookup_type(&Type::Function { ret: t_int, params: vec![t_int] }).unwrap_or_else(|| {
                    // Declare via a supporting transformation.
                    Id::new(ctx.module.id_bound)
                });
        let mut sequence: Vec<Transformation> = Vec::new();
        let mut next = ctx.module.id_bound;
        let mut fresh = || {
            let id = Id::new(next);
            next += 1;
            id
        };
        let declared_fn_ty = if ctx
            .module
            .lookup_type(&Type::Function { ret: t_int, params: vec![t_int] })
            .is_none()
        {
            let id = fresh();
            sequence.push(
                trx_core::transformations::AddType {
                    fresh_id: id,
                    ty: Type::Function { ret: t_int, params: vec![t_int] },
                }
                .into(),
            );
            id
        } else {
            fn_ty
        };
        let fid = fresh();
        let pid = fresh();
        let label = fresh();
        // Three dead adds, then the returned value.
        let dead1 = fresh();
        let dead2 = fresh();
        let dead3 = fresh();
        let kept = fresh();
        let mk = |result, lhs, rhs| {
            Instruction::with_result(
                result,
                t_int,
                Op::Binary { op: BinOp::IAdd, lhs, rhs },
            )
        };
        let function = Function {
            id: fid,
            ty: declared_fn_ty,
            control: FunctionControl::None,
            params: vec![FunctionParam { id: pid, ty: t_int }],
            blocks: vec![Block {
                label,
                instructions: vec![
                    mk(dead1, pid, pid),
                    mk(dead2, dead1, pid),
                    mk(dead3, dead2, dead2),
                    mk(kept, pid, pid),
                ],
                merge: None,
                terminator: Terminator::ReturnValue { value: kept },
            }],
        };
        sequence.push(AddFunction { function, livesafe: true }.into());
        (ctx, sequence)
    }

    #[test]
    fn payload_shrink_removes_dead_instructions() {
        let (ctx, sequence) = context_and_bloated_function();
        // Interesting iff the module contains a second function at all.
        let reduction = Reducer::default().reduce(&ctx, &sequence, |variant| {
            variant.module.functions.len() == 2
        });
        assert!(
            reduction.stats.payload_instructions_removed >= 3,
            "the three dead adds should be shrunk away, got {}",
            reduction.stats.payload_instructions_removed
        );
        // The surviving payload still applies and keeps the function.
        assert_eq!(reduction.context.module.functions.len(), 2);
    }

    #[test]
    fn payload_shrink_can_be_disabled() {
        let (ctx, sequence) = context_and_bloated_function();
        let reducer =
            Reducer::new(ReducerOptions {
                shrink_added_functions: false,
                max_tests: 10_000,
                ..ReducerOptions::default()
            });
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            variant.module.functions.len() == 2
        });
        assert_eq!(reduction.stats.payload_instructions_removed, 0);
    }
}
