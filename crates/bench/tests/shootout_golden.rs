//! Fixed-seed golden test for the dedup shootout (§3.5 extension).
//!
//! Runs the shootout in its smoke configuration and compares the full
//! confusion-matrix report against the committed
//! `results/dedup_shootout_golden.json`. Any drift in generation,
//! reduction, backend keying, or scoring shows up here as a diff.
//!
//! To regenerate after an intentional change, run:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p trx-bench --test shootout_golden
//! ```
//!
//! and commit the rewritten `results/dedup_shootout_golden.json`. Review
//! the diff — a changed confusion matrix means dedup quality moved.

use trx_bench::shootout::{run_shootout, ShootoutConfig, BACKENDS};

/// The smoke configuration CI runs: small enough to finish in seconds,
/// large enough that every target finds bugs and every backend's
/// confusion matrix is non-trivial.
fn smoke_config() -> ShootoutConfig {
    ShootoutConfig {
        tests: 60,
        cap: 3,
        seed: 0,
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
        .join("dedup_shootout_golden.json")
}

#[test]
fn shootout_confusion_matrices_match_golden_snapshot() {
    let report = run_shootout(&smoke_config());

    // Hard invariants before any golden comparison: the pluggable
    // transformation-set path must reproduce the legacy algorithm, and
    // every surviving target row must score all three backends.
    assert!(
        report.equivalent,
        "transformation-set backend diverged from deduplicate_sets"
    );
    for row in &report.targets {
        assert_eq!(row.backends.len(), BACKENDS.len(), "target {}", row.target);
    }

    let mut rendered = serde_json::to_string_pretty(&report).expect("report serialises");
    rendered.push('\n');

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1 (see test docs)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "dedup shootout diverged from results/dedup_shootout_golden.json; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 (see test docs)"
    );
}
