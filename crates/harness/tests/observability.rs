//! Cross-stage observability invariants, thread-invariance proptests, and
//! the pipeline-report golden snapshot.
//!
//! The recorded counters double as a cross-engine oracle: the same
//! campaign must report the same logical counters whether bugs are reduced
//! serially or on a pool, and the report's `metrics` section (recomputed
//! from resume-invariant state) must agree with what the live sink saw on
//! a fresh uninterrupted run.

use std::sync::Arc;

use proptest::prelude::*;
use trx_harness::pipeline::{run_pipeline, run_pipeline_observed, Journal, WalRecord};
use trx_harness::{ExecutorConfig, PipelineConfig, PipelineReport, WatchdogConfig};
use trx_observe::{Counter, MetricsReport, RecordingSink, SinkHandle};
use trx_targets::{catalog, FaultPlan, FaultyTarget, Target, TestTarget};

fn small_config() -> PipelineConfig {
    PipelineConfig {
        tests: 12,
        executor: ExecutorConfig {
            threads: 2,
            checkpoint_interval: 4,
            ..ExecutorConfig::default()
        },
        // Inline probes keep the suite fast and fully deterministic.
        watchdog: WatchdogConfig { deadline_ms: 0 },
        ..PipelineConfig::default()
    }
}

fn clean_targets() -> Arc<Vec<Target>> {
    Arc::new(catalog::all_targets().into_iter().take(2).collect())
}

/// Persistent (attempt-independent) fault wrappers: the fault decision is
/// a pure function of the probed context, so outcomes — and therefore
/// deterministic-mode counters — cannot depend on scheduling.
fn faulty_targets(seed: u64, panic_p: f64, hang_p: f64) -> Arc<Vec<FaultyTarget>> {
    let plan = FaultPlan {
        seed,
        panic_probability: panic_p,
        hang_probability: hang_p,
        transient_crash_probability: 0.0,
        flip_flop_probability: 0.0,
        transient_ttl: 1_000_000,
    };
    Arc::new(
        catalog::all_targets()
            .into_iter()
            .take(2)
            .map(|t| FaultyTarget::new(t, plan.clone()))
            .collect(),
    )
}

/// Fresh instrumented run: report, deterministic-mode snapshot, records.
fn run_recorded<T: TestTarget + Send + Sync + 'static>(
    config: &PipelineConfig,
    targets: &Arc<Vec<T>>,
) -> (PipelineReport, MetricsReport, Vec<WalRecord>) {
    let sink = Arc::new(RecordingSink::deterministic());
    let handle = SinkHandle::new(sink.clone());
    let mut records = Vec::new();
    let report = run_pipeline_observed(
        config,
        targets,
        &Journal::new(),
        |r| records.push(r.clone()),
        &handle,
    )
    .expect("instrumented pipeline runs");
    (report, sink.snapshot(), records)
}

#[test]
fn metrics_section_agrees_with_live_counters_on_a_fresh_run() {
    let config = small_config();
    let (report, snap, records) = run_recorded(&config, &clean_targets());
    let m = &report.metrics;

    // Reduction totals: report sums journaled per-bug stats, the sink saw
    // the engines emit the same quantities live.
    assert_eq!(m.reduction.tests_run as u64, snap.reduction_total(Counter::TestsRun));
    assert_eq!(m.reduction.chunks_removed as u64, snap.reduction_total(Counter::ChunksRemoved));
    assert_eq!(
        m.reduction.payload_instructions_removed as u64,
        snap.reduction_total(Counter::PayloadInstructionsRemoved)
    );
    assert_eq!(m.reduction.probe_faults as u64, snap.reduction_total(Counter::ProbeFaults));
    assert_eq!(
        m.reduction.poisoned_queries as u64,
        snap.reduction_total(Counter::PoisonedQueries)
    );
    assert_eq!(m.reduction.bugs_triaged as u64, snap.counter("pipeline", Counter::BugsTriaged));

    // Campaign totals come from the final checkpoint on both sides.
    assert_eq!(m.campaign.incidents as u64, snap.counter("campaign", Counter::Incidents));
    assert_eq!(m.campaign.retries, snap.counter("campaign", Counter::Retries));
    assert_eq!(
        m.campaign.quarantined_targets as u64,
        snap.counter("campaign", Counter::QuarantinedTargets)
    );
    assert_eq!(
        m.campaign.tests_completed as u64,
        snap.counter("campaign", Counter::TestsCompleted)
    );
    assert_eq!(
        m.campaign.skipped_by_quarantine,
        snap.counter("campaign", Counter::SkippedByQuarantine)
    );

    // Dedup totals.
    assert_eq!(m.dedup.sets_observed as u64, snap.counter("dedup", Counter::DedupSetsObserved));
    assert_eq!(m.dedup.empty_sets as u64, snap.counter("dedup", Counter::DedupEmptySets));
    assert_eq!(m.dedup.kept as u64, snap.counter("dedup", Counter::DedupKept));

    // WAL totals: a fresh run has no replayed prefix, so the live count is
    // the whole journal.
    assert_eq!(m.wal.records, records.len());
    assert_eq!(m.wal.records as u64, snap.counter("pipeline", Counter::WalRecords));
    assert_eq!(
        m.wal.probe_records,
        records.iter().filter(|r| matches!(r, WalRecord::Probe { .. })).count()
    );

    // Probe conservation on clean targets: no faults, so every query is
    // answered by exactly one live probe or one memo hit.
    assert_eq!(m.reduction.probe_faults, 0);
    assert_eq!(
        snap.reduction_total(Counter::TestsRun),
        snap.reduction_total(Counter::LiveProbes) + snap.reduction_total(Counter::MemoHits),
    );

    // The default prefix-cache budget is enabled, and 12 tests surface at
    // least one reducible bug, so the cache must have been consulted.
    assert!(config.reducer.prefix_cache_budget > 0);
    assert!(m.reduction.tests_run > 0);
    assert!(snap.reduction_total(Counter::CacheLookups) > 0);
    if report.bugs.iter().any(|b| b.stats.chunks_removed > 0) {
        assert!(
            snap.reduction_total(Counter::CacheHits) > 0,
            "a removal succeeded under a nonzero budget but the cache never hit"
        );
    }
}

#[test]
fn probe_reference_cache_decodes_once_per_reduction() {
    let config = small_config();
    let (report, snap, _) = run_recorded(&config, &clean_targets());

    // Each reduction's probes share one ReferenceOracle: at most one
    // reference execution (fill) per bug, no matter how many probes ran,
    // and crash reductions — whose variants never execute cleanly — fill
    // nothing at all.
    let decoded = snap.reduction_total(Counter::ModulesDecoded);
    let reused = snap.reduction_total(Counter::DecodeReuses);
    assert!(
        decoded <= report.bugs.len() as u64,
        "{decoded} reference fills for {} reductions — the per-reduction cache is not caching",
        report.bugs.len()
    );
    // Miscompilation probes consult the reference on every clean-variant
    // run, so reuses must dominate fills on this workload.
    assert!(reused > decoded, "probes barely reused the cached reference: {reused} reuses vs {decoded} fills");
}

#[test]
fn serial_and_parallel_runs_record_identical_deterministic_snapshots() {
    let serial = small_config();
    let parallel = PipelineConfig { reduction_threads: 4, ..small_config() };
    let (report_s, snap_s, _) = run_recorded(&serial, &clean_targets());
    let (report_p, snap_p, _) = run_recorded(&parallel, &clean_targets());
    assert_eq!(report_s, report_p);
    assert_eq!(
        snap_s.to_json(),
        snap_p.to_json(),
        "deterministic snapshots diverged across reduction_threads"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite (a): on random persistent fault plans, the deterministic
    /// recording sink's output is byte-identical between
    /// `reduction_threads = 1` and `= 4`.
    #[test]
    fn deterministic_snapshots_are_thread_invariant_under_fault_plans(
        seed in 0u64..=u64::MAX,
        panic_steps in 0u32..=3,
        hang_steps in 0u32..=2,
    ) {
        let panic_p = f64::from(panic_steps) * 0.1;
        let hang_p = f64::from(hang_steps) * 0.1;
        let config = PipelineConfig { tests: 8, ..small_config() };
        let parallel = PipelineConfig { reduction_threads: 4, ..config };
        // Fresh wrappers per run: FaultyTarget keeps interior attempt
        // counters, and sharing one instance would leak state from the
        // serial run into the parallel one.
        let (report_s, snap_s, records_s) =
            run_recorded(&config, &faulty_targets(seed, panic_p, hang_p));
        let (report_p, snap_p, records_p) =
            run_recorded(&parallel, &faulty_targets(seed, panic_p, hang_p));
        prop_assert_eq!(report_s, report_p);
        prop_assert_eq!(records_s, records_p);
        prop_assert_eq!(
            snap_s.to_json(),
            snap_p.to_json(),
            "fault plan (seed {}, panic {}, hang {}) broke snapshot thread-invariance",
            seed, panic_p, hang_p
        );
    }
}

#[test]
fn resumed_run_reports_the_same_metrics_section() {
    let config = small_config();
    let (golden, _, records) = run_recorded(&config, &clean_targets());
    let cut = records.len() / 2;
    let prefix = Journal { records: records[..cut].to_vec() };
    let (resumed, _, _) = {
        let sink = Arc::new(RecordingSink::deterministic());
        let handle = SinkHandle::new(sink.clone());
        let mut emitted = Vec::new();
        let report = run_pipeline_observed(
            &config,
            &clean_targets(),
            &prefix,
            |r| emitted.push(r.clone()),
            &handle,
        )
        .expect("resumed instrumented run");
        (report, sink.snapshot(), emitted)
    };
    // The metrics section is recomputed from resume-invariant state, so
    // the whole report (metrics included) matches byte for byte.
    assert_eq!(resumed, golden);
    assert_eq!(resumed.to_json().unwrap(), golden.to_json().unwrap());
}

/// Satellite (c): golden-file snapshot of the full pipeline report,
/// including the `metrics` section.
///
/// To regenerate after an intentional report-format change, run:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test -p trx-harness --test observability \
///     pipeline_report_matches_golden_snapshot
/// ```
///
/// and commit the rewritten `tests/golden/pipeline_report.json`. Review
/// the diff — every field change here is a WAL/report format change that
/// downstream consumers will see.
#[test]
fn pipeline_report_matches_golden_snapshot() {
    let config = small_config();
    let (report, _) = {
        let mut records = Vec::new();
        let report =
            run_pipeline(&config, &clean_targets(), &Journal::new(), |r| records.push(r.clone()))
                .expect("pipeline runs");
        (report, records)
    };
    let mut rendered = report.to_json().expect("report serialises");
    rendered.push('\n');

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("pipeline_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1 (see test docs)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "pipeline report diverged from tests/golden/pipeline_report.json; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 (see test docs)"
    );
}
