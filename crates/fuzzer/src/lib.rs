//! # trx-fuzzer
//!
//! The fuzzing half of transformation-based compiler testing (§3.2): given a
//! context, repeatedly runs *fuzzer passes* that apply semantics-preserving
//! transformations, returning the transformation sequence alongside the
//! transformed context.
//!
//! Two strategies are provided, mirroring the paper's evaluation arms:
//!
//! * **recommendations** (the default, "spirv-fuzz"): after running a pass,
//!   a random subset of manually curated follow-on passes is pushed onto a
//!   recommendation queue; the next pass is drawn from the queue or at
//!   random with equal probability;
//! * **simple** ("spirv-fuzz-simple"): passes are always drawn at random.
//!
//! # Example
//!
//! ```
//! use trx_ir::{ModuleBuilder, Inputs, interp};
//! use trx_core::Context;
//! use trx_fuzzer::{Fuzzer, FuzzerOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let t_int = b.type_int();
//! let c = b.constant_int(3);
//! let mut f = b.begin_entry_function("main");
//! let x = f.imul(t_int, c, c);
//! f.store_output("out", x);
//! f.ret();
//! f.finish();
//! let module = b.finish();
//!
//! let reference = interp::execute(&module, &Inputs::default())?;
//! let ctx = Context::new(module, Inputs::default())?;
//! let result = Fuzzer::new(FuzzerOptions::default()).run(ctx, &[], 42);
//!
//! // Theorem 2.6: the variant computes the identical result.
//! let variant = interp::execute(&result.context.module, &result.context.inputs)?;
//! assert_eq!(reference, variant);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod livesafe;
pub mod opportunities;
mod passes;

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use trx_core::{Context, Transformation};
use trx_ir::Module;

pub use passes::PassId;

/// Configuration for a fuzzing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzerOptions {
    /// Hard cap on the number of applied transformations (the paper's tool
    /// stops at 2000).
    pub max_transformations: usize,
    /// Hard cap on the number of pass executions.
    pub max_passes: usize,
    /// Probability of running another pass after each one completes.
    pub continue_probability: f64,
    /// Whether the recommendations strategy is enabled (disable to obtain
    /// the "spirv-fuzz-simple" configuration of §4.1).
    pub recommendations: bool,
}

impl Default for FuzzerOptions {
    fn default() -> Self {
        FuzzerOptions {
            max_transformations: 300,
            max_passes: 40,
            continue_probability: 0.9,
            recommendations: true,
        }
    }
}

impl FuzzerOptions {
    /// The "simple" configuration: identical but with recommendations
    /// disabled.
    #[must_use]
    pub fn simple() -> Self {
        FuzzerOptions { recommendations: false, ..FuzzerOptions::default() }
    }
}

/// The outcome of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzResult {
    /// The transformed context (the variant program plus facts).
    pub context: Context,
    /// The applied transformation sequence; replaying it on the original
    /// context reproduces `context`.
    pub transformations: Vec<Transformation>,
    /// The passes that ran, in order (for diagnostics).
    pub passes_run: Vec<PassId>,
}

/// The transformation-based fuzzer.
#[derive(Debug, Clone)]
pub struct Fuzzer {
    options: FuzzerOptions,
}

impl Fuzzer {
    /// Creates a fuzzer with the given options.
    #[must_use]
    pub fn new(options: FuzzerOptions) -> Self {
        Fuzzer { options }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> &FuzzerOptions {
        &self.options
    }

    /// Runs the fuzzer over `context`, drawing donor functions from
    /// `donors`, with all randomness derived from `seed`.
    #[must_use]
    pub fn run(&self, mut context: Context, donors: &[Module], seed: u64) -> FuzzResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorded = Vec::new();
        let mut queue: VecDeque<PassId> = VecDeque::new();
        let mut passes_run = Vec::new();

        for pass_number in 0..self.options.max_passes {
            if recorded.len() >= self.options.max_transformations {
                break;
            }
            if pass_number > 0 && !rng.gen_bool(self.options.continue_probability) {
                break;
            }
            // Pop from the recommendation queue or pick at random, with
            // uniform probability (§3.2).
            let recommended = self.options.recommendations
                && !queue.is_empty()
                && rng.gen_bool(0.5);
            let drawn = if recommended {
                queue.pop_front()
            } else {
                PassId::ALL.as_slice().choose(&mut rng).copied()
            };
            let Some(pass) = drawn else {
                // Unreachable (the queue was checked non-empty and
                // PassId::ALL is a non-empty const), but degrade to ending
                // the run rather than aborting a fuzzing campaign.
                break;
            };
            passes_run.push(pass);
            {
                let mut pc = passes::PassContext {
                    ctx: &mut context,
                    rng: &mut rng,
                    recorded: &mut recorded,
                    donors,
                    limit: self.options.max_transformations,
                };
                passes::run_pass(pass, &mut pc);
            }
            if self.options.recommendations {
                // Push a random subset of follow-ons.
                for &follow in pass.follow_ons() {
                    if rng.gen_bool(0.6) {
                        queue.push_back(follow);
                    }
                }
            }
        }

        FuzzResult { context, transformations: recorded, passes_run }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_core::apply_sequence;
    use trx_ir::validate::validate;
    use trx_ir::{interp, Inputs, ModuleBuilder, Value};

    fn seed_context() -> Context {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let u = b.uniform("k", t_int);
        let c2 = b.constant_int(2);
        let c10 = b.constant_int(10);
        let mut f = b.begin_entry_function("main");
        let loaded = f.load(u);
        let cond = f.slt(loaded, c10);
        let then_l = f.reserve_label();
        let merge_l = f.reserve_label();
        f.selection_merge(merge_l);
        f.branch_cond(cond, then_l, merge_l);
        f.begin_block_with_label(then_l);
        let doubled = f.imul(t_int, loaded, c2);
        f.store_output("extra", doubled);
        f.branch(merge_l);
        f.begin_block_with_label(merge_l);
        let sum = f.iadd(t_int, loaded, c2);
        f.store_output("out", sum);
        f.ret();
        f.finish();
        let module = b.finish();
        let inputs = Inputs::new().with("k", Value::Int(7));
        Context::new(module, inputs).unwrap()
    }

    #[test]
    fn fuzzing_preserves_semantics_and_validity() {
        for seed in 0..8 {
            let ctx = seed_context();
            let reference = interp::execute(&ctx.module, &ctx.inputs).unwrap();
            let result = Fuzzer::new(FuzzerOptions::default()).run(ctx, &[], seed);
            validate(&result.context.module).unwrap_or_else(|e| {
                panic!("seed {seed}: invalid module after fuzzing: {e}")
            });
            let variant =
                interp::execute(&result.context.module, &result.context.inputs).unwrap();
            assert_eq!(reference, variant, "seed {seed} changed semantics");
        }
    }

    #[test]
    fn fuzzing_is_deterministic_per_seed() {
        let a = Fuzzer::new(FuzzerOptions::default()).run(seed_context(), &[], 7);
        let b = Fuzzer::new(FuzzerOptions::default()).run(seed_context(), &[], 7);
        assert_eq!(a.transformations, b.transformations);
        assert_eq!(a.context.module, b.context.module);
        let c = Fuzzer::new(FuzzerOptions::default()).run(seed_context(), &[], 8);
        assert_ne!(a.context.module, c.context.module);
    }

    #[test]
    fn replaying_the_sequence_reproduces_the_variant() {
        let result = Fuzzer::new(FuzzerOptions::default()).run(seed_context(), &[], 3);
        let mut replay = seed_context();
        let applied = apply_sequence(&mut replay, &result.transformations);
        assert!(applied.iter().all(|&a| a), "every recorded transformation must re-apply");
        assert_eq!(replay.module, result.context.module);
    }

    #[test]
    fn fuzzing_grows_the_module() {
        // Over a handful of seeds, fuzzing must both apply transformations
        // and (for at least one seed) grow the module.
        let before = seed_context().module.instruction_count();
        let mut grew = false;
        let mut total_applied = 0;
        for seed in 0..6 {
            let result = Fuzzer::new(FuzzerOptions::default()).run(seed_context(), &[], seed);
            total_applied += result.transformations.len();
            grew |= result.context.module.instruction_count() > before;
        }
        assert!(total_applied > 0, "no seed applied any transformation");
        assert!(grew, "no seed grew the module");
    }

    #[test]
    fn simple_mode_disables_recommendations() {
        let opts = FuzzerOptions::simple();
        assert!(!opts.recommendations);
        let result = Fuzzer::new(opts).run(seed_context(), &[], 5);
        // Still works end to end.
        validate(&result.context.module).unwrap();
    }

    #[test]
    fn donor_functions_are_imported() {
        // Build a donor module with a helper function.
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c5 = b.constant_int(5);
        let mut h = b.begin_function(t_int, &[t_int]);
        let p = h.param_ids()[0];
        let r = h.iadd(t_int, p, c5);
        h.ret_value(r);
        h.finish();
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c5);
        f.ret();
        f.finish();
        let donor = b.finish();

        // Run many seeds; at least one should import the donor function.
        let mut imported = false;
        for seed in 0..120 {
            let ctx = seed_context();
            let fn_count = ctx.module.functions.len();
            let result =
                Fuzzer::new(FuzzerOptions::default()).run(ctx, std::slice::from_ref(&donor), seed);
            if result.context.module.functions.len() > fn_count {
                imported = true;
                break;
            }
        }
        assert!(imported, "no seed imported a donor function");
    }
}

#[cfg(test)]
mod pass_coverage_tests {
    use super::*;
    use std::collections::BTreeMap;
    use trx_core::TransformationKind;
    use trx_ir::{Inputs, ModuleBuilder, Value};

    /// Across a spread of seeds with donors available, every transformation
    /// kind the fuzzer can emit shows up at least once — no pass is dead
    /// code.
    #[test]
    fn all_transformation_kinds_are_exercised() {
        // A seed context rich enough for every pass: uniforms (incl. a bool
        // one), a helper call, a conditional, composites.
        let seed_context = || {
            let mut b = ModuleBuilder::new();
            let t_int = b.type_int();
            let t_bool = b.type_bool();
            let u = b.uniform("k", t_int);
            let _flag = b.uniform("flag", t_bool);
            let c2 = b.constant_int(2);
            let c10 = b.constant_int(10);
            let t_vec = b.type_vector(t_int, 3);
            let mut h = b.begin_function(t_int, &[t_int]);
            let p = h.param_ids()[0];
            let r = h.imul(t_int, p, c2);
            h.ret_value(r);
            let helper = h.finish();
            let mut f = b.begin_entry_function("main");
            let loaded = f.load(u);
            let called = f.call(helper, vec![loaded]);
            let vec = f.composite_construct(t_vec, vec![loaded, c2, called]);
            let elem = f.composite_extract(vec, vec![2]);
            let cond = f.slt(elem, c10);
            let then_l = f.reserve_label();
            let merge_l = f.reserve_label();
            f.selection_merge(merge_l);
            f.branch_cond(cond, then_l, merge_l);
            f.begin_block_with_label(then_l);
            f.store_output("extra", elem);
            f.branch(merge_l);
            f.begin_block_with_label(merge_l);
            f.store_output("out", called);
            f.ret();
            f.finish();
            let inputs = Inputs::new()
                .with("k", Value::Int(3))
                .with("flag", Value::Bool(true));
            trx_core::Context::new(b.finish(), inputs).unwrap()
        };
        // A donor with a helper the AddFunctions pass can import.
        let donor = {
            let mut b = ModuleBuilder::new();
            let t_int = b.type_int();
            let c = b.constant_int(5);
            let mut h = b.begin_function(t_int, &[t_int]);
            let p = h.param_ids()[0];
            let r = h.iadd(t_int, p, c);
            h.ret_value(r);
            h.finish();
            let mut f = b.begin_entry_function("main");
            f.store_output("out", c);
            f.ret();
            f.finish();
            b.finish()
        };

        let mut seen: BTreeMap<TransformationKind, usize> = BTreeMap::new();
        for seed in 0..250 {
            let result = Fuzzer::new(FuzzerOptions::default()).run(
                seed_context(),
                std::slice::from_ref(&donor),
                seed,
            );
            for t in &result.transformations {
                *seen.entry(t.kind()).or_insert(0) += 1;
            }
        }
        let missing: Vec<&str> = TransformationKind::ALL
            .iter()
            .filter(|k| !seen.contains_key(k))
            .map(|k| k.name())
            .collect();
        assert!(
            missing.is_empty(),
            "kinds never produced across 250 seeds: {missing:?} (seen: {seen:?})"
        );
    }
}

#[cfg(test)]
mod livesafe_tests {
    use super::*;
    use trx_core::transformations::FunctionCall;
    use trx_core::InstructionDescriptor;
    use trx_ir::{interp, Id, Inputs, ModuleBuilder, Op, Value};

    /// A donor whose only helper contains a loop.
    fn loop_donor() -> Module {
        // Index 1 of the corpus donor family has the loop helper; build an
        // equivalent inline to keep this test self-contained.
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c0 = b.constant_int(0);
        let c1 = b.constant_int(1);
        let c3 = b.constant_int(3);
        let mut h = b.begin_function(t_int, &[t_int]);
        let p = h.param_ids()[0];
        let pre = h.current_label();
        let header = h.reserve_label();
        let body = h.reserve_label();
        let cont = h.reserve_label();
        let merge = h.reserve_label();
        h.branch(header);
        h.begin_block_with_label(header);
        let i = h.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
        let acc = h.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
        let cond = h.slt(i, p);
        h.loop_merge(merge, cont);
        h.branch_cond(cond, body, merge);
        h.begin_block_with_label(body);
        let acc2 = h.iadd(t_int, acc, c3);
        h.branch(cont);
        h.begin_block_with_label(cont);
        let i2 = h.iadd(t_int, i, c1);
        h.branch(header);
        h.begin_block_with_label(merge);
        h.ret_value(acc);
        h.finish();
        let mut f = b.begin_entry_function("main");
        f.store_output("unused", c0);
        f.ret();
        f.finish();
        let mut module = b.finish();
        let function = module
            .functions
            .iter_mut()
            .find(|f| f.block(header).is_some())
            .unwrap();
        let header_block = function.block_mut(header).unwrap();
        if let Op::Phi { incoming } = &mut header_block.instructions[0].op {
            incoming[1].0 = i2;
        }
        if let Op::Phi { incoming } = &mut header_block.instructions[1].op {
            incoming[1].0 = acc2;
        }
        trx_ir::validate::validate(&module).expect("donor validates");
        module
    }

    fn tiny_context() -> trx_core::Context {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(9);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        trx_core::Context::new(b.finish(), Inputs::default()).unwrap()
    }

    /// Loop donors are importable live-safe (via the limiter) and callable
    /// from live code without changing semantics.
    #[test]
    fn loop_donor_becomes_livesafe_and_callable() {
        let donor = loop_donor();
        let mut imported_livesafe = false;
        for seed in 0..120 {
            let ctx = tiny_context();
            let reference = interp::execute(&ctx.module, &ctx.inputs).unwrap();
            let result = Fuzzer::new(FuzzerOptions::default()).run(
                ctx,
                std::slice::from_ref(&donor),
                seed,
            );
            let added: Vec<_> = result
                .context
                .module
                .functions
                .iter()
                .filter(|f| f.id != result.context.module.entry_point)
                .collect();
            if added.is_empty() {
                continue;
            }
            let has_loop_fn = added.iter().any(|f| crate::livesafe::has_loops(f));
            if !has_loop_fn {
                continue;
            }
            let livesafe = added
                .iter()
                .any(|f| result.context.facts.function_is_live_safe(f.id));
            if !livesafe {
                continue;
            }
            imported_livesafe = true;
            // Semantics held regardless.
            let variant =
                interp::execute(&result.context.module, &result.context.inputs).unwrap();
            assert_eq!(reference, variant, "seed {seed}");

            // And the live-safe function is genuinely callable from live
            // code: add a call explicitly and re-check.
            let mut ctx = result.context.clone();
            let callee = added
                .iter()
                .find(|f| {
                    crate::livesafe::has_loops(f)
                        && result.context.facts.function_is_live_safe(f.id)
                })
                .map(|f| f.id);
            if let Some(callee) = callee {
                let entry_fn = ctx.module.entry_function();
                let anchor = entry_fn.entry_block().label;
                let t_int = ctx.module.lookup_type(&trx_ir::Type::Int).unwrap();
                let arg = ctx
                    .module
                    .constants
                    .iter()
                    .find(|c| c.ty == t_int)
                    .map(|c| c.id)
                    .unwrap();
                let call = FunctionCall {
                    fresh_id: Id::new(ctx.module.id_bound),
                    callee,
                    args: vec![arg],
                    insert_before: InstructionDescriptor::in_block(anchor, 0),
                };
                if trx_core::apply(&mut ctx, &call.into()) {
                    let called =
                        interp::execute(&ctx.module, &ctx.inputs).expect("terminates");
                    assert_eq!(called.outputs["out"], Value::Int(9));
                }
            }
            break;
        }
        assert!(imported_livesafe, "no seed imported the loop donor live-safe");
    }
}
