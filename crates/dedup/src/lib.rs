//! # trx-dedup
//!
//! Test-case deduplication "almost for free" (§2.1, §3.5, Figure 6).
//!
//! Given a set of *reduced* test cases, each characterised by the set of
//! transformation types in its minimized sequence, the algorithm greedily
//! selects tests whose type sets are pairwise disjoint, preferring tests
//! with fewer types:
//!
//! ```text
//! ToInvestigate <- {}
//! i <- 1
//! while Tests != {}:
//!     if exists t in Tests with |types(t)| == i:
//!         ToInvestigate <- ToInvestigate + {t}
//!         Tests <- { t' in Tests | types(t) ∩ types(t') == {} }
//!     else:
//!         i <- i + 1
//! ```
//!
//! Per §3.5, a fixed list of *supporting* transformation types is ignored
//! when computing `types(t)`: declaration helpers, `SplitBlock`,
//! `AddFunction` (enablers for other transformations) and
//! `ReplaceIdWithSynonym` (which "reaps the benefits of prior
//! transformations but is not interesting in isolation").

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod bisect;

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use trx_core::{Transformation, TransformationKind};
use trx_observe::{Counter, Scope, SinkHandle};

pub use backend::{
    CrashSignatureBackend, DedupBackend, DedupBackendKind, DedupKey, FindingEvidence,
    FindingOutcome, TransformationSetBackend,
};
pub use bisect::PassBisectionBackend;

/// The set of transformation types characterising a reduced test, with
/// supporting types removed (§3.5).
#[must_use]
pub fn interesting_types(sequence: &[Transformation]) -> BTreeSet<TransformationKind> {
    sequence
        .iter()
        .map(Transformation::kind)
        .filter(|k| !k.is_supporting())
        .collect()
}

/// The raw set of transformation types, ignore list disabled — the ablation
/// arm for evaluating the §3.5 refinement.
#[must_use]
pub fn all_types(sequence: &[Transformation]) -> BTreeSet<TransformationKind> {
    sequence.iter().map(Transformation::kind).collect()
}

/// [`interesting_types`], additionally reporting how many distinct
/// *supporting* kinds the §3.5 ignore list removed from this sequence
/// (`dedup_supporting_excluded` on `sink` under `scope`).
#[must_use]
pub fn interesting_types_observed(
    sequence: &[Transformation],
    sink: &SinkHandle,
    scope: Scope,
) -> BTreeSet<TransformationKind> {
    let interesting = interesting_types(sequence);
    if sink.enabled() {
        let excluded = all_types(sequence).len() - interesting.len();
        sink.count(scope, Counter::DedupSupportingExcluded, excluded as u64);
    }
    interesting
}

/// Runs the Figure 6 algorithm over pre-computed type sets, returning the
/// indices of the tests recommended for manual investigation, in selection
/// order.
///
/// Tests whose (filtered) type set is empty are never recommended: they
/// consist solely of supporting transformations and carry no signal.
/// Ties at the same cardinality are broken by index, making the result
/// deterministic.
#[must_use]
pub fn deduplicate_sets(type_sets: &[BTreeSet<TransformationKind>]) -> Vec<usize> {
    let mut to_investigate = Vec::new();
    let mut remaining: Vec<usize> = (0..type_sets.len())
        .filter(|&i| !type_sets[i].is_empty())
        .collect();
    let mut cardinality = 1;
    while !remaining.is_empty() {
        match remaining
            .iter()
            .copied()
            .find(|&i| type_sets[i].len() == cardinality)
        {
            Some(chosen) => {
                to_investigate.push(chosen);
                let chosen_types = &type_sets[chosen];
                remaining.retain(|&i| type_sets[i].is_disjoint(chosen_types));
            }
            None => cardinality += 1,
        }
    }
    to_investigate
}

/// [`deduplicate_sets`], reporting the corpus shape to `sink` under
/// `scope`: `dedup_sets_observed` (total sets), `dedup_empty_sets` (sets
/// empty after supporting-type filtering, which are never recommended) and
/// `dedup_kept` (recommended tests).
///
/// These counters are *logical*: an [`IncrementalDedup`] that absorbed the
/// same sets one at a time through
/// [`IncrementalDedup::observe_with_sink`] /
/// [`IncrementalDedup::recommend_with_sink`] reports identical values —
/// the invariant suite uses that equality as a batch-vs-incremental oracle.
#[must_use]
pub fn deduplicate_sets_observed(
    type_sets: &[BTreeSet<TransformationKind>],
    sink: &SinkHandle,
    scope: Scope,
) -> Vec<usize> {
    let kept = deduplicate_sets(type_sets);
    if sink.enabled() {
        sink.count(scope, Counter::DedupSetsObserved, type_sets.len() as u64);
        let empty = type_sets.iter().filter(|s| s.is_empty()).count();
        sink.count(scope, Counter::DedupEmptySets, empty as u64);
        sink.count(scope, Counter::DedupKept, kept.len() as u64);
    }
    kept
}

/// Convenience wrapper: deduplicates reduced transformation sequences
/// directly.
#[must_use]
pub fn deduplicate(sequences: &[Vec<Transformation>]) -> Vec<usize> {
    let sets: Vec<BTreeSet<TransformationKind>> = sequences
        .iter()
        .map(|s| interesting_types(s))
        .collect();
    deduplicate_sets(&sets)
}

/// Incremental deduplication over a growing corpus of reduced tests.
///
/// A recoverable triage pipeline completes reductions one at a time — and,
/// after a crash, replays the completed ones from its journal before
/// producing new ones. This accumulator absorbs type sets in arrival order
/// and recommends with the Figure 6 greedy at any point, with two guarantees:
///
/// * **Order determinism** — observing the same sets in the same order
///   always yields the same recommendation (ties break by arrival index).
/// * **Resume equivalence** — a state serialised mid-corpus, deserialised,
///   and fed the remaining sets recommends exactly what an uninterrupted
///   accumulator would.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalDedup {
    sets: Vec<BTreeSet<TransformationKind>>,
}

impl IncrementalDedup {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        IncrementalDedup::default()
    }

    /// Absorbs one reduced test's (already filtered) type set, returning the
    /// index it will be reported under.
    pub fn observe(&mut self, types: BTreeSet<TransformationKind>) -> usize {
        self.sets.push(types);
        self.sets.len() - 1
    }

    /// Absorbs a reduced transformation sequence, filtering supporting types
    /// as [`interesting_types`] does.
    pub fn observe_sequence(&mut self, sequence: &[Transformation]) -> usize {
        self.observe(interesting_types(sequence))
    }

    /// [`IncrementalDedup::observe`], bumping `dedup_sets_observed` (and
    /// `dedup_empty_sets` when the set is empty) on `sink` under `scope`.
    pub fn observe_with_sink(
        &mut self,
        types: BTreeSet<TransformationKind>,
        sink: &SinkHandle,
        scope: Scope,
    ) -> usize {
        sink.count(scope, Counter::DedupSetsObserved, 1);
        if types.is_empty() {
            sink.count(scope, Counter::DedupEmptySets, 1);
        }
        self.observe(types)
    }

    /// Number of tests observed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no tests have been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The observed type sets, in arrival order.
    #[must_use]
    pub fn sets(&self) -> &[BTreeSet<TransformationKind>] {
        &self.sets
    }

    /// Runs the Figure 6 greedy over everything observed so far. The corpus
    /// is retained in full, so this may be called repeatedly as the corpus
    /// grows; each call is `O(n²)` in observed tests, which is negligible at
    /// triage scale (bug counts, not test counts).
    #[must_use]
    pub fn recommend(&self) -> Vec<usize> {
        deduplicate_sets(&self.sets)
    }

    /// [`IncrementalDedup::recommend`], bumping `dedup_kept` by the number
    /// of recommended tests. Callers that recommend repeatedly on a growing
    /// corpus should report only the final call.
    #[must_use]
    pub fn recommend_with_sink(&self, sink: &SinkHandle, scope: Scope) -> Vec<usize> {
        let kept = self.recommend();
        sink.count(scope, Counter::DedupKept, kept.len() as u64);
        kept
    }

    /// Appends every set of `other` to this corpus, in `other`'s arrival
    /// order, returning how many sets were absorbed. Merging corpora A then
    /// B is equivalent to observing A's sets followed by B's.
    pub fn merge(&mut self, other: &IncrementalDedup) -> usize {
        self.sets.extend(other.sets.iter().cloned());
        other.sets.len()
    }

    /// Serialises the corpus as JSON lines — one type set per line, in
    /// arrival order — the same append-only discipline the pipeline WAL
    /// uses. A crash can tear at most the final line, which
    /// [`IncrementalDedup::from_lines_lossy`] drops.
    #[must_use]
    pub fn to_lines(&self) -> String {
        let mut out = String::new();
        for set in &self.sets {
            // A BTreeSet of unit variants always serialises; fall back to an
            // empty array rather than poisoning the whole corpus.
            let line = serde_json::to_string(set).unwrap_or_else(|_| "[]".to_owned());
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Recovers a corpus from (possibly truncated) [`IncrementalDedup::to_lines`]
    /// output. Parsing stops at the first line that fails to decode — a torn
    /// tail from a crashed append — so the result is always an exact prefix
    /// of the corpus that was being written. Never panics, for any input.
    #[must_use]
    pub fn from_lines_lossy(text: &str) -> IncrementalDedup {
        let mut sets = Vec::new();
        for line in text.lines() {
            match serde_json::from_str::<BTreeSet<TransformationKind>>(line) {
                Ok(set) => sets.push(set),
                Err(_) => break,
            }
        }
        IncrementalDedup { sets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TransformationKind as K;

    fn set(kinds: &[K]) -> BTreeSet<K> {
        kinds.iter().copied().collect()
    }

    #[test]
    fn selected_tests_have_disjoint_types() {
        let sets = vec![
            set(&[K::AddDeadBlock, K::MoveBlockDown]),
            set(&[K::AddDeadBlock]),
            set(&[K::CopyObject]),
            set(&[K::MoveBlockDown, K::CopyObject]),
            set(&[K::FunctionCall, K::InlineFunction]),
        ];
        let picked = deduplicate_sets(&sets);
        for (a_pos, &a) in picked.iter().enumerate() {
            for &b in &picked[a_pos + 1..] {
                assert!(
                    sets[a].is_disjoint(&sets[b]),
                    "tests {a} and {b} share a type"
                );
            }
        }
    }

    #[test]
    fn smaller_type_sets_preferred() {
        let sets = vec![
            set(&[K::AddDeadBlock, K::MoveBlockDown, K::CopyObject]),
            set(&[K::AddDeadBlock]),
        ];
        let picked = deduplicate_sets(&sets);
        // The singleton is picked first; the triple overlaps and is dropped.
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn paper_scenario_from_section_2_1() {
        // 35 reports with {SplitBlock(support), AddDeadBlock, ChangeRHS-like},
        // 42 with {AddStore, AddLoad}, 23 with >= four of five types.
        // Modelled here with our kinds: set A uses {AddDeadBlock,
        // ReplaceConstantWithUniform}, set B uses {AddStore, AddLoad}, the
        // rest use four+ kinds spanning both. Expect one report from A and
        // one from B.
        let a = set(&[K::AddDeadBlock, K::ReplaceConstantWithUniform]);
        let b = set(&[K::AddStore, K::AddLoad]);
        let big = set(&[
            K::AddDeadBlock,
            K::ReplaceConstantWithUniform,
            K::AddStore,
            K::AddLoad,
        ]);
        let mut sets = Vec::new();
        for _ in 0..35 {
            sets.push(a.clone());
        }
        for _ in 0..42 {
            sets.push(b.clone());
        }
        for _ in 0..23 {
            sets.push(big.clone());
        }
        let picked = deduplicate_sets(&sets);
        assert_eq!(picked.len(), 2);
        assert_eq!(sets[picked[0]], a);
        assert_eq!(sets[picked[1]], b);
    }

    #[test]
    fn supporting_only_tests_never_recommended() {
        let sets = vec![BTreeSet::new(), set(&[K::AddDeadBlock])];
        assert_eq!(deduplicate_sets(&sets), vec![1]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(deduplicate_sets(&[]).is_empty());
        assert!(deduplicate(&[]).is_empty());
    }

    #[test]
    fn interesting_types_filters_supporting_kinds() {
        use trx_core::transformations::{AddType, SetFunctionControl};
        use trx_ir::{FunctionControl, Id, Type};
        let seq: Vec<Transformation> = vec![
            AddType { fresh_id: Id::new(100), ty: Type::Int }.into(),
            SetFunctionControl {
                function: Id::new(1),
                control: FunctionControl::DontInline,
            }
            .into(),
        ];
        let types = interesting_types(&seq);
        assert_eq!(types, set(&[K::SetFunctionControl]));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let sets = vec![set(&[K::CopyObject]), set(&[K::AddLoad])];
        // Both singletons are disjoint; both get picked, lowest index first.
        assert_eq!(deduplicate_sets(&sets), vec![0, 1]);
    }

    #[test]
    fn all_empty_sets_yield_empty_output() {
        let sets = vec![BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
        assert!(deduplicate_sets(&sets).is_empty());
    }

    #[test]
    fn all_pairwise_overlapping_picks_exactly_first_at_min_cardinality() {
        // Every pair shares a type, so the greedy keeps exactly one test —
        // and the tie at cardinality 2 must break to the lowest index.
        let sets = vec![
            set(&[K::AddDeadBlock, K::CopyObject]),
            set(&[K::CopyObject, K::AddLoad]),
            set(&[K::AddLoad, K::AddDeadBlock]),
        ];
        assert_eq!(deduplicate_sets(&sets), vec![0]);

        // Rotating the corpus moves the winner with it: the choice is a
        // function of position, not of set contents hashed some other way.
        let rotated = vec![sets[1].clone(), sets[2].clone(), sets[0].clone()];
        assert_eq!(deduplicate_sets(&rotated), vec![0]);
    }

    #[test]
    fn overlap_chain_keeps_non_adjacent_tests() {
        // a–b overlap, b–c overlap, a–c disjoint: picking a kills b only.
        let sets = vec![
            set(&[K::AddDeadBlock, K::CopyObject]),
            set(&[K::CopyObject, K::AddLoad]),
            set(&[K::AddLoad, K::AddStore]),
        ];
        assert_eq!(deduplicate_sets(&sets), vec![0, 2]);
    }

    #[test]
    fn incremental_matches_batch() {
        let sets = vec![
            set(&[K::AddDeadBlock, K::MoveBlockDown]),
            set(&[K::AddDeadBlock]),
            BTreeSet::new(),
            set(&[K::CopyObject]),
            set(&[K::MoveBlockDown, K::CopyObject]),
        ];
        let mut inc = IncrementalDedup::new();
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(inc.observe(s.clone()), i);
        }
        assert_eq!(inc.recommend(), deduplicate_sets(&sets));
        assert_eq!(inc.len(), sets.len());
    }

    #[test]
    fn incremental_observes_same_counters_as_batch() {
        use std::sync::Arc;
        use trx_observe::RecordingSink;

        // §3.5 counter invariant: feeding the same corpus through the batch
        // API and through the incremental accumulator must report the same
        // type-set counters — and the same recommendation.
        let sets = vec![
            set(&[K::AddDeadBlock, K::MoveBlockDown]),
            set(&[K::AddDeadBlock]),
            BTreeSet::new(),
            set(&[K::CopyObject]),
            BTreeSet::new(),
            set(&[K::MoveBlockDown, K::CopyObject]),
        ];

        let batch_sink = Arc::new(RecordingSink::deterministic());
        let batch_handle = SinkHandle::new(batch_sink.clone());
        let batch = deduplicate_sets_observed(&sets, &batch_handle, Scope::Dedup);

        let inc_sink = Arc::new(RecordingSink::deterministic());
        let inc_handle = SinkHandle::new(inc_sink.clone());
        let mut inc = IncrementalDedup::new();
        for s in &sets {
            inc.observe_with_sink(s.clone(), &inc_handle, Scope::Dedup);
        }
        let incremental = inc.recommend_with_sink(&inc_handle, Scope::Dedup);

        assert_eq!(batch, incremental);
        let a = batch_sink.snapshot();
        let b = inc_sink.snapshot();
        assert_eq!(a.to_json(), b.to_json(), "batch and incremental counters diverge");
        assert_eq!(a.counter("dedup", Counter::DedupSetsObserved), sets.len() as u64);
        assert_eq!(a.counter("dedup", Counter::DedupEmptySets), 2);
        assert_eq!(a.counter("dedup", Counter::DedupKept), batch.len() as u64);
    }

    #[test]
    fn supporting_kinds_are_counted_as_excluded() {
        use std::sync::Arc;
        use trx_core::transformations::{AddType, SetFunctionControl, SplitBlock};
        use trx_core::{Anchor, InstructionDescriptor};
        use trx_ir::{FunctionControl, Id, Type};
        use trx_observe::RecordingSink;

        // Two distinct supporting kinds (AddType, SplitBlock) and one
        // interesting kind: the observed variant must report exactly the
        // supporting kinds the §3.5 ignore list removed.
        let seq: Vec<Transformation> = vec![
            AddType { fresh_id: Id::new(100), ty: Type::Int }.into(),
            SplitBlock {
                position: InstructionDescriptor {
                    anchor: Anchor::BlockStart(Id::new(2)),
                    skip: 0,
                },
                fresh_block_id: Id::new(101),
            }
            .into(),
            SetFunctionControl {
                function: Id::new(1),
                control: FunctionControl::DontInline,
            }
            .into(),
        ];
        let sink = Arc::new(RecordingSink::deterministic());
        let handle = SinkHandle::new(sink.clone());
        let types = interesting_types_observed(&seq, &handle, Scope::Dedup);
        assert_eq!(types, set(&[K::SetFunctionControl]));
        assert_eq!(sink.snapshot().counter("dedup", Counter::DedupSupportingExcluded), 2);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let first = [set(&[K::AddDeadBlock]), set(&[K::CopyObject])];
        let second = [set(&[K::AddLoad]), BTreeSet::new()];
        let mut a = IncrementalDedup::new();
        for s in &first {
            a.observe(s.clone());
        }
        let mut b = IncrementalDedup::new();
        for s in &second {
            b.observe(s.clone());
        }
        let mut merged = a.clone();
        assert_eq!(merged.merge(&b), second.len());

        let mut sequential = IncrementalDedup::new();
        for s in first.iter().chain(&second) {
            sequential.observe(s.clone());
        }
        assert_eq!(merged, sequential);
        assert_eq!(merged.recommend(), sequential.recommend());
    }

    #[test]
    fn lines_round_trip_and_truncation_recovers_a_prefix() {
        let sets = [
            set(&[K::AddDeadBlock, K::MoveBlockDown]),
            BTreeSet::new(),
            set(&[K::CopyObject]),
        ];
        let mut full = IncrementalDedup::new();
        for s in &sets {
            full.observe(s.clone());
        }
        let text = full.to_lines();
        assert_eq!(IncrementalDedup::from_lines_lossy(&text), full);

        // Truncating at every byte boundary recovers an exact prefix.
        for cut in 0..=text.len() {
            let recovered = IncrementalDedup::from_lines_lossy(&text[..cut]);
            assert!(recovered.len() <= full.len());
            assert_eq!(recovered.sets(), &full.sets()[..recovered.len()]);
        }
    }

    #[test]
    fn incremental_survives_serde_round_trip_mid_corpus() {
        let sets = [
            set(&[K::AddDeadBlock, K::MoveBlockDown]),
            set(&[K::AddDeadBlock]),
            set(&[K::CopyObject]),
            set(&[K::FunctionCall, K::InlineFunction]),
        ];
        let mut uninterrupted = IncrementalDedup::new();
        let mut before_crash = IncrementalDedup::new();
        for s in &sets[..2] {
            uninterrupted.observe(s.clone());
            before_crash.observe(s.clone());
        }
        // Crash: state goes through serde, as the pipeline journal does.
        let json = serde_json::to_string(&before_crash).expect("serialise");
        let mut resumed: IncrementalDedup =
            serde_json::from_str(&json).expect("deserialise");
        for s in &sets[2..] {
            uninterrupted.observe(s.clone());
            resumed.observe(s.clone());
        }
        assert_eq!(resumed, uninterrupted);
        assert_eq!(resumed.recommend(), uninterrupted.recommend());
    }
}
