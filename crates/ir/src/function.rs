use serde::{Deserialize, Serialize};

use crate::{Block, Id};

/// Function inlining control, mirroring SPIR-V function control masks.
///
/// The paper's Figure 3 shows a real SwiftShader bug provoked by nothing more
/// than adding `DontInline` to a function — the `SetFunctionControl`
/// transformation exists to produce exactly such deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FunctionControl {
    /// No hint.
    #[default]
    None,
    /// Request that the function be inlined.
    Inline,
    /// Request that the function not be inlined.
    DontInline,
}

impl FunctionControl {
    /// All control values, in encoding order.
    pub const ALL: [FunctionControl; 3] =
        [FunctionControl::None, FunctionControl::Inline, FunctionControl::DontInline];

    /// The textual form used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FunctionControl::None => "None",
            FunctionControl::Inline => "Inline",
            FunctionControl::DontInline => "DontInline",
        }
    }
}

/// A formal function parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionParam {
    /// The parameter's result id.
    pub id: Id,
    /// The id of the parameter's type.
    pub ty: Id,
}

/// A function: a result id, a function type, parameters and basic blocks.
///
/// The first block is the function's entry block. The syntactic block order
/// matters only in that a block must appear after its immediate dominator
/// (`MoveBlockDown` permutes blocks within that constraint).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// The function's result id.
    pub id: Id,
    /// The id of the function's [`Type::Function`](crate::Type::Function).
    pub ty: Id,
    /// Inlining control.
    pub control: FunctionControl,
    /// Formal parameters, in order.
    pub params: Vec<FunctionParam>,
    /// Basic blocks; the first is the entry block.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (never true for validated
    /// modules).
    #[must_use]
    pub fn entry_block(&self) -> &Block {
        &self.blocks[0]
    }

    /// The label of the entry block.
    #[must_use]
    pub fn entry_label(&self) -> Id {
        self.blocks[0].label
    }

    /// Finds a block by label.
    #[must_use]
    pub fn block(&self, label: Id) -> Option<&Block> {
        self.blocks.iter().find(|b| b.label == label)
    }

    /// Finds a block by label, mutably.
    #[must_use]
    pub fn block_mut(&mut self, label: Id) -> Option<&mut Block> {
        self.blocks.iter_mut().find(|b| b.label == label)
    }

    /// The index of a block within the syntactic block order.
    #[must_use]
    pub fn block_index(&self, label: Id) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }

    /// Labels of blocks that branch to `label`.
    pub fn predecessors(&self, label: Id) -> Vec<Id> {
        self.blocks
            .iter()
            .filter(|b| b.successors().contains(&label))
            .map(|b| b.label)
            .collect()
    }

    /// Iterates over all instructions of the function, in block order.
    pub fn instructions(&self) -> impl Iterator<Item = &crate::Instruction> {
        self.blocks.iter().flat_map(|b| b.instructions.iter())
    }

    /// Total number of instructions, counting labels and terminators, so
    /// that the measure matches the paper's SPIR-V instruction counts
    /// (each block contributes `OpLabel` + body + terminator, and the
    /// function contributes `OpFunction`/`OpFunctionEnd` and one
    /// `OpFunctionParameter` per parameter).
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        let body: usize = self
            .blocks
            .iter()
            .map(|b| {
                // label + instructions + merge (if any) + terminator
                1 + b.instructions.len() + usize::from(b.merge.is_some()) + 1
            })
            .sum();
        2 + self.params.len() + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Terminator;

    fn sample() -> Function {
        Function {
            id: Id::new(1),
            ty: Id::new(2),
            control: FunctionControl::None,
            params: vec![],
            blocks: vec![
                Block::branching_to(Id::new(10), Id::new(11)),
                Block {
                    label: Id::new(11),
                    instructions: vec![],
                    merge: None,
                    terminator: Terminator::Return,
                },
            ],
        }
    }

    #[test]
    fn entry_block_is_first() {
        assert_eq!(sample().entry_label(), Id::new(10));
    }

    #[test]
    fn predecessors_found() {
        assert_eq!(sample().predecessors(Id::new(11)), vec![Id::new(10)]);
        assert!(sample().predecessors(Id::new(10)).is_empty());
    }

    #[test]
    fn instruction_count_includes_structure() {
        // OpFunction + OpFunctionEnd + 2 * (OpLabel + terminator) = 6.
        assert_eq!(sample().instruction_count(), 6);
    }

    #[test]
    fn block_lookup() {
        let f = sample();
        assert!(f.block(Id::new(11)).is_some());
        assert!(f.block(Id::new(99)).is_none());
        assert_eq!(f.block_index(Id::new(11)), Some(1));
    }
}
