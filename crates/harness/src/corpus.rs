//! The seed corpus: reference shaders and donor modules.
//!
//! The paper used 21 GraphicsFuzz reference shaders (numerically stable,
//! suitable for detecting miscompilations) and 43 donors (§4). We generate a
//! deterministic family of the same flavour: small fragment-shader-like
//! modules mixing arithmetic, conditional diamonds, bounded loops, helper
//! calls and composites, each paired with a concrete input set.

use trx_ir::{
    BinOp, Id, Inputs, Module, ModuleBuilder, Op, Value,
};

/// Number of reference shaders, matching the paper's corpus size.
pub const REFERENCE_COUNT: usize = 21;
/// Number of donor modules, matching the paper's corpus size.
pub const DONOR_COUNT: usize = 43;

/// A reference shader plus the input it is well-defined on.
#[derive(Debug, Clone)]
pub struct Reference {
    /// A short descriptive name.
    pub name: String,
    /// The module.
    pub module: Module,
    /// The input set.
    pub inputs: Inputs,
}

/// Builds the full set of reference shaders.
#[must_use]
pub fn reference_shaders() -> Vec<Reference> {
    (0..REFERENCE_COUNT).map(reference_shader).collect()
}

/// Builds reference shader number `index` (deterministic).
///
/// # Panics
///
/// Panics if `index >= REFERENCE_COUNT`.
#[must_use]
pub fn reference_shader(index: usize) -> Reference {
    assert!(index < REFERENCE_COUNT, "only {REFERENCE_COUNT} references exist");
    // Cycle through five shapes, varying constants by index so each is a
    // distinct program.
    let salt = (index as i32) + 1;
    let (name, module, inputs) = match index % 5 {
        0 => arithmetic_shader(salt),
        1 => diamond_shader(salt),
        2 => loop_shader(salt),
        3 => call_shader(salt),
        _ => composite_shader(salt),
    };
    Reference { name: format!("{name}-{index}"), module, inputs }
}

fn arithmetic_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_bool = b.type_bool();
    let u = b.uniform("k", t_int);
    // An always-true boolean uniform, mirroring GraphicsFuzz's
    // injectionSwitch: the fuzzer can obfuscate dead-block guards with it.
    let _flag = b.uniform("flag", t_bool);
    let c_a = b.constant_int(3 + salt);
    let c_b = b.constant_int(7 * salt);
    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let x = f.imul(t_int, loaded, c_a);
    let y = f.iadd(t_int, x, c_b);
    let z = f.isub(t_int, y, loaded);
    let w = f.binary(BinOp::SRem, t_int, z, c_a);
    let out = f.iadd(t_int, z, w);
    f.store_output("color", out);
    f.ret();
    f.finish();
    let inputs = Inputs::new()
        .with("k", Value::Int(salt * 2))
        .with("flag", Value::Bool(true));
    ("arithmetic", b.finish(), inputs)
}

fn diamond_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_bool = b.type_bool();
    let u = b.uniform("threshold", t_int);
    let _flag = b.uniform("flag", t_bool);
    let c_low = b.constant_int(salt);
    let c_high = b.constant_int(100 + salt);
    let c_step = b.constant_int(2);
    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let cond = f.slt(loaded, c_high);
    let then_l = f.reserve_label();
    let else_l = f.reserve_label();
    let merge_l = f.reserve_label();
    f.selection_merge(merge_l);
    f.branch_cond(cond, then_l, else_l);
    f.begin_block_with_label(then_l);
    let a = f.imul(t_int, loaded, c_step);
    f.branch(merge_l);
    f.begin_block_with_label(else_l);
    let b_val = f.iadd(t_int, loaded, c_low);
    f.branch(merge_l);
    f.begin_block_with_label(merge_l);
    let phi = f.phi(t_int, vec![(a, then_l), (b_val, else_l)]);
    let shifted = f.iadd(t_int, phi, c_low);
    f.store_output("color", shifted);
    f.ret();
    f.finish();
    let inputs = Inputs::new()
        .with("threshold", Value::Int(salt * 3))
        .with("flag", Value::Bool(true));
    ("diamond", b.finish(), inputs)
}

fn loop_shader(salt: i32) -> (&'static str, Module, Inputs) {
    // sum = 0; for (i = 0; i <= N; i++) sum += i * k;  (inclusive bound:
    // exactly the shape whose last iteration the Figure 8a bug skips)
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let u = b.uniform("k", t_int);
    let c0 = b.constant_int(0);
    let c1 = b.constant_int(1);
    let c_n = b.constant_int(4 + salt);
    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let pre = f.current_label();
    let header = f.reserve_label();
    let body = f.reserve_label();
    let cont = f.reserve_label();
    let merge = f.reserve_label();
    f.branch(header);
    f.begin_block_with_label(header);
    let i = f.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
    let sum = f.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
    let cond = f.sle(i, c_n);
    f.loop_merge(merge, cont);
    f.branch_cond(cond, body, merge);
    f.begin_block_with_label(body);
    let term = f.imul(t_int, i, loaded);
    let sum2 = f.iadd(t_int, sum, term);
    f.branch(cont);
    f.begin_block_with_label(cont);
    let i2 = f.iadd(t_int, i, c1);
    f.branch(header);
    f.begin_block_with_label(merge);
    f.store_output("color", sum);
    f.ret();
    f.finish();
    let mut module = b.finish();
    // Patch the back-edge phi inputs. If the entry function or header block
    // is missing the phis stay as placeholders and validation rejects the
    // module downstream — reported as data, not a panic.
    let header_block = module
        .functions
        .iter_mut()
        .find(|f| f.id == module.entry_point)
        .and_then(|f| f.block_mut(header));
    if let Some(header_block) = header_block {
        if let Op::Phi { incoming } = &mut header_block.instructions[0].op {
            incoming[1].0 = i2;
        }
        if let Op::Phi { incoming } = &mut header_block.instructions[1].op {
            incoming[1].0 = sum2;
        }
    }
    let inputs = Inputs::new().with("k", Value::Int(salt));
    ("loop", module, inputs)
}

fn call_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let u = b.uniform("k", t_int);
    let c_m = b.constant_int(5 + salt);

    let mut h = b.begin_function(t_int, &[t_int]);
    let p = h.param_ids()[0];
    let squared = h.imul(t_int, p, p);
    let biased = h.iadd(t_int, squared, c_m);
    h.ret_value(biased);
    let helper = h.finish();

    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let first = f.call(helper, vec![loaded]);
    let second = f.call(helper, vec![first]);
    let mixed = f.isub(t_int, second, first);
    f.store_output("color", mixed);
    f.ret();
    f.finish();
    let inputs = Inputs::new().with("k", Value::Int(salt % 7));
    ("call", b.finish(), inputs)
}

fn composite_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_vec3 = b.type_vector(t_int, 3);
    let u = b.uniform("k", t_int);
    let c1 = b.constant_int(salt);
    let c2 = b.constant_int(salt * 2);
    let idx0 = b.constant_int(0);
    let idx2 = b.constant_int(2);
    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let v = f.local_var(t_vec3, None);
    let vec = f.composite_construct(t_vec3, vec![loaded, c1, c2]);
    f.store(v, vec);
    let p0 = f.access_chain(v, vec![idx0]);
    let p2 = f.access_chain(v, vec![idx2]);
    let e0 = f.load(p0);
    let e2 = f.load(p2);
    let sum = f.iadd(t_int, e0, e2);
    let direct = f.composite_extract(vec, vec![1]);
    let out = f.iadd(t_int, sum, direct);
    f.store_output("color", out);
    f.ret();
    f.finish();
    let inputs = Inputs::new().with("k", Value::Int(salt + 1));
    ("composite", b.finish(), inputs)
}

/// Number of render-mode reference shaders (see [`render_reference`]).
pub const RENDER_REFERENCE_COUNT: usize = 6;

/// Builds the full set of render-mode reference shaders.
#[must_use]
pub fn render_references() -> Vec<Reference> {
    (0..RENDER_REFERENCE_COUNT).map(render_reference).collect()
}

/// Builds render-mode reference shader number `index` (deterministic).
///
/// Unlike [`reference_shader`], every render reference reads the
/// `frag_coord` builtin, so its output varies across a fragment grid. These
/// feed the render-mode image-diff campaign, where "miscompilations manifest
/// as an unexpected image being rendered" (§3.4) — including wrong-code bugs
/// that a single invocation on fixed inputs cannot observe.
///
/// # Panics
///
/// Panics if `index >= RENDER_REFERENCE_COUNT`.
#[must_use]
pub fn render_reference(index: usize) -> Reference {
    assert!(
        index < RENDER_REFERENCE_COUNT,
        "only {RENDER_REFERENCE_COUNT} render references exist"
    );
    let salt = (index as i32) + 1;
    let (name, module, inputs) = match index % 3 {
        0 => coord_loop_shader(salt),
        1 => coord_diamond_shader(salt),
        _ => coord_arith_shader(salt),
    };
    Reference { name: format!("{name}-{index}"), module, inputs }
}

/// A loop whose inclusive bound comes from `frag_coord.x` — exactly the
/// shape whose last iteration the Figure 8a loop bug skips, visible only as
/// a per-fragment image diff.
fn coord_loop_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_float = b.type_float();
    let t_vec2 = b.type_vector(t_float, 2);
    let frag = b.builtin("frag_coord", t_vec2);
    let u = b.uniform("k", t_int);
    let c0 = b.constant_int(0);
    let c1 = b.constant_int(1);
    let c_step = b.constant_int(salt);
    let mut f = b.begin_entry_function("main");
    let coord = f.load(frag);
    let x = f.composite_extract(coord, vec![0]);
    let limit = f.unary(trx_ir::UnOp::ConvertFToS, t_int, x);
    let loaded = f.load(u);
    let pre = f.current_label();
    let header = f.reserve_label();
    let body = f.reserve_label();
    let cont = f.reserve_label();
    let merge = f.reserve_label();
    f.branch(header);
    f.begin_block_with_label(header);
    let i = f.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
    let sum = f.phi(t_int, vec![(loaded, pre), (Id::PLACEHOLDER, cont)]);
    let cond = f.sle(i, limit);
    f.loop_merge(merge, cont);
    f.branch_cond(cond, body, merge);
    f.begin_block_with_label(body);
    let sum2 = f.iadd(t_int, sum, c_step);
    f.branch(cont);
    f.begin_block_with_label(cont);
    let i2 = f.iadd(t_int, i, c1);
    f.branch(header);
    f.begin_block_with_label(merge);
    f.store_output("color", sum);
    f.ret();
    f.finish();
    let mut module = b.finish();
    let header_block = module
        .functions
        .iter_mut()
        .find(|f| f.id == module.entry_point)
        .and_then(|f| f.block_mut(header));
    if let Some(header_block) = header_block {
        if let Op::Phi { incoming } = &mut header_block.instructions[0].op {
            incoming[1].0 = i2;
        }
        if let Op::Phi { incoming } = &mut header_block.instructions[1].op {
            incoming[1].0 = sum2;
        }
    }
    let inputs = Inputs::new().with("k", Value::Int(salt * 2));
    ("coord-loop", module, inputs)
}

/// A diamond whose branch condition compares `frag_coord.x` against a
/// uniform threshold: different fragments take different arms.
fn coord_diamond_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_float = b.type_float();
    let t_vec2 = b.type_vector(t_float, 2);
    let frag = b.builtin("frag_coord", t_vec2);
    let u = b.uniform("threshold", t_int);
    let c_a = b.constant_int(salt * 3);
    let c_b = b.constant_int(salt + 10);
    let mut f = b.begin_entry_function("main");
    let coord = f.load(frag);
    let x = f.composite_extract(coord, vec![0]);
    let xi = f.unary(trx_ir::UnOp::ConvertFToS, t_int, x);
    let loaded = f.load(u);
    let cond = f.slt(xi, loaded);
    let then_l = f.reserve_label();
    let else_l = f.reserve_label();
    let merge_l = f.reserve_label();
    f.selection_merge(merge_l);
    f.branch_cond(cond, then_l, else_l);
    f.begin_block_with_label(then_l);
    let a = f.imul(t_int, xi, c_a);
    f.branch(merge_l);
    f.begin_block_with_label(else_l);
    let b_val = f.iadd(t_int, xi, c_b);
    f.branch(merge_l);
    f.begin_block_with_label(merge_l);
    let phi = f.phi(t_int, vec![(a, then_l), (b_val, else_l)]);
    f.store_output("color", phi);
    f.ret();
    f.finish();
    let inputs = Inputs::new().with("threshold", Value::Int(2 + salt));
    ("coord-diamond", b.finish(), inputs)
}

/// Straight-line arithmetic over both fragment coordinates mixed with a
/// uniform, through a vector local.
fn coord_arith_shader(salt: i32) -> (&'static str, Module, Inputs) {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_float = b.type_float();
    let t_vec2 = b.type_vector(t_float, 2);
    let t_ivec2 = b.type_vector(t_int, 2);
    let frag = b.builtin("frag_coord", t_vec2);
    let u = b.uniform("k", t_int);
    let c_m = b.constant_int(salt);
    let idx1 = b.constant_int(1);
    let mut f = b.begin_entry_function("main");
    let coord = f.load(frag);
    let x = f.composite_extract(coord, vec![0]);
    let y = f.composite_extract(coord, vec![1]);
    let xi = f.unary(trx_ir::UnOp::ConvertFToS, t_int, x);
    let yi = f.unary(trx_ir::UnOp::ConvertFToS, t_int, y);
    let loaded = f.load(u);
    let scaled = f.imul(t_int, xi, c_m);
    let mixed = f.iadd(t_int, scaled, yi);
    let pair = f.composite_construct(t_ivec2, vec![mixed, loaded]);
    let v = f.local_var(t_ivec2, None);
    f.store(v, pair);
    let p1 = f.access_chain(v, vec![idx1]);
    let e1 = f.load(p1);
    let out = f.iadd(t_int, mixed, e1);
    f.store_output("color", out);
    f.ret();
    f.finish();
    let inputs = Inputs::new().with("k", Value::Int(salt * 5));
    ("coord-arith", b.finish(), inputs)
}

/// Builds the full set of donor modules. Donor functions are self-contained
/// (no globals, no calls) so both fuzzers can transplant them.
#[must_use]
pub fn donor_modules() -> Vec<Module> {
    (0..DONOR_COUNT).map(donor_module).collect()
}

/// Builds donor module number `index` (deterministic).
///
/// # Panics
///
/// Panics if `index >= DONOR_COUNT`.
#[must_use]
pub fn donor_module(index: usize) -> Module {
    assert!(index < DONOR_COUNT, "only {DONOR_COUNT} donors exist");
    let salt = (index as i32) + 1;
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let t_bool = b.type_bool();
    let c_a = b.constant_int(salt);
    let c_b = b.constant_int(salt * 3 + 1);

    // A scalar helper.
    let mut h1 = b.begin_function(t_int, &[t_int]);
    let p = h1.param_ids()[0];
    let x = h1.imul(t_int, p, c_a);
    let y = h1.iadd(t_int, x, c_b);
    h1.ret_value(y);
    h1.finish();

    // A two-parameter helper with a select.
    let mut h2 = b.begin_function(t_int, &[t_int, t_int]);
    let ps = h2.param_ids();
    let cmp = h2.slt(ps[0], ps[1]);
    let picked = h2.select(t_int, cmp, ps[0], ps[1]);
    let scaled = h2.imul(t_int, picked, c_a);
    h2.ret_value(scaled);
    h2.finish();

    // A diamond-shaped helper with two returns (varies by index): feeds the
    // MultipleReturnsInCallee trigger once transplanted.
    if index.is_multiple_of(3) {
        let mut h4 = b.begin_function(t_int, &[t_int]);
        let p = h4.param_ids()[0];
        let cmp = h4.slt(p, c_b);
        let low_l = h4.reserve_label();
        let high_l = h4.reserve_label();
        // Both arms return: the merge annotation points at the unreachable
        // join that structured control flow requires.
        let join_l = h4.reserve_label();
        h4.selection_merge(join_l);
        h4.branch_cond(cmp, low_l, high_l);
        h4.begin_block_with_label(low_l);
        let doubled = h4.iadd(t_int, p, p);
        h4.ret_value(doubled);
        h4.begin_block_with_label(high_l);
        h4.ret_value(c_a);
        h4.begin_block_with_label(join_l);
        h4.ret_value(c_b);
        h4.finish();
    }

    // A helper containing a loop (every third donor): importable live-safe
    // only through the §3.2 loop-limiter instrumentation. The back-edge phi
    // inputs are patched after the module is finished.
    let mut loop_patch: Option<(Id, Id, Id)> = None;
    if index % 3 == 1 {
        let c0 = b.constant_int(0);
        let c1 = b.constant_int(1);
        let mut h5 = b.begin_function(t_int, &[t_int]);
        let p = h5.param_ids()[0];
        let pre = h5.current_label();
        let header = h5.reserve_label();
        let body = h5.reserve_label();
        let cont = h5.reserve_label();
        let merge = h5.reserve_label();
        h5.branch(header);
        h5.begin_block_with_label(header);
        let i = h5.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
        let acc = h5.phi(t_int, vec![(c0, pre), (Id::PLACEHOLDER, cont)]);
        let cond = h5.slt(i, p);
        h5.loop_merge(merge, cont);
        h5.branch_cond(cond, body, merge);
        h5.begin_block_with_label(body);
        let acc2 = h5.iadd(t_int, acc, c_a);
        h5.branch(cont);
        h5.begin_block_with_label(cont);
        let i2 = h5.iadd(t_int, i, c1);
        h5.branch(header);
        h5.begin_block_with_label(merge);
        h5.ret_value(acc);
        h5.finish();
        loop_patch = Some((header, i2, acc2));
    }

    // A boolean helper (varies by index parity).
    if index.is_multiple_of(2) {
        let mut h3 = b.begin_function(t_bool, &[t_int]);
        let p = h3.param_ids()[0];
        let is_big = h3.binary(BinOp::SGreaterThan, t_bool, p, c_b);
        h3.ret_value(is_big);
        h3.finish();
    }

    let mut f = b.begin_entry_function("main");
    f.store_output("unused", c_a);
    f.ret();
    f.finish();
    let mut module = b.finish();
    if let Some((header, i2, acc2)) = loop_patch {
        // If the header block is somehow missing, the placeholder phis are
        // left in place and the module fails validation downstream — which
        // surfaces as a typed error rather than a panic here.
        let header_block = module
            .functions
            .iter_mut()
            .find_map(|f| f.block_mut(header));
        if let Some(header_block) = header_block {
            if let Op::Phi { incoming } = &mut header_block.instructions[0].op {
                incoming[1].0 = i2;
            }
            if let Op::Phi { incoming } = &mut header_block.instructions[1].op {
                incoming[1].0 = acc2;
            }
        }
    }
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_ir::validate::validate;
    use trx_ir::interp;

    #[test]
    fn all_references_validate_and_run() {
        for r in reference_shaders() {
            validate(&r.module).unwrap_or_else(|e| panic!("{}: {e}", r.name));
            let result = interp::execute(&r.module, &r.inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", r.name));
            assert!(result.outputs.contains_key("color"), "{}", r.name);
        }
    }

    #[test]
    fn references_are_distinct_programs() {
        let refs = reference_shaders();
        for i in 0..refs.len() {
            for j in i + 1..refs.len() {
                assert_ne!(refs[i].module, refs[j].module, "{i} vs {j}");
            }
        }
    }

    #[test]
    fn all_donors_validate() {
        let donors = donor_modules();
        assert_eq!(donors.len(), DONOR_COUNT);
        for (i, d) in donors.iter().enumerate() {
            validate(d).unwrap_or_else(|e| panic!("donor {i}: {e}"));
            assert!(d.functions.len() >= 3, "donor {i} has helpers");
        }
    }

    #[test]
    fn corpus_sizes_match_the_paper() {
        assert_eq!(reference_shaders().len(), 21);
        assert_eq!(donor_modules().len(), 43);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(reference_shader(7).module, reference_shader(7).module);
        assert_eq!(donor_module(11), donor_module(11));
        assert_eq!(render_reference(3).module, render_reference(3).module);
    }

    #[test]
    fn render_references_validate_and_vary_across_the_grid() {
        for r in render_references() {
            validate(&r.module).unwrap_or_else(|e| panic!("{}: {e}", r.name));
            let image = interp::render(&r.module, &r.inputs, 6, 2)
                .unwrap_or_else(|e| panic!("{}: {e}", r.name));
            // Every render reference must actually depend on frag_coord:
            // at least two fragments differ.
            let per_fragment = image.channels.len().max(1);
            let distinct: std::collections::BTreeSet<_> = image
                .values
                .chunks(per_fragment)
                .map(|p| format!("{p:?}"))
                .collect();
            assert!(distinct.len() > 1, "{} is coordinate-invariant", r.name);
        }
    }
}
