//! Regenerates Figure 7 (§4.1): complementarity Venn segments per target.
//!
//! Usage: `figure7 [--tests N] [--groups G] [--seed S]`

use trx_bench::{arg_u64, arg_usize, render_table};
use trx_harness::experiments::{bug_finding, ExperimentConfig};

fn main() {
    let config = ExperimentConfig {
        tests_per_tool: arg_usize("--tests", 600),
        groups: arg_usize("--groups", 10),
        seed: arg_u64("--seed", 0),
    };
    eprintln!(
        "running {} tests per tool (seed {}) ...",
        config.tests_per_tool, config.seed
    );
    let data = bug_finding(config);
    println!("Figure 7: Venn segments (A = spirv-fuzz, B = spirv-fuzz-simple, C = glsl-fuzz)\n");
    let headers = ["Target", "A only", "B only", "C only", "A&B", "A&C", "B&C", "A&B&C"];
    let mut rows: Vec<Vec<String>> = data
        .venn
        .iter()
        .map(|(name, v)| {
            vec![
                name.clone(),
                v.only_a.to_string(),
                v.only_b.to_string(),
                v.only_c.to_string(),
                v.a_and_b.to_string(),
                v.a_and_c.to_string(),
                v.b_and_c.to_string(),
                v.all.to_string(),
            ]
        })
        .collect();
    let v = &data.venn_all;
    rows.push(vec![
        "All".into(),
        v.only_a.to_string(),
        v.only_b.to_string(),
        v.only_c.to_string(),
        v.a_and_b.to_string(),
        v.a_and_c.to_string(),
        v.b_and_c.to_string(),
        v.all.to_string(),
    ]);
    print!("{}", render_table(&headers, &rows));
}
