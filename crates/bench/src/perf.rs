//! The shared schema of `BENCH_perf.json`.
//!
//! `perf_triage` measures the prefix-memoized reduction engine against the
//! serial budget-0 reference on a real triage workload (campaign bugs from
//! the clean target catalog, probed on the fast pre-decoded interpreter)
//! and records the result here. CI re-runs the binary in smoke mode and
//! asserts the invariants the file encodes — strictly fewer transformation
//! applications for the cached engine, byte-identical reduction artifacts
//! across all engine configurations, and the probe-accounting balance
//! `cache.lookups == probes_journaled + unprobed_lookups` on the serial
//! row (seeded rows journal one extra initial record per bug with no
//! lookup).

use serde::{Deserialize, Serialize};

use trx_reducer::EngineStats;

/// Aggregate metrics for one reduction-engine configuration, summed over
/// every bug in the benchmark's triage set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineBaseline {
    /// Configuration name (`serial`, `cached`, `shared`, `speculative`).
    pub name: String,
    /// Journaled probe invocations (replayed + live + memo hits) — equal
    /// across configurations by the equivalence invariant.
    pub probes_journaled: u64,
    /// Oracle invocations that actually ran, including speculative probes
    /// whose verdicts were later discarded.
    pub live_probes: u64,
    /// Engine work counters summed over all bugs: prefix-cache
    /// applications/saves, memo hits, speculative launches/consumptions.
    pub engine: EngineStats,
    /// Wall-clock for reducing every bug back to back, in milliseconds.
    pub wall_ms: u64,
}

/// The machine-readable reduction-performance baseline (`BENCH_perf.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfBaseline {
    /// Tool whose campaign produced the triage set.
    pub tool: String,
    /// Campaign tests scanned for bugs.
    pub tests: usize,
    /// Chained fuzzer rounds per test (longer rounds → longer
    /// transformation sequences → more quadratic replay to save).
    pub rounds: usize,
    /// First campaign seed.
    pub seed_base: u64,
    /// Worker threads for the speculative and per-bug-parallel runs.
    pub threads: usize,
    /// Distinct `(target, signature)` bugs reduced.
    pub bugs_reduced: usize,
    /// Total transformation-sequence length over all bugs (the `n` that
    /// delta debugging replays quadratically without the cache).
    pub sequence_transformations: usize,
    /// The byte budget of the shared sharded prefix cache (the `shared`
    /// and `speculative` rows), in bytes.
    pub cache_budget_bytes: usize,
    /// Shard count of the shared sharded prefix cache.
    pub cache_shards: usize,
    /// The budget-0, memo-off, speculation-off reference engine.
    pub serial: EngineBaseline,
    /// Per-reduction prefix cache + verdict memo, serial probing.
    pub cached: EngineBaseline,
    /// One shared sharded byte-budgeted prefix cache across all bugs
    /// (sequential probing): sibling reductions reuse each other's
    /// transition chains instead of re-warming private caches.
    pub shared: EngineBaseline,
    /// Shared cache + verdict memo + speculative parallel probing;
    /// prefetches insert through the cache's probationary segment.
    pub speculative: EngineBaseline,
    /// Wall-clock for the cached engine reducing bugs concurrently across
    /// the worker pool (the pipeline's `reduction_threads` mode), in
    /// milliseconds.
    pub parallel_wall_ms: u64,
    /// `serial` transformation applications divided by `cached` ones — how
    /// many times fewer per-instruction applications the cache performs.
    pub apply_reduction_factor: f64,
    /// `serial.wall_ms` divided by `parallel_wall_ms`.
    pub parallel_speedup: f64,
    /// Whether every configuration produced byte-identical logs, reduced
    /// sequences, search stats, and final modules.
    pub equivalent: bool,
}

impl PerfBaseline {
    /// Loads the baseline from `path`, returning `None` when the file is
    /// missing or does not parse.
    #[must_use]
    pub fn load(path: &str) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Writes the baseline to `path` as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serializer's or filesystem's error message.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| e.to_string())
    }
}

/// Adds every counter of `delta` into `total` (the schema aggregates
/// engine stats over all bugs of a run).
pub fn accumulate(total: &mut EngineStats, delta: &EngineStats) {
    total.cache.lookups += delta.cache.lookups;
    total.cache.hits += delta.cache.hits;
    total.cache.transformations_applied += delta.cache.transformations_applied;
    total.cache.transformations_saved += delta.cache.transformations_saved;
    total.cache.evictions += delta.cache.evictions;
    total.memo_hits += delta.memo_hits;
    total.speculative_probes += delta.speculative_probes;
    total.speculative_hits += delta.speculative_hits;
    total.speculative_throttles += delta.speculative_throttles;
    total.speculative_pressure_throttles += delta.speculative_pressure_throttles;
    total.unprobed_lookups += delta.unprobed_lookups;
}
