use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Id;

/// The storage class of a pointer or variable, mirroring SPIR-V storage
/// classes relevant to the Vulkan fragment-shader model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StorageClass {
    /// Function-local storage, allocated per activation.
    Function,
    /// Module-private global storage.
    Private,
    /// Read-only storage initialised from the shader's inputs (uniforms).
    Uniform,
    /// Per-invocation built-in inputs (e.g. the fragment coordinate).
    Input,
    /// Per-invocation outputs (e.g. the fragment colour).
    Output,
}

impl StorageClass {
    /// All storage classes, in encoding order.
    pub const ALL: [StorageClass; 5] = [
        StorageClass::Function,
        StorageClass::Private,
        StorageClass::Uniform,
        StorageClass::Input,
        StorageClass::Output,
    ];

    /// Returns `true` if a shader may write through pointers of this class.
    #[must_use]
    pub fn is_writable(self) -> bool {
        matches!(
            self,
            StorageClass::Function | StorageClass::Private | StorageClass::Output
        )
    }
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StorageClass::Function => "Function",
            StorageClass::Private => "Private",
            StorageClass::Uniform => "Uniform",
            StorageClass::Input => "Input",
            StorageClass::Output => "Output",
        };
        f.write_str(name)
    }
}

/// A type declaration.
///
/// Aggregate types refer to their element types by [`Id`], so a type is only
/// meaningful relative to the [`Module`](crate::Module) that declares it.
/// Scalars are 32-bit, as in the Vulkan subset of SPIR-V.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// The unit type of functions that return nothing.
    Void,
    /// Boolean truth values.
    Bool,
    /// 32-bit signed integers (two's complement, wrapping semantics).
    Int,
    /// 32-bit IEEE-754 floating point.
    Float,
    /// A vector of 2–4 scalar components.
    Vector {
        /// Id of the scalar component type.
        component: Id,
        /// Number of components (2, 3 or 4).
        count: u32,
    },
    /// A fixed-length array.
    Array {
        /// Id of the element type.
        element: Id,
        /// Number of elements; must be positive.
        len: u32,
    },
    /// A structure with ordered members.
    Struct {
        /// Ids of the member types, in declaration order.
        members: Vec<Id>,
    },
    /// A pointer into a particular storage class.
    Pointer {
        /// The storage class pointed into.
        storage: StorageClass,
        /// Id of the pointee type.
        pointee: Id,
    },
    /// A function type.
    Function {
        /// Id of the return type.
        ret: Id,
        /// Ids of the parameter types, in order.
        params: Vec<Id>,
    },
}

impl Type {
    /// Returns `true` for scalar (bool/int/float) types.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Bool | Type::Int | Type::Float)
    }

    /// Returns `true` for aggregate (vector/array/struct) types, the types
    /// that composite instructions operate on.
    #[must_use]
    pub fn is_composite(&self) -> bool {
        matches!(
            self,
            Type::Vector { .. } | Type::Array { .. } | Type::Struct { .. }
        )
    }

    /// Ids of types this type directly refers to.
    pub fn referenced_ids(&self) -> Vec<Id> {
        match self {
            Type::Void | Type::Bool | Type::Int | Type::Float => Vec::new(),
            Type::Vector { component, .. } => vec![*component],
            Type::Array { element, .. } => vec![*element],
            Type::Struct { members } => members.clone(),
            Type::Pointer { pointee, .. } => vec![*pointee],
            Type::Function { ret, params } => {
                let mut ids = vec![*ret];
                ids.extend(params.iter().copied());
                ids
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(Type::Bool.is_scalar());
        assert!(Type::Int.is_scalar());
        assert!(Type::Float.is_scalar());
        assert!(!Type::Void.is_scalar());
        assert!(!Type::Struct { members: vec![] }.is_scalar());
    }

    #[test]
    fn composite_classification() {
        let vec = Type::Vector { component: Id::new(1), count: 4 };
        assert!(vec.is_composite());
        assert!(!Type::Int.is_composite());
        assert!(!Type::Pointer { storage: StorageClass::Function, pointee: Id::new(1) }
            .is_composite());
    }

    #[test]
    fn referenced_ids_cover_function_types() {
        let ty = Type::Function { ret: Id::new(1), params: vec![Id::new(2), Id::new(3)] };
        assert_eq!(ty.referenced_ids(), vec![Id::new(1), Id::new(2), Id::new(3)]);
    }

    #[test]
    fn writable_storage_classes() {
        assert!(StorageClass::Function.is_writable());
        assert!(StorageClass::Output.is_writable());
        assert!(!StorageClass::Uniform.is_writable());
        assert!(!StorageClass::Input.is_writable());
    }
}
