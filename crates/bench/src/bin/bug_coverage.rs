//! Diagnostic: which injected bugs does each tool reach? Useful for judging
//! how much of each simulated target's bug surface the fuzzers cover.
//!
//! Usage: `bug_coverage [--tests N] [--seed S]`

use std::collections::BTreeSet;

use trx_bench::{arg_u64, arg_usize};
use trx_harness::campaign::{run_campaign, BugSignature, Tool};
use trx_targets::catalog;
use trx_targets::BugEffect;

fn main() {
    let tests = arg_usize("--tests", 2000);
    let seed = arg_u64("--seed", 0);
    let targets = catalog::all_targets();
    for tool in Tool::ALL {
        eprintln!("running {} x {tests} ...", tool.name());
        let outcome = run_campaign(tool, &targets, tests, seed);
        println!("== {} ==", tool.name());
        for (t, target) in targets.iter().enumerate() {
            let found: BTreeSet<String> = outcome
                .distinct(t)
                .into_iter()
                .filter_map(|s| match s {
                    BugSignature::Crash(text) => Some(text),
                    BugSignature::Miscompilation => None,
                })
                .collect();
            let missed: Vec<&str> = target
                .bugs()
                .iter()
                .filter_map(|b| match &b.effect {
                    BugEffect::Crash { signature } if !found.contains(signature) => {
                        Some(b.id.0.as_str())
                    }
                    _ => None,
                })
                .collect();
            println!(
                "  {:<14} crash sigs found {:>2}/{:<2}  missed: {}",
                target.name(),
                found.len(),
                target.crash_bug_count(),
                if missed.is_empty() { "-".to_owned() } else { missed.join(", ") }
            );
        }
    }
}
