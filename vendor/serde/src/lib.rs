//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in hermetic builds, so this
//! crate provides the same *surface* the workspace relies on — the
//! [`Serialize`]/[`Deserialize`] traits plus `#[derive(Serialize,
//! Deserialize)]` — over a simple self-describing [`Content`] tree. The
//! `serde_json` stand-in renders that tree as JSON text.
//!
//! Supported shapes: primitives, `String`, tuples, `Vec`, `Option`, `Box`,
//! ordered/hashed maps and sets, structs (named, tuple, unit) and enums
//! (unit, newtype, tuple and struct variants) in serde's externally-tagged
//! representation.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value: the data model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with arbitrary keys (string keys render as JSON objects).
    Map(Vec<(Content, Content)>),
}

/// An error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into its serialized content.
    fn to_content(&self) -> Content;
}

/// A type that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from serialized content.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by generated derive code.
// ---------------------------------------------------------------------------

/// Views `content` as a map, for struct deserialization.
pub fn content_as_map<'a>(
    content: &'a Content,
    ty: &str,
) -> Result<&'a [(Content, Content)], Error> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(Error(format!("{ty}: expected map, found {other:?}"))),
    }
}

/// Views `content` as a sequence, for tuple deserialization.
pub fn content_as_seq<'a>(content: &'a Content, ty: &str) -> Result<&'a [Content], Error> {
    match content {
        Content::Seq(items) => Ok(items),
        other => Err(Error(format!("{ty}: expected sequence, found {other:?}"))),
    }
}

/// Looks a named field up in a struct map and deserializes it.
pub fn field<T: Deserialize>(
    entries: &[(Content, Content)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    for (key, value) in entries {
        if matches!(key, Content::Str(k) if k == name) {
            return T::from_content(value);
        }
    }
    Err(Error(format!("{ty}: missing field `{name}`")))
}

/// Fetches element `index` of a tuple sequence and deserializes it.
pub fn element<T: Deserialize>(items: &[Content], index: usize, ty: &str) -> Result<T, Error> {
    let item = items
        .get(index)
        .ok_or_else(|| Error(format!("{ty}: missing tuple element {index}")))?;
    T::from_content(item)
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let raw = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error(format!("integer {v} out of range")))?,
                    other => return Err(Error(format!("expected integer, found {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let raw = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| Error(format!("integer {v} out of range")))?,
                    other => return Err(Error(format!("expected integer, found {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, Error> {
        u64::from_content(content).and_then(|v| {
            usize::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
        })
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, Error> {
        i64::from_content(content).and_then(|v| {
            isize::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
        })
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(Error(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        // f32 -> f64 is exact, so the round trip is bit-preserving (NaN
        // payloads are carried by the text codec as bare NaN tokens).
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = String::from_content(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, found {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content_as_seq(content, "Vec")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(content)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error(format!("expected {N} elements, found {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = content_as_seq(content, "tuple")?;
                Ok(($(element::<$name>(items, $idx, "tuple")?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

fn serialize_map<'a>(
    entries: impl Iterator<Item = (&'a (impl Serialize + 'a), &'a (impl Serialize + 'a))>,
) -> Content {
    Content::Map(entries.map(|(k, v)| (k.to_content(), v.to_content())).collect())
}

fn deserialize_map_entries(content: &Content) -> Result<Vec<(Content, Content)>, Error> {
    match content {
        Content::Map(entries) => Ok(entries.clone()),
        // Maps with non-string keys round-trip through JSON as sequences of
        // [key, value] pairs.
        Content::Seq(items) => items
            .iter()
            .map(|item| match item {
                Content::Seq(pair) if pair.len() == 2 => {
                    Ok((pair[0].clone(), pair[1].clone()))
                }
                other => Err(Error(format!("expected [key, value] pair, found {other:?}"))),
            })
            .collect(),
        other => Err(Error(format!("expected map, found {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        deserialize_map_entries(content)?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: order by serialized key rendering.
        let mut entries: Vec<(Content, Content)> =
            self.iter().map(|(k, v)| (k.to_content(), v.to_content())).collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Content::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: Default + std::hash::BuildHasher>
    Deserialize for HashMap<K, V, S>
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        deserialize_map_entries(content)?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content_as_seq(content, "BTreeSet")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Content::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: Default + std::hash::BuildHasher> Deserialize
    for HashSet<T, S>
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        content_as_seq(content, "HashSet")?.iter().map(T::from_content).collect()
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}
