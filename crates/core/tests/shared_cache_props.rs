//! Property tests for the shared sharded prefix cache.
//!
//! Two satellite properties, each exercised under real concurrency:
//!
//! 1. **Fingerprint safety** — a lookup never returns a transition for a
//!    mismatched fingerprint. At the raw edge API this means a hit for key
//!    `(state_fp, transformation_id)` carries exactly the payload stored
//!    under that key; at the session level it means a materialized context
//!    is byte-identical to a fresh `apply_sequence` replay no matter which
//!    threads warmed which edges first.
//! 2. **Byte-budget accounting** — resident bytes always equal the sum of
//!    edge charges (the unsigned counter can never underflow) and never
//!    exceed the budget by more than the per-shard rounding slack: each of
//!    the N shards holds at most `ceil(budget / N)` bytes, so the whole
//!    cache holds at most `budget + (N - 1)` bytes — strictly tighter than
//!    the one-extra-entry bound the design allows.

use std::sync::Arc;
use std::thread;

use proptest::collection::vec;
use proptest::prelude::*;
use trx_core::transformations::{AddConstant, SetFunctionControl};
use trx_core::{
    apply_sequence, context_fingerprint, context_size_estimate, transformation_id, Context,
    InsertPriority, SharedCacheSession, SharedPrefixCache, Transformation,
};
use trx_ir::{ConstantValue, FunctionControl, Id, Inputs, ModuleBuilder, Type};

/// A tiny module with a helper call: enough surface for flip genes (the
/// helper's function control) and collision-prone `AddConstant` genes.
fn base_context() -> Context {
    let mut b = ModuleBuilder::new();
    let c = b.constant_int(1);
    let t_int = b.type_int();
    let mut h = b.begin_function(t_int, &[]);
    h.ret_value(c);
    let helper = h.finish();
    let mut f = b.begin_entry_function("main");
    let r = f.call(helper, vec![]);
    f.store_output("out", r);
    f.ret();
    f.finish();
    Context::new(b.finish(), Inputs::default()).unwrap()
}

/// Decodes one gene word into a transformation. Even words flip the
/// helper's function control; odd words add a constant drawn from a pool of
/// only four fresh ids, so repeated slots fail their precondition and
/// produce `false` mask entries — the walk must track fingerprints through
/// no-op steps too.
fn decode(ctx: &Context, genes: &[u32]) -> Vec<Transformation> {
    let helper = ctx
        .module
        .functions
        .iter()
        .map(|f| f.id)
        .find(|&id| id != ctx.module.entry_point)
        .expect("base context has a helper");
    let t_int = ctx
        .module
        .types
        .iter()
        .find(|decl| matches!(decl.ty, Type::Int))
        .expect("base context declares an int type")
        .id;
    genes
        .iter()
        .map(|&g| {
            if g % 2 == 0 {
                let control = if g % 4 == 0 {
                    FunctionControl::Inline
                } else {
                    FunctionControl::DontInline
                };
                SetFunctionControl { function: helper, control }.into()
            } else {
                AddConstant {
                    fresh_id: Id::new(900 + (g / 2) % 4),
                    ty: t_int,
                    value: ConstantValue::Int(((g / 8) % 200) as i32 - 100),
                }
                .into()
            }
        })
        .collect()
}

/// The deterministic payload a well-behaved writer stores under `key` in
/// the raw-API test: any hit must return exactly this fingerprint.
fn payload_fp(key: (u64, u64)) -> u64 {
    key.0.rotate_left(17) ^ key.1.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn payload_applied(key: (u64, u64)) -> bool {
    (key.0 ^ key.1) & 1 == 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Session-level fingerprint safety: concurrent sessions materializing
    /// overlapping delta-debugging candidates — some speculative — through
    /// one shared cache each reproduce the reference replay byte for byte,
    /// for every budget/shard/thread mix.
    #[test]
    fn concurrent_sessions_match_the_reference_replay(
        genes in vec(0u32..10_000, 3..10),
        budget_pick in 0usize..3,
        shards in 1usize..5,
        threads in 1usize..5,
    ) {
        let budget = [0usize, 2 << 10, 1 << 20][budget_pick];
        let original = base_context();
        let sequence = decode(&original, &genes);
        let cache = Arc::new(SharedPrefixCache::new(budget, shards));
        thread::scope(|s| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let original = &original;
                let sequence = &sequence;
                s.spawn(move || {
                    let mut session = SharedCacheSession::new(cache);
                    // Each thread walks a different half of the chunk-
                    // deletion schedule, mixing confirmed and speculative
                    // priorities, so threads both produce and consume edges.
                    for start in 0..sequence.len() {
                        for end in start..=sequence.len() {
                            if (start + end + t) % 2 == 0 {
                                continue;
                            }
                            let mut candidate = sequence[..start].to_vec();
                            candidate.extend_from_slice(&sequence[end..]);
                            let ids: Vec<u64> =
                                candidate.iter().map(transformation_id).collect();
                            let priority = if (start + t) % 3 == 0 {
                                InsertPriority::Speculative
                            } else {
                                InsertPriority::Confirmed
                            };
                            let m = session.materialize_with_ids(
                                original,
                                &candidate,
                                &ids,
                                priority,
                            );
                            let mut want = original.clone();
                            let want_mask = apply_sequence(&mut want, &candidate);
                            assert_eq!(m.mask, want_mask, "mask diverged on thread {t}");
                            assert_eq!(m.context.module, want.module);
                            assert_eq!(m.context.facts, want.facts);
                            assert_eq!(m.fingerprint, Some(context_fingerprint(&want)));
                        }
                    }
                });
            }
        });
        cache.debug_check_accounting();
        let total_cap = budget.div_ceil(shards) * shards;
        prop_assert!(cache.stats().resident_bytes as usize <= total_cap);
    }

    /// Raw-API fingerprint safety: four threads hammer a small key space
    /// with interleaved inserts and lookups under heavy eviction churn; a
    /// hit must carry exactly the payload every writer stores for that key,
    /// never a neighbour's transition.
    #[test]
    fn lookups_never_return_a_mismatched_transition(
        key_words in vec(0u64..256, 1..200),
        shards in 1usize..5,
        budget_entries in 1usize..16,
    ) {
        let ctx = Arc::new(base_context());
        let bytes = context_size_estimate(&ctx);
        let cache = Arc::new(SharedPrefixCache::new(bytes * budget_entries, shards));
        thread::scope(|s| {
            for t in 0..4usize {
                let cache = Arc::clone(&cache);
                let ctx = Arc::clone(&ctx);
                let key_words = &key_words;
                s.spawn(move || {
                    for (i, &w) in key_words.iter().enumerate() {
                        let key = (w % 32, (w / 32) % 8);
                        let priority = if (i + t) % 2 == 0 {
                            InsertPriority::Confirmed
                        } else {
                            InsertPriority::Speculative
                        };
                        if (i + t) % 3 == 0 {
                            cache.insert(
                                key,
                                Arc::clone(&ctx),
                                payload_applied(key),
                                payload_fp(key),
                                bytes,
                                priority,
                            );
                        } else if let Some((_, applied, fp)) = cache.lookup(key, priority) {
                            assert_eq!(
                                fp,
                                payload_fp(key),
                                "mismatched transition returned for key {key:?}"
                            );
                            assert_eq!(applied, payload_applied(key));
                        }
                    }
                });
            }
        });
        cache.debug_check_accounting();
    }

    /// Byte accounting under arbitrary churn: charges of arbitrary sizes,
    /// mixed priorities, replacement of live keys. After every operation the
    /// resident-byte gauge equals the sum of edge charges (no underflow is
    /// possible without this test's sum check tripping first) and stays
    /// within every shard's budget slice. A confirmed insert is only ever
    /// refused when the entry alone exceeds a whole shard's budget.
    #[test]
    fn byte_accounting_stays_exact_under_arbitrary_churn(
        op_words in vec(0u64..(1 << 32), 1..200),
        budget in 0usize..8192,
        shards in 1usize..5,
    ) {
        let ctx = Arc::new(base_context());
        let cache = SharedPrefixCache::new(budget, shards);
        let shard_budget = budget.div_ceil(shards);
        for &w in &op_words {
            let key = (w % 16, (w / 16) % 4);
            let bytes = ((w >> 8) % 4096) as usize;
            let speculative = (w >> 21) & 1 == 1;
            let priority = if speculative {
                InsertPriority::Speculative
            } else {
                InsertPriority::Confirmed
            };
            let outcome =
                cache.insert(key, Arc::clone(&ctx), true, payload_fp(key), bytes, priority);
            cache.debug_check_accounting();
            if !outcome.inserted {
                prop_assert!(
                    bytes > shard_budget || speculative,
                    "confirmed insert of {bytes} bytes refused under shard budget {shard_budget}"
                );
            }
            let stats = cache.stats();
            prop_assert!(stats.resident_bytes as usize <= shard_budget * shards);
            prop_assert!(stats.peak_bytes as usize <= shard_budget * shards);
        }
    }
}
