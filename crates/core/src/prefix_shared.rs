//! A concurrent, sharded, byte-budgeted prefix cache shared across
//! reductions.
//!
//! [`crate::PrefixCache`] memoizes applied-transformation prefixes for *one*
//! reduction; bugs found by the same campaign share long sequence prefixes,
//! so per-bug parallel reducers warming private caches repeat each other's
//! work. [`SharedPrefixCache`] lifts the same state-transition chain — edges
//! keyed by `(state fingerprint, transformation id)` — into a process-wide
//! structure any number of reducers walk concurrently:
//!
//! * **Sharding.** Edges hash to one of N mutex-guarded shards, so
//!   concurrent walks contend only when they touch the same slice of the
//!   key space. Each lock is held for one map operation, never across an
//!   `apply` or a fingerprint computation.
//! * **Byte-size-aware eviction.** The old cache bounded *edge count*,
//!   which is blind to state size — one edge may pin a module 100× larger
//!   than another. Every edge is charged
//!   [`crate::context_size_estimate`] bytes against its shard's slice of
//!   the byte budget, and eviction runs a segmented CLOCK per shard: a
//!   cheap second-chance sweep instead of the old global min-scan.
//! * **A probationary segment for speculation.** Speculative prefetches
//!   insert into a probation segment that may only displace other
//!   probationary entries — a prefetch storm can never evict the confirmed
//!   path the search is actually standing on (the failure mode behind the
//!   4901-eviction speculative row in the old `BENCH_perf.json`). A
//!   confirmed-path hit promotes a probationary edge to the protected
//!   segment.
//!
//! Edges hold `Arc<Context>` snapshots: a reader that wins a lookup keeps
//! its snapshot alive even if the edge is evicted a microsecond later, and
//! insertion shares the walker's own snapshot without a second clone.
//!
//! # Determinism contract
//!
//! Cache *contents* depend on thread timing; reduced *outputs* do not. An
//! edge is only ever followed when the walker's current state fingerprint
//! equals the edge's key fingerprint, and `apply` is deterministic, so a
//! cached transition is exactly what a fresh replay would compute (the same
//! 64-bit-collision caveat [`crate::context_fingerprint`] documents). Every
//! counter the shared cache emits is [`Level::Volatile`] and excluded from
//! deterministic metric snapshots.
//!
//! [`Level::Volatile`]: trx_observe::Level::Volatile

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};
use trx_observe::{Counter, Scope, SinkHandle};

use crate::context::Context;
use crate::fingerprint::context_fingerprint;
use crate::prefix::{Materialized, PrefixCacheStats};
use crate::size::context_size_estimate;
use crate::transformation::{apply, Transformation};

/// How an insertion or lookup participates in the segmented CLOCK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPriority {
    /// A probe the search actually issued. Inserts into the protected
    /// segment and may displace probationary entries first, protected ones
    /// only when probation is empty; hits promote probationary edges.
    Confirmed,
    /// A speculative prefetch. Inserts into the probation segment, may
    /// displace *only* probationary entries, and is dropped outright when
    /// probation cannot make room; hits never promote.
    Speculative,
}

/// Aggregated work counters for the shared cache (per shard or summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedCacheStats {
    /// Edge lookups served (one per transformation step walked).
    pub lookups: u64,
    /// Lookups that found a matching cached transition.
    pub hits: u64,
    /// Edges admitted.
    pub insertions: u64,
    /// Edges displaced by the byte budget.
    pub evictions: u64,
    /// Insertions refused (oversized entry, or a speculative entry that
    /// could not make room in probation).
    pub rejected: u64,
    /// Probationary edges promoted to the protected segment.
    pub promotions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_bytes: u64,
}

impl SharedCacheStats {
    fn absorb(&mut self, other: &SharedCacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.promotions += other.promotions;
        self.resident_bytes += other.resident_bytes;
        self.peak_bytes += other.peak_bytes;
    }
}

/// One cached state transition.
struct SharedEdge {
    context: Arc<Context>,
    applied: bool,
    fp: u64,
    bytes: usize,
    /// CLOCK reference bit: set on every touch, cleared by the hand.
    referenced: bool,
    /// Segment membership: protected edges survive speculative pressure.
    protected: bool,
}

/// Which segment an eviction sweep may displace from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

#[derive(Default)]
struct Shard {
    edges: HashMap<(u64, u64), SharedEdge>,
    /// CLOCK rings of keys per segment. Entries go stale when a key is
    /// replaced or promoted; the sweep skips stale entries lazily instead
    /// of searching the ring on every segment change.
    probation: VecDeque<(u64, u64)>,
    protected: VecDeque<(u64, u64)>,
    bytes: usize,
    stats: SharedCacheStats,
    /// Stats already emitted by `flush_to_sink`; deltas keep repeated
    /// flushes (one per daemon job) from double-counting.
    flushed: SharedCacheStats,
}

impl Shard {
    fn ring(&mut self, segment: Segment) -> &mut VecDeque<(u64, u64)> {
        match segment {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    /// Displaces one resident edge from `segment`, giving referenced edges
    /// a second chance. Returns `false` when the segment has no resident
    /// edges left. Each iteration retires a ring entry or clears one
    /// reference bit, and cleared entries are not re-referenced while the
    /// shard lock is held, so the sweep terminates.
    fn evict_one(&mut self, segment: Segment) -> bool {
        let want_protected = segment == Segment::Protected;
        loop {
            let Some(key) = self.ring(segment).pop_front() else {
                return false;
            };
            let stale = match self.edges.get_mut(&key) {
                Some(edge) if edge.protected == want_protected => {
                    if edge.referenced {
                        edge.referenced = false;
                        self.ring(segment).push_back(key);
                        continue;
                    }
                    false
                }
                _ => true,
            };
            if stale {
                continue;
            }
            let edge = self.edges.remove(&key).expect("resident edge");
            self.bytes -= edge.bytes;
            self.stats.evictions += 1;
            return true;
        }
    }

    /// Makes room for `need` bytes under `budget`. Speculative callers may
    /// displace probation only; confirmed callers fall back to the
    /// protected segment once probation is dry.
    fn make_room(&mut self, need: usize, budget: usize, priority: InsertPriority) -> bool {
        while self.bytes + need > budget {
            if self.evict_one(Segment::Probation) {
                continue;
            }
            if priority == InsertPriority::Speculative {
                return false;
            }
            if !self.evict_one(Segment::Protected) {
                return false;
            }
        }
        true
    }
}

/// Outcome of [`SharedPrefixCache::insert`]: whether the edge was admitted
/// and how many resident edges it displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `false` when the edge was rejected (oversized, or speculative with
    /// no room in probation).
    pub inserted: bool,
    /// Edges evicted to make room.
    pub evictions: u64,
}

/// A concurrent prefix-transition cache shared by every reducer in a
/// pipeline run (or every job on a daemon shard). See the module docs for
/// the sharding, byte-budget and segmentation scheme.
pub struct SharedPrefixCache {
    shards: Vec<Mutex<Shard>>,
    budget_bytes: usize,
    shard_budget: usize,
}

impl std::fmt::Debug for SharedPrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPrefixCache")
            .field("shards", &self.shards.len())
            .field("budget_bytes", &self.budget_bytes)
            .finish_non_exhaustive()
    }
}

impl SharedPrefixCache {
    /// Creates a cache of `shards` shards (at least 1) splitting
    /// `budget_bytes` evenly. A zero budget admits nothing: every walk
    /// replays live, which keeps the zero-budget reference semantics of the
    /// private cache.
    #[must_use]
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        SharedPrefixCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            budget_bytes,
            shard_budget: budget_bytes.div_ceil(shards),
        }
    }

    /// The total byte budget across all shards.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: (u64, u64)) -> &Mutex<Shard> {
        // Fibonacci multiplicative mix of both key halves; the high bits
        // pick the shard so sequential fingerprints spread.
        let mixed = (key.0 ^ key.1.rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let index = (mixed >> 32) as usize % self.shards.len();
        &self.shards[index]
    }

    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        // A panicking walker holds the lock only across plain map edits,
        // which cannot leave byte accounting torn mid-operation; recover
        // rather than poisoning every other reducer.
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up the transition for `key`. A hit touches the CLOCK reference
    /// bit; a [`InsertPriority::Confirmed`] hit additionally promotes a
    /// probationary edge to the protected segment.
    pub fn lookup(
        &self,
        key: (u64, u64),
        priority: InsertPriority,
    ) -> Option<(Arc<Context>, bool, u64)> {
        let mut shard = Self::lock(self.shard_for(key));
        shard.stats.lookups += 1;
        let edge = shard.edges.get_mut(&key)?;
        edge.referenced = true;
        let hit = (Arc::clone(&edge.context), edge.applied, edge.fp);
        if priority == InsertPriority::Confirmed && !edge.protected {
            edge.protected = true;
            shard.protected.push_back(key);
            shard.stats.promotions += 1;
        }
        shard.stats.hits += 1;
        Some(hit)
    }

    /// Admits the transition for `key`, charging `bytes` against the
    /// shard's budget. Replaces any existing edge for the key.
    pub fn insert(
        &self,
        key: (u64, u64),
        context: Arc<Context>,
        applied: bool,
        fp: u64,
        bytes: usize,
        priority: InsertPriority,
    ) -> InsertOutcome {
        let mut shard = Self::lock(self.shard_for(key));
        if bytes > self.shard_budget {
            shard.stats.rejected += 1;
            return InsertOutcome { inserted: false, evictions: 0 };
        }
        if let Some(old) = shard.edges.remove(&key) {
            shard.bytes -= old.bytes;
        }
        let before = shard.stats.evictions;
        if !shard.make_room(bytes, self.shard_budget, priority) {
            let evictions = shard.stats.evictions - before;
            shard.stats.rejected += 1;
            return InsertOutcome { inserted: false, evictions };
        }
        let protected = priority == InsertPriority::Confirmed;
        shard.edges.insert(
            key,
            SharedEdge { context, applied, fp, bytes, referenced: true, protected },
        );
        let segment = if protected { Segment::Protected } else { Segment::Probation };
        shard.ring(segment).push_back(key);
        shard.bytes += bytes;
        shard.stats.insertions += 1;
        let resident = shard.bytes as u64;
        shard.stats.peak_bytes = shard.stats.peak_bytes.max(resident);
        let evictions = shard.stats.evictions - before;
        InsertOutcome { inserted: true, evictions }
    }

    /// Work counters summed over every shard (`resident_bytes` and
    /// `peak_bytes` sum too — they are per-shard gauges).
    #[must_use]
    pub fn stats(&self) -> SharedCacheStats {
        let mut total = SharedCacheStats::default();
        for shard in &self.shards {
            let mut shard = Self::lock(shard);
            shard.stats.resident_bytes = shard.bytes as u64;
            total.absorb(&shard.stats);
        }
        total
    }

    /// Eviction pressure in permille: displaced-or-rejected edges relative
    /// to admission attempts. The speculative throttle reads this — a
    /// prefetcher that mostly displaces or gets rejected is churning the
    /// probation segment for nothing.
    #[must_use]
    pub fn eviction_pressure_permille(&self) -> u64 {
        let stats = self.stats();
        let attempts = stats.insertions + stats.rejected;
        if attempts == 0 {
            return 0;
        }
        (stats.evictions + stats.rejected).saturating_mul(1000) / attempts
    }

    /// Emits per-shard counter deltas since the previous flush under
    /// [`Scope::CacheShard`]. Every counter is volatile: deterministic
    /// snapshots drop them by construction.
    pub fn flush_to_sink(&self, sink: &SinkHandle) {
        if !sink.enabled() {
            return;
        }
        for (index, shard) in self.shards.iter().enumerate() {
            let mut shard = Self::lock(shard);
            shard.stats.resident_bytes = shard.bytes as u64;
            let now = shard.stats;
            let prev = shard.flushed;
            let scope = Scope::CacheShard(index);
            sink.count(scope, Counter::SharedCacheLookups, now.lookups - prev.lookups);
            sink.count(scope, Counter::SharedCacheHits, now.hits - prev.hits);
            sink.count(scope, Counter::SharedCacheInsertions, now.insertions - prev.insertions);
            sink.count(scope, Counter::SharedCacheEvictions, now.evictions - prev.evictions);
            sink.count(scope, Counter::SharedCacheRejected, now.rejected - prev.rejected);
            sink.count(scope, Counter::SharedCachePromotions, now.promotions - prev.promotions);
            sink.count(scope, Counter::SharedCacheResidentBytes, now.resident_bytes);
            sink.count(scope, Counter::SharedCachePeakBytes, now.peak_bytes);
            shard.flushed = now;
        }
    }

    /// Verifies shard byte accounting: resident bytes equal the sum of
    /// edge charges and never exceed the per-shard budget. Cheap enough for
    /// tests to call between operations; not wired into release paths.
    #[doc(hidden)]
    pub fn debug_check_accounting(&self) {
        for shard in &self.shards {
            let shard = Self::lock(shard);
            let sum: usize = shard.edges.values().map(|e| e.bytes).sum();
            assert_eq!(shard.bytes, sum, "resident bytes must equal the sum of edge charges");
            assert!(
                shard.bytes <= self.shard_budget,
                "resident bytes {} exceed the shard budget {}",
                shard.bytes,
                self.shard_budget
            );
        }
    }
}

/// Where a shared-cache walk currently stands.
enum WalkCarrier {
    /// Still at the original context (empty prefix so far).
    Root,
    /// Standing on a cached (or just-inserted) snapshot.
    Cached(Arc<Context>),
    /// Off the cached frontier with an owned context the cache refused to
    /// admit (boxed to keep the enum small).
    Owned(Box<Context>),
}

/// One reduction's handle onto a [`SharedPrefixCache`].
///
/// The session carries the per-reduction pieces the shared structure cannot:
/// the root fingerprint of *this* reduction's original context, the
/// per-reduction [`PrefixCacheStats`] the engine reports, and the metric
/// sink scope. Its `materialize_with_ids` is a drop-in replacement for
/// [`crate::PrefixCache::materialize_with_ids`] plus an [`InsertPriority`].
pub struct SharedCacheSession {
    cache: Arc<SharedPrefixCache>,
    root_fp: Option<u64>,
    stats: PrefixCacheStats,
    flushed: PrefixCacheStats,
    sink: SinkHandle,
    sink_scope: Scope,
}

impl std::fmt::Debug for SharedCacheSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCacheSession")
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SharedCacheSession {
    /// Opens a session on `cache` for one reduction.
    #[must_use]
    pub fn new(cache: Arc<SharedPrefixCache>) -> Self {
        SharedCacheSession {
            cache,
            root_fp: None,
            stats: PrefixCacheStats::default(),
            flushed: PrefixCacheStats::default(),
            sink: SinkHandle::noop(),
            sink_scope: Scope::Pipeline,
        }
    }

    /// Routes this session's counters to `sink` under `scope`, batched per
    /// materialize like the private cache's sink.
    pub fn set_sink(&mut self, sink: SinkHandle, scope: Scope) {
        self.sink = sink;
        self.sink_scope = scope;
    }

    /// The shared cache this session walks.
    #[must_use]
    pub fn cache(&self) -> &Arc<SharedPrefixCache> {
        &self.cache
    }

    /// Per-reduction work counters, shaped like the private cache's so the
    /// engine's reporting stays uniform. `evictions` counts edges *this
    /// session's* insertions displaced.
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Materializes `candidate` against `original` through the shared
    /// cache; behaviorally identical to `apply_sequence` on a clone of
    /// `original` (and to the private cache) for any cache state.
    /// `ids[i]` must be `transformation_id(&candidate[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != candidate.len()`.
    pub fn materialize_with_ids(
        &mut self,
        original: &Context,
        candidate: &[Transformation],
        ids: &[u64],
        priority: InsertPriority,
    ) -> Materialized {
        assert_eq!(candidate.len(), ids.len(), "one id per transformation");
        self.stats.lookups += 1;
        let root_fp = *self.root_fp.get_or_insert_with(|| context_fingerprint(original));
        let mut state_fp = root_fp;
        let mut carrier = WalkCarrier::Root;
        let mut mask = Vec::with_capacity(candidate.len());
        let mut reused_any = false;
        for (t, &id) in candidate.iter().zip(ids) {
            let key = (state_fp, id);
            if let Some((snapshot, applied, fp)) = self.cache.lookup(key, priority) {
                mask.push(applied);
                state_fp = fp;
                carrier = WalkCarrier::Cached(snapshot);
                reused_any = true;
                self.stats.transformations_saved += 1;
                continue;
            }
            let mut ctx = match carrier {
                WalkCarrier::Root => original.clone(),
                WalkCarrier::Cached(snapshot) => (*snapshot).clone(),
                WalkCarrier::Owned(ctx) => *ctx,
            };
            let applied = apply(&mut ctx, t);
            self.stats.transformations_applied += 1;
            let fp = if applied { context_fingerprint(&ctx) } else { state_fp };
            let bytes = context_size_estimate(&ctx);
            let snapshot = Arc::new(ctx);
            let outcome =
                self.cache.insert(key, Arc::clone(&snapshot), applied, fp, bytes, priority);
            self.stats.evictions += outcome.evictions;
            mask.push(applied);
            state_fp = fp;
            carrier = if outcome.inserted {
                WalkCarrier::Cached(snapshot)
            } else {
                WalkCarrier::Owned(Box::new(
                    Arc::try_unwrap(snapshot).unwrap_or_else(|arc| (*arc).clone()),
                ))
            };
        }
        if reused_any {
            self.stats.hits += 1;
        }
        let context = match carrier {
            WalkCarrier::Root => original.clone(),
            WalkCarrier::Cached(snapshot) => {
                Arc::try_unwrap(snapshot).unwrap_or_else(|arc| (*arc).clone())
            }
            WalkCarrier::Owned(ctx) => *ctx,
        };
        self.flush_sink();
        Materialized { context, mask, fingerprint: Some(state_fp) }
    }

    /// Emits the session's stat deltas as volatile shared-cache counters.
    fn flush_sink(&mut self) {
        if !self.sink.enabled() {
            return;
        }
        let scope = self.sink_scope;
        let now = self.stats;
        let prev = self.flushed;
        self.sink.count(scope, Counter::SharedCacheLookups, now.lookups - prev.lookups);
        self.sink.count(scope, Counter::SharedCacheHits, now.hits - prev.hits);
        self.sink.count(
            scope,
            Counter::SharedCacheApplications,
            now.transformations_applied - prev.transformations_applied,
        );
        self.sink.count(
            scope,
            Counter::SharedCacheSaved,
            now.transformations_saved - prev.transformations_saved,
        );
        self.sink.count(scope, Counter::SharedCacheEvictions, now.evictions - prev.evictions);
        self.flushed = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_sequence;
    use crate::fingerprint::transformation_id;
    use crate::transformations::{AddConstant, SetFunctionControl};
    use trx_ir::{ConstantValue, FunctionControl, Id, Inputs, ModuleBuilder, Type};

    fn tiny_context() -> Context {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(1);
        let t_int = b.type_int();
        let mut h = b.begin_function(t_int, &[]);
        h.ret_value(c);
        let helper = h.finish();
        let mut f = b.begin_entry_function("main");
        let r = f.call(helper, vec![]);
        f.store_output("out", r);
        f.ret();
        f.finish();
        Context::new(b.finish(), Inputs::default()).unwrap()
    }

    fn flips(ctx: &Context, n: usize) -> Vec<Transformation> {
        let helper = ctx
            .module
            .functions
            .iter()
            .map(|f| f.id)
            .find(|&id| id != ctx.module.entry_point)
            .unwrap();
        (0..n)
            .map(|i| {
                let control = if i % 2 == 0 {
                    FunctionControl::DontInline
                } else {
                    FunctionControl::Inline
                };
                SetFunctionControl { function: helper, control }.into()
            })
            .collect()
    }

    fn add_consts(ctx: &Context, n: usize) -> Vec<Transformation> {
        let t_int = ctx
            .module
            .types
            .iter()
            .find(|decl| matches!(decl.ty, Type::Int))
            .expect("tiny context declares an int type")
            .id;
        (0..n)
            .map(|i| {
                AddConstant {
                    fresh_id: Id::new(100 + i as u32),
                    ty: t_int,
                    value: ConstantValue::Int(1_000 + i as i32),
                }
                .into()
            })
            .collect()
    }

    fn reference(original: &Context, candidate: &[Transformation]) -> (Context, Vec<bool>) {
        let mut ctx = original.clone();
        let mask = apply_sequence(&mut ctx, candidate);
        (ctx, mask)
    }

    fn materialize(
        session: &mut SharedCacheSession,
        original: &Context,
        candidate: &[Transformation],
        priority: InsertPriority,
    ) -> Materialized {
        let ids: Vec<u64> = candidate.iter().map(transformation_id).collect();
        session.materialize_with_ids(original, candidate, &ids, priority)
    }

    #[test]
    fn materialize_matches_full_replay_for_every_budget_and_shard_count() {
        let original = tiny_context();
        let sequence = flips(&original, 7);
        for budget in [0usize, 4 << 10, 1 << 20] {
            for shards in [1usize, 3, 8] {
                let cache = Arc::new(SharedPrefixCache::new(budget, shards));
                let mut session = SharedCacheSession::new(Arc::clone(&cache));
                for start in 0..sequence.len() {
                    for end in start..=sequence.len() {
                        let mut candidate = sequence[..start].to_vec();
                        candidate.extend_from_slice(&sequence[end..]);
                        let m = materialize(
                            &mut session,
                            &original,
                            &candidate,
                            InsertPriority::Confirmed,
                        );
                        let (want_ctx, want_mask) = reference(&original, &candidate);
                        assert_eq!(m.mask, want_mask, "budget {budget} shards {shards}");
                        assert_eq!(m.context.module, want_ctx.module);
                        assert_eq!(m.context.facts, want_ctx.facts);
                        assert_eq!(m.fingerprint, Some(context_fingerprint(&m.context)));
                        cache.debug_check_accounting();
                    }
                }
            }
        }
    }

    #[test]
    fn sessions_share_cached_prefixes() {
        let original = tiny_context();
        let sequence = add_consts(&original, 8);
        let cache = Arc::new(SharedPrefixCache::new(1 << 22, 4));
        let mut warm = SharedCacheSession::new(Arc::clone(&cache));
        let _ = materialize(&mut warm, &original, &sequence, InsertPriority::Confirmed);
        // A different session over the same original walks the warm chain
        // without applying anything.
        let mut cold = SharedCacheSession::new(Arc::clone(&cache));
        let m = materialize(&mut cold, &original, &sequence, InsertPriority::Confirmed);
        assert_eq!(cold.stats().transformations_applied, 0);
        assert_eq!(cold.stats().transformations_saved, sequence.len() as u64);
        let (want, _) = reference(&original, &sequence);
        assert_eq!(m.context.module, want.module);
    }

    #[test]
    fn speculative_pressure_cannot_evict_confirmed_edges() {
        let original = tiny_context();
        let confirmed_seq = add_consts(&original, 4);
        // One shard so the speculative storm competes for exactly the
        // budget the confirmed chain lives in.
        let per_edge = context_size_estimate(&original) * 2;
        let cache = Arc::new(SharedPrefixCache::new(per_edge * 6, 1));
        let mut session = SharedCacheSession::new(Arc::clone(&cache));
        let _ = materialize(&mut session, &original, &confirmed_seq, InsertPriority::Confirmed);
        let confirmed_after_warm = cache.stats();

        // Distinct speculative chains, each starting fresh from the root:
        // enough bytes to overflow probation many times over.
        for i in 0..24u32 {
            let storm: Vec<Transformation> = vec![AddConstant {
                fresh_id: Id::new(500 + i),
                ty: original.module.types[0].id,
                value: ConstantValue::Int(5_000 + i as i32),
            }
            .into()];
            let _ = materialize(&mut session, &original, &storm, InsertPriority::Speculative);
            cache.debug_check_accounting();
        }
        // The confirmed chain replays entirely from cache afterwards.
        let mut probe = SharedCacheSession::new(Arc::clone(&cache));
        let _ = materialize(&mut probe, &original, &confirmed_seq, InsertPriority::Confirmed);
        assert_eq!(
            probe.stats().transformations_applied,
            0,
            "speculative inserts displaced a protected edge"
        );
        // And the storm made room only among its own kind (or was refused).
        let after = cache.stats();
        assert!(after.evictions + after.rejected > confirmed_after_warm.evictions);
    }

    #[test]
    fn confirmed_hits_promote_probationary_edges() {
        let original = tiny_context();
        let sequence = add_consts(&original, 2);
        let cache = Arc::new(SharedPrefixCache::new(1 << 22, 2));
        let mut session = SharedCacheSession::new(Arc::clone(&cache));
        let _ = materialize(&mut session, &original, &sequence, InsertPriority::Speculative);
        assert_eq!(cache.stats().promotions, 0);
        let _ = materialize(&mut session, &original, &sequence, InsertPriority::Confirmed);
        assert_eq!(cache.stats().promotions, sequence.len() as u64);
    }

    #[test]
    fn oversized_entries_are_rejected_outright() {
        let original = tiny_context();
        let sequence = add_consts(&original, 1);
        // Budget far below one context's estimate: nothing can ever be
        // admitted, and the walk still matches the reference replay.
        let cache = Arc::new(SharedPrefixCache::new(8, 1));
        let mut session = SharedCacheSession::new(Arc::clone(&cache));
        let m = materialize(&mut session, &original, &sequence, InsertPriority::Confirmed);
        let (want, want_mask) = reference(&original, &sequence);
        assert_eq!(m.context.module, want.module);
        assert_eq!(m.mask, want_mask);
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert!(stats.rejected >= 1);
        assert_eq!(stats.resident_bytes, 0);
        cache.debug_check_accounting();
    }

    #[test]
    fn byte_budget_is_respected_under_replacement_churn() {
        let original = tiny_context();
        let cache = Arc::new(SharedPrefixCache::new(context_size_estimate(&original) * 8, 1));
        let mut session = SharedCacheSession::new(Arc::clone(&cache));
        // Many distinct single-step chains churn insert/evict in one shard.
        for i in 0..64u32 {
            let t: Vec<Transformation> = vec![AddConstant {
                fresh_id: Id::new(700 + i),
                ty: original.module.types[0].id,
                value: ConstantValue::Int(i as i32),
            }
            .into()];
            let _ = materialize(&mut session, &original, &t, InsertPriority::Confirmed);
            cache.debug_check_accounting();
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "churn must have exercised eviction");
        assert!(stats.resident_bytes <= cache.budget_bytes() as u64);
    }

    #[test]
    fn eviction_pressure_tracks_churn() {
        let original = tiny_context();
        let roomy = Arc::new(SharedPrefixCache::new(1 << 24, 2));
        let mut session = SharedCacheSession::new(Arc::clone(&roomy));
        let _ =
            materialize(&mut session, &original, &add_consts(&original, 4), InsertPriority::Confirmed);
        assert_eq!(roomy.eviction_pressure_permille(), 0);

        let tight = Arc::new(SharedPrefixCache::new(context_size_estimate(&original) * 3, 1));
        let mut session = SharedCacheSession::new(Arc::clone(&tight));
        for i in 0..32u32 {
            let t: Vec<Transformation> = vec![AddConstant {
                fresh_id: Id::new(800 + i),
                ty: original.module.types[0].id,
                value: ConstantValue::Int(i as i32),
            }
            .into()];
            let _ = materialize(&mut session, &original, &t, InsertPriority::Speculative);
        }
        assert!(tight.eviction_pressure_permille() > 500);
    }
}
