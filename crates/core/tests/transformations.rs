//! Behavioural tests for every transformation: each is applied to a concrete
//! module, the module must stay valid, and — per Definition 2.4 — the
//! execution result must be unchanged.

use trx_core::transformations::*;
use trx_core::{
    apply, apply_sequence, Context, InstructionDescriptor, Transformation, UseDescriptor,
};
use trx_ir::validate::validate;
use trx_ir::{
    interp, ConstantValue, Execution, FunctionControl, Id, Inputs, ModuleBuilder, Op,
    StorageClass, Terminator, Type, Value,
};

/// A seed module with arithmetic, a conditional diamond, a helper function
/// call, and composites: enough surface for every transformation.
///
/// Returns the context plus ids useful to tests.
struct Seed {
    ctx: Context,
    t_int: Id,
    helper: Id,
    /// Result id of the call to `helper` in main.
    call_result: Id,
    /// Result id of `sum` (an IAdd in the merge block).
    sum: Id,
    /// Labels: then-branch block of the diamond.
    then_block: Id,
    merge_block: Id,
}

fn seed() -> Seed {
    let mut b = ModuleBuilder::new();
    let t_int = b.type_int();
    let u = b.uniform("k", t_int);
    let c1 = b.constant_int(1);
    let c2 = b.constant_int(2);
    let c10 = b.constant_int(10);

    let mut h = b.begin_function(t_int, &[t_int]);
    let p = h.param_ids()[0];
    let tripled0 = h.iadd(t_int, p, p);
    let tripled = h.iadd(t_int, tripled0, p);
    h.ret_value(tripled);
    let helper = h.finish();

    let mut f = b.begin_entry_function("main");
    let loaded = f.load(u);
    let call_result = f.call(helper, vec![loaded]);
    let cond = f.slt(call_result, c10);
    let then_block = f.reserve_label();
    let merge_block = f.reserve_label();
    f.selection_merge(merge_block);
    f.branch_cond(cond, then_block, merge_block);
    f.begin_block_with_label(then_block);
    let doubled = f.imul(t_int, call_result, c2);
    f.branch(merge_block);
    f.begin_block_with_label(merge_block);
    let phi = f.phi(t_int, vec![(doubled, then_block), (c1, f.current_label())]);
    // NOTE: the second incoming pred must be the *entry* block, fixed below.
    let sum = f.iadd(t_int, phi, c1);
    f.store_output("out", sum);
    f.ret();
    f.finish();
    let mut module = b.finish();

    // Fix the placeholder phi pred: the non-then edge comes from the entry
    // block of main.
    let main = module.functions.iter_mut().find(|f| f.id == module.entry_point).unwrap();
    let entry_label = main.entry_label();
    let mb = main.block_mut(merge_block).unwrap();
    if let Op::Phi { incoming } = &mut mb.instructions[0].op {
        incoming[1].1 = entry_label;
    }

    validate(&module).expect("seed must validate");
    let inputs = Inputs::new().with("k", Value::Int(2));
    let ctx = Context::new(module, inputs).unwrap();
    Seed { ctx, t_int, helper, call_result, sum, then_block, merge_block }
}

fn run(ctx: &Context) -> Execution {
    interp::execute(&ctx.module, &ctx.inputs).expect("execution must not fault")
}

/// Applies `t`, asserting the precondition held, the module stays valid, and
/// semantics are preserved.
fn check_preserves(ctx: &mut Context, t: impl Into<Transformation>) {
    let t = t.into();
    let before = run(ctx);
    assert!(apply(ctx, &t), "precondition unexpectedly failed for {:?}", t.kind());
    validate(&ctx.module).expect("module must stay valid");
    let after = run(ctx);
    assert_eq!(before, after, "{:?} changed semantics", t.kind());
}

fn fresh(ctx: &Context, n: u32) -> Id {
    Id::new(ctx.module.id_bound + n)
}

#[test]
fn seed_module_behaves() {
    let s = seed();
    // k = 2 -> helper(2) = 6 < 10 -> doubled = 12 -> sum = 13.
    assert_eq!(run(&s.ctx).outputs["out"], Value::Int(13));
}

#[test]
fn add_type_and_constant() {
    let mut s = seed();
    let t_vec = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType { fresh_id: t_vec, ty: Type::Vector { component: s.t_int, count: 3 } },
    );
    let c = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddConstant { fresh_id: c, ty: s.t_int, value: ConstantValue::Int(77) },
    );
    // Re-adding the same type or constant must fail the precondition.
    let again = AddType {
        fresh_id: fresh(&s.ctx, 0),
        ty: Type::Vector { component: s.t_int, count: 3 },
    };
    assert!(!Transformation::from(again).precondition(&s.ctx));
    let again = AddConstant {
        fresh_id: fresh(&s.ctx, 0),
        ty: s.t_int,
        value: ConstantValue::Int(77),
    };
    assert!(!Transformation::from(again).precondition(&s.ctx));
}

#[test]
fn add_global_and_local_variables() {
    let mut s = seed();
    // Pointer types must exist first (supporting-transformation chains).
    let ptr_private = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: ptr_private,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: s.t_int },
        },
    );
    let g = fresh(&s.ctx, 0);
    check_preserves(&mut s.ctx, AddGlobalVariable { fresh_id: g, pointee: s.t_int });
    assert!(s.ctx.facts.pointee_is_irrelevant(g));

    let ptr_fn = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: ptr_fn,
            ty: Type::Pointer { storage: StorageClass::Function, pointee: s.t_int },
        },
    );
    let v = fresh(&s.ctx, 0);
    let entry = s.ctx.module.entry_point;
    check_preserves(&mut s.ctx, AddLocalVariable { fresh_id: v, function: entry, pointee: s.t_int });
    assert!(s.ctx.facts.pointee_is_irrelevant(v));
    // The variable landed in the entry block.
    assert!(s.ctx.module.entry_function().entry_block().instructions[0].is_variable());
}

#[test]
fn split_block_retargets_phis() {
    let mut s = seed();
    // Split main's entry block before the comparison (two instructions in:
    // load, call, cond). Splitting before `cond` leaves load+call behind.
    let new_block = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        SplitBlock {
            position: InstructionDescriptor::after_result(s.call_result, 1),
            fresh_block_id: new_block,
        },
    );
    // The merge-block phi edge formerly from the entry must now come from
    // the new block.
    let main = s.ctx.module.entry_function();
    let merge = main.block(s.merge_block).unwrap();
    if let Op::Phi { incoming } = &merge.instructions[0].op {
        assert!(incoming.iter().any(|(_, p)| *p == new_block));
    } else {
        panic!("expected phi");
    }
}

#[test]
fn split_block_rejects_phi_prefix() {
    let s = seed();
    let t = SplitBlock {
        position: InstructionDescriptor::in_block(s.merge_block, 0),
        fresh_block_id: fresh(&s.ctx, 0),
    };
    assert!(!Transformation::from(t).precondition(&s.ctx));
    // ... but splitting right after the phi is fine.
    let t = SplitBlock {
        position: InstructionDescriptor::in_block(s.merge_block, 1),
        fresh_block_id: fresh(&s.ctx, 0),
    };
    assert!(Transformation::from(t).precondition(&s.ctx));
}

/// Sets up a dead block in the seed's then-branch, returning its label.
fn with_dead_block(s: &mut Seed) -> Id {
    let c_true = fresh(&s.ctx, 0);
    let t_bool = s.ctx.module.lookup_type(&Type::Bool).unwrap();
    check_preserves(
        &mut s.ctx,
        AddConstant { fresh_id: c_true, ty: t_bool, value: ConstantValue::Bool(true) },
    );
    let dead = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddDeadBlock { fresh_block_id: dead, block: s.then_block, condition: c_true },
    );
    assert!(s.ctx.facts.block_is_dead(dead));
    dead
}

#[test]
fn add_dead_block_and_kill() {
    let mut s = seed();
    let dead = with_dead_block(&mut s);
    // The dead block exists, is branched to under false, and the phi in the
    // merge block gained an incoming edge for it.
    let main = s.ctx.module.entry_function();
    let merge = main.block(s.merge_block).unwrap();
    if let Op::Phi { incoming } = &merge.instructions[0].op {
        assert_eq!(incoming.len(), 3);
    } else {
        panic!("expected phi");
    }
    // A store in the dead block is allowed (Table 1's AddStore).
    let out_global = s.ctx.module.interface.outputs[0].global;
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    check_preserves(
        &mut s.ctx,
        AddStore {
            pointer: out_global,
            value: c1,
            insert_before: InstructionDescriptor::in_block(dead, 0),
        },
    );
    // Replacing the dead block's branch with OpKill preserves semantics.
    check_preserves(&mut s.ctx, ReplaceBranchWithKill { block: dead });
    let main = s.ctx.module.entry_function();
    assert_eq!(main.block(dead).unwrap().terminator, Terminator::Kill);
}

#[test]
fn store_outside_dead_block_rejected() {
    let mut s = seed();
    let out_global = s.ctx.module.interface.outputs[0].global;
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let t = AddStore {
        pointer: out_global,
        value: c1,
        insert_before: InstructionDescriptor::of_result(s.sum),
    };
    assert!(!Transformation::from(t).precondition(&s.ctx));
    // A store through an irrelevant pointee is fine anywhere, though.
    let ptr_ty = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: ptr_ty,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: s.t_int },
        },
    );
    let g = fresh(&s.ctx, 0);
    check_preserves(&mut s.ctx, AddGlobalVariable { fresh_id: g, pointee: s.t_int });
    check_preserves(
        &mut s.ctx,
        AddStore {
            pointer: g,
            value: c1,
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
}

#[test]
fn copy_object_and_synonym_replacement() {
    let mut s = seed();
    let copy = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        CopyObject {
            fresh_id: copy,
            source: s.call_result,
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    // The copy cannot replace the use inside `doubled` (defined later, no
    // domination)...
    let main = s.ctx.module.entry_function();
    let doubled = main
        .block(s.then_block)
        .unwrap()
        .instructions
        .iter()
        .find_map(|i| i.result)
        .unwrap();
    let bad = ReplaceIdWithSynonym {
        use_descriptor: UseDescriptor::Instruction {
            target: InstructionDescriptor::of_result(doubled),
            operand: 0,
        },
        synonym: copy,
    };
    assert!(!Transformation::from(bad).precondition(&s.ctx));

    // ...so copy earlier instead and replace there.
    let copy2 = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        CopyObject {
            fresh_id: copy2,
            source: s.call_result,
            insert_before: InstructionDescriptor::in_block(s.then_block, 0),
        },
    );
    check_preserves(
        &mut s.ctx,
        ReplaceIdWithSynonym {
            use_descriptor: UseDescriptor::Instruction {
                target: InstructionDescriptor::of_result(doubled),
                operand: 0,
            },
            synonym: copy2,
        },
    );
    let (_, inst) = s.ctx.module.find_result(doubled).unwrap();
    assert!(inst.op.id_operands().contains(&copy2));
}

#[test]
fn arithmetic_synonyms() {
    let mut s = seed();
    let c0 = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddConstant { fresh_id: c0, ty: s.t_int, value: ConstantValue::Int(0) },
    );
    let syn = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddArithmeticSynonym {
            fresh_id: syn,
            source: s.call_result,
            identity_constant: c0,
            identity: ArithmeticIdentity::AddZero,
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    // Wrong identity constant rejected.
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let bad = AddArithmeticSynonym {
        fresh_id: fresh(&s.ctx, 0),
        source: s.call_result,
        identity_constant: c1,
        identity: ArithmeticIdentity::AddZero,
        insert_before: InstructionDescriptor::of_result(s.sum),
    };
    assert!(!Transformation::from(bad).precondition(&s.ctx));
}

#[test]
fn composite_construct_extract_roundtrip() {
    let mut s = seed();
    let t_vec = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType { fresh_id: t_vec, ty: Type::Vector { component: s.t_int, count: 2 } },
    );
    // Find the comparison in main's entry block: it uses call_result.
    let cond = s
        .ctx
        .module
        .entry_function()
        .entry_block()
        .instructions
        .iter()
        .find(|i| matches!(i.op, Op::Binary { op: trx_ir::BinOp::SLessThan, .. }))
        .and_then(|i| i.result)
        .unwrap();
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let vec_id = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        CompositeConstruct {
            fresh_id: vec_id,
            ty: t_vec,
            parts: vec![s.call_result, c1],
            insert_before: InstructionDescriptor::of_result(cond),
        },
    );
    let extracted = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        CompositeExtract {
            fresh_id: extracted,
            composite: vec_id,
            indices: vec![0],
            insert_before: InstructionDescriptor::of_result(cond),
        },
    );
    // construct[0] ~ call_result and extracted ~ construct[0], so extracted
    // can replace the comparison's use of call_result.
    check_preserves(
        &mut s.ctx,
        ReplaceIdWithSynonym {
            use_descriptor: UseDescriptor::Instruction {
                target: InstructionDescriptor::of_result(cond),
                operand: 0,
            },
            synonym: extracted,
        },
    );
    let (_, inst) = s.ctx.module.find_result(cond).unwrap();
    assert!(inst.op.id_operands().contains(&extracted));
}

#[test]
fn add_load_marks_irrelevant() {
    let mut s = seed();
    let ptr_ty = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: ptr_ty,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: s.t_int },
        },
    );
    let g = fresh(&s.ctx, 0);
    check_preserves(&mut s.ctx, AddGlobalVariable { fresh_id: g, pointee: s.t_int });
    let loaded = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddLoad {
            fresh_id: loaded,
            pointer: g,
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    assert!(s.ctx.facts.id_is_irrelevant(loaded));
}

#[test]
fn add_parameter_and_replace_irrelevant_argument() {
    let mut s = seed();
    let param = fresh(&s.ctx, 0);
    let fn_ty = fresh(&s.ctx, 1);
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    check_preserves(
        &mut s.ctx,
        AddParameter {
            function: s.helper,
            fresh_param_id: param,
            param_ty: s.t_int,
            argument: c1,
            fresh_function_type_id: fn_ty,
        },
    );
    assert!(s.ctx.facts.id_is_irrelevant(param));
    let helper = s.ctx.module.function(s.helper).unwrap();
    assert_eq!(helper.params.len(), 2);
    // The call site now passes c1 as operand 2 (callee, original arg, new
    // arg); replace it with something "interesting".
    let c10 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(10)).unwrap();
    check_preserves(
        &mut s.ctx,
        ReplaceIrrelevantId {
            use_descriptor: UseDescriptor::Instruction {
                target: InstructionDescriptor::of_result(s.call_result),
                operand: 2,
            },
            replacement: c10,
        },
    );
}

#[test]
fn entry_point_cannot_gain_parameters() {
    let s = seed();
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let t = AddParameter {
        function: s.ctx.module.entry_point,
        fresh_param_id: fresh(&s.ctx, 0),
        param_ty: s.t_int,
        argument: c1,
        fresh_function_type_id: fresh(&s.ctx, 1),
    };
    assert!(!Transformation::from(t).precondition(&s.ctx));
}

/// Builds a livesafe donor payload in the context's id space.
fn donor_payload(s: &mut Seed) -> AddFunction {
    let bound = s.ctx.module.id_bound;
    let mut ids = (bound..).map(Id::new);
    let fn_ty = s
        .ctx
        .module
        .lookup_type(&Type::Function { ret: s.t_int, params: vec![s.t_int] })
        .expect("helper's type exists");
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let fid = ids.next().unwrap();
    let pid = ids.next().unwrap();
    let label = ids.next().unwrap();
    let r = ids.next().unwrap();
    let function = trx_ir::Function {
        id: fid,
        ty: fn_ty,
        control: FunctionControl::None,
        params: vec![trx_ir::FunctionParam { id: pid, ty: s.t_int }],
        blocks: vec![trx_ir::Block {
            label,
            instructions: vec![trx_ir::Instruction::with_result(
                r,
                s.t_int,
                Op::Binary { op: trx_ir::BinOp::IAdd, lhs: pid, rhs: c1 },
            )],
            merge: None,
            terminator: Terminator::ReturnValue { value: r },
        }],
    };
    AddFunction { function, livesafe: true }
}

#[test]
fn add_function_and_call_from_live_code() {
    let mut s = seed();
    let payload = donor_payload(&mut s);
    let donor_id = payload.function.id;
    check_preserves(&mut s.ctx, payload);
    assert!(s.ctx.facts.function_is_live_safe(donor_id));

    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let call = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        FunctionCall {
            fresh_id: call,
            callee: donor_id,
            args: vec![c1],
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    assert!(s.ctx.facts.id_is_irrelevant(call));
}

#[test]
fn non_livesafe_function_callable_only_from_dead_blocks() {
    let mut s = seed();
    let mut payload = donor_payload(&mut s);
    payload.livesafe = false;
    let donor_id = payload.function.id;
    check_preserves(&mut s.ctx, payload);

    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    // From live code: rejected.
    let live_call = FunctionCall {
        fresh_id: fresh(&s.ctx, 0),
        callee: donor_id,
        args: vec![c1],
        insert_before: InstructionDescriptor::of_result(s.sum),
    };
    assert!(!Transformation::from(live_call).precondition(&s.ctx));
    // From a dead block: fine.
    let dead = with_dead_block(&mut s);
    let call_id = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        FunctionCall {
            fresh_id: call_id,
            callee: donor_id,
            args: vec![c1],
            insert_before: InstructionDescriptor::in_block(dead, 0),
        },
    );
}

#[test]
fn inline_function_preserves_semantics() {
    let mut s = seed();
    let helper = s.ctx.module.function(s.helper).unwrap();
    let mut old_ids: Vec<Id> = helper.blocks.iter().map(|b| b.label).collect();
    old_ids.extend(
        helper
            .blocks
            .iter()
            .flat_map(|b| b.instructions.iter().filter_map(|i| i.result)),
    );
    let bound = s.ctx.module.id_bound;
    let id_map: Vec<(Id, Id)> = old_ids
        .iter()
        .enumerate()
        .map(|(i, &old)| (old, Id::new(bound + i as u32)))
        .collect();
    let ret_block_id = Id::new(bound + old_ids.len() as u32);
    check_preserves(
        &mut s.ctx,
        InlineFunction { call_result: s.call_result, ret_block_id, id_map },
    );
    // The call is gone from main; the helper function remains.
    let main = s.ctx.module.entry_function();
    let calls: usize = main
        .instructions()
        .filter(|i| matches!(i.op, Op::Call { .. }))
        .count();
    assert_eq!(calls, 0);
    assert!(s.ctx.module.function(s.helper).is_some());
}

#[test]
fn set_function_control_dont_inline() {
    let mut s = seed();
    check_preserves(
        &mut s.ctx,
        SetFunctionControl { function: s.helper, control: FunctionControl::DontInline },
    );
    assert_eq!(
        s.ctx.module.function(s.helper).unwrap().control,
        FunctionControl::DontInline
    );
    // Setting the same control again is a no-op and fails the precondition.
    let t = SetFunctionControl { function: s.helper, control: FunctionControl::DontInline };
    assert!(!Transformation::from(t).precondition(&s.ctx));
}

#[test]
fn move_block_down_respects_dominance() {
    let mut s = seed();
    // then_block -> merge_block order: then_block dominates nothing below it
    // except itself; moving it down past merge_block would put a dominator
    // question at stake. The merge block is dominated by the entry, not by
    // then_block, so the swap is legal.
    check_preserves(&mut s.ctx, MoveBlockDown { block: s.then_block });
    // Entry can never move.
    let entry_label = s.ctx.module.entry_function().entry_label();
    let t = MoveBlockDown { block: entry_label };
    assert!(!Transformation::from(t).precondition(&s.ctx));
}

#[test]
fn propagate_instruction_up_builds_phi() {
    let mut s = seed();
    // The merge block's first non-phi instruction is `sum = phi + 1`, and
    // `phi` is a phi of the block: propagation substitutes per-pred values,
    // the Figure 8a pattern.
    let preds = s.ctx.module.entry_function().predecessors(s.merge_block);
    assert_eq!(preds.len(), 2);
    let bound = s.ctx.module.id_bound;
    let fresh_ids: Vec<(Id, Id)> = preds
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, Id::new(bound + i as u32)))
        .collect();
    check_preserves(
        &mut s.ctx,
        PropagateInstructionUp { block: s.merge_block, fresh_ids },
    );
    // `sum` is now a phi.
    let (_, inst) = s.ctx.module.find_result(s.sum).unwrap();
    assert!(matches!(inst.op, Op::Phi { .. }));
}

#[test]
fn wrap_region_in_selection_both_forms() {
    for form in [SelectionForm::Then, SelectionForm::Else] {
        let mut s = seed();
        let t_bool = s.ctx.module.lookup_type(&Type::Bool).unwrap();
        let c = fresh(&s.ctx, 0);
        let value = ConstantValue::Bool(matches!(form, SelectionForm::Then));
        check_preserves(&mut s.ctx, AddConstant { fresh_id: c, ty: t_bool, value });
        // `doubled` (defined in then_block) is used by the merge-block phi,
        // so it must be routed through an escape patch.
        let main = s.ctx.module.entry_function();
        let doubled = main
            .block(s.then_block)
            .unwrap()
            .instructions
            .iter()
            .find_map(|i| i.result)
            .unwrap();
        let header = fresh(&s.ctx, 0);
        let merge = fresh(&s.ctx, 1);
        let escape =
            EscapePatch { def: doubled, fresh_undef: fresh(&s.ctx, 2), fresh_phi: fresh(&s.ctx, 3) };
        check_preserves(
            &mut s.ctx,
            WrapRegionInSelection {
                block: s.then_block,
                form,
                condition: c,
                fresh_header_id: header,
                fresh_merge_id: merge,
                escapes: vec![escape],
            },
        );
        let main = s.ctx.module.entry_function();
        assert!(main.block(header).is_some());
        assert!(main.block(merge).is_some());
        // Missing escapes are rejected.
        let t = WrapRegionInSelection {
            block: s.merge_block,
            form,
            condition: c,
            fresh_header_id: fresh(&s.ctx, 0),
            fresh_merge_id: fresh(&s.ctx, 1),
            escapes: vec![],
        };
        // merge_block has phis, so it is rejected for that reason too.
        assert!(!Transformation::from(t).precondition(&s.ctx));
    }
}

#[test]
fn swap_commutative_operands() {
    let mut s = seed();
    check_preserves(&mut s.ctx, SwapCommutativeOperands { instruction: s.sum });
    // Comparisons like SLessThan are not commutative.
    let main = s.ctx.module.entry_function();
    let cond = main
        .entry_block()
        .instructions
        .iter()
        .find(|i| matches!(i.op, Op::Binary { op: trx_ir::BinOp::SLessThan, .. }))
        .and_then(|i| i.result)
        .unwrap();
    let t = SwapCommutativeOperands { instruction: cond };
    assert!(!Transformation::from(t).precondition(&s.ctx));
}

#[test]
fn invert_conditional_branch() {
    let mut s = seed();
    let entry_label = s.ctx.module.entry_function().entry_label();
    let not1 = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        InvertConditionalBranch { block: entry_label, fresh_not_id: not1 },
    );
    // Applying twice (with another fresh id) still preserves semantics.
    let not2 = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        InvertConditionalBranch { block: entry_label, fresh_not_id: not2 },
    );
}

#[test]
fn replace_constant_with_uniform() {
    let mut s = seed();
    // The constant 2 in `doubled = call_result * 2` equals uniform "k" = 2.
    let uniform = s.ctx.module.interface.uniforms[0].global;
    let main = s.ctx.module.entry_function();
    let doubled = main
        .block(s.then_block)
        .unwrap()
        .instructions
        .iter()
        .find_map(|i| i.result)
        .unwrap();
    let load_id = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        ReplaceConstantWithUniform {
            use_descriptor: UseDescriptor::Instruction {
                target: InstructionDescriptor::of_result(doubled),
                operand: 1,
            },
            uniform,
            fresh_load_id: load_id,
        },
    );
    // Mismatched value rejected: constant 10 != uniform k = 2.
    let cond_use = UseDescriptor::Terminator {
        block: s.ctx.module.entry_function().entry_label(),
        operand: 0,
    };
    let t = ReplaceConstantWithUniform {
        use_descriptor: cond_use,
        uniform,
        fresh_load_id: fresh(&s.ctx, 0),
    };
    assert!(!Transformation::from(t).precondition(&s.ctx));
}

#[test]
fn sequence_application_skips_failed_preconditions() {
    let mut s = seed();
    let dead_without_constant = AddDeadBlock {
        fresh_block_id: fresh(&s.ctx, 0),
        block: s.then_block,
        // No true constant exists yet, so this cannot apply.
        condition: fresh(&s.ctx, 1),
    };
    let control: Transformation =
        SetFunctionControl { function: s.helper, control: FunctionControl::Inline }.into();
    let before = run(&s.ctx);
    let applied = apply_sequence(
        &mut s.ctx,
        &[dead_without_constant.into(), control],
    );
    assert_eq!(applied, vec![false, true]);
    assert_eq!(before, run(&s.ctx));
}

#[test]
fn transformations_serialize_round_trip() {
    let s = seed();
    let ts: Vec<Transformation> = vec![
        SetFunctionControl { function: s.helper, control: FunctionControl::DontInline }.into(),
        MoveBlockDown { block: s.then_block }.into(),
        CopyObject {
            fresh_id: fresh(&s.ctx, 0),
            source: s.call_result,
            insert_before: InstructionDescriptor::of_result(s.sum),
        }
        .into(),
    ];
    let json = serde_json::to_string(&ts).unwrap();
    let back: Vec<Transformation> = serde_json::from_str(&json).unwrap();
    assert_eq!(ts, back);
}

#[test]
fn add_access_chain_into_nested_composite() {
    let mut s = seed();
    // Build array<vec3<int>, 2> and a private global of that type.
    let t_vec = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType { fresh_id: t_vec, ty: Type::Vector { component: s.t_int, count: 3 } },
    );
    let t_arr = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType { fresh_id: t_arr, ty: Type::Array { element: t_vec, len: 2 } },
    );
    let t_ptr_arr = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: t_ptr_arr,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: t_arr },
        },
    );
    let g = fresh(&s.ctx, 0);
    check_preserves(&mut s.ctx, AddGlobalVariable { fresh_id: g, pointee: t_arr });

    let c0 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(0));
    let c0 = match c0 {
        Some(c) => c,
        None => {
            let id = fresh(&s.ctx, 0);
            check_preserves(
                &mut s.ctx,
                AddConstant { fresh_id: id, ty: s.t_int, value: ConstantValue::Int(0) },
            );
            id
        }
    };
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    // The depth-2 result pointer type must exist first.
    let t_ptr_int = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: t_ptr_int,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: s.t_int },
        },
    );
    let chain = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddAccessChain {
            fresh_id: chain,
            base: g,
            indices: vec![c0, c1],
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    // The chained pointer inherits irrelevance; loads and stores through it
    // stay legal anywhere.
    assert!(s.ctx.facts.pointee_is_irrelevant(chain));
    check_preserves(
        &mut s.ctx,
        AddStore {
            pointer: chain,
            value: c1,
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
    // Out-of-range index rejected.
    let c9 = {
        let id = fresh(&s.ctx, 0);
        check_preserves(
            &mut s.ctx,
            AddConstant { fresh_id: id, ty: s.t_int, value: ConstantValue::Int(9) },
        );
        id
    };
    let bad = AddAccessChain {
        fresh_id: fresh(&s.ctx, 0),
        base: g,
        indices: vec![c9],
        insert_before: InstructionDescriptor::of_result(s.sum),
    };
    assert!(!Transformation::from(bad).precondition(&s.ctx));
}

/// Builds a loop-bearing function payload with a §3.2-style iteration
/// limiter; `sabotage` lets tests break the pattern in specific ways.
fn limited_loop_payload(s: &Seed, sabotage: &str) -> AddFunction {
    use trx_ir::{BinOp, Block, Function, FunctionParam, Instruction, Merge};
    let m = &s.ctx.module;
    let t_int = s.t_int;
    let t_bool = m.lookup_type(&Type::Bool).expect("bool exists");
    let t_ptr = m
        .lookup_type(&Type::Pointer { storage: StorageClass::Function, pointee: t_int })
        .expect("pointer type interned by caller");
    let c0 = m.lookup_constant(t_int, &ConstantValue::Int(0)).expect("0");
    let c1 = m.lookup_constant(t_int, &ConstantValue::Int(1)).expect("1");
    let c8 = m.lookup_constant(t_int, &ConstantValue::Int(8)).expect("8");
    let fn_ty = m
        .lookup_type(&Type::Function { ret: t_int, params: vec![t_int] })
        .expect("helper type exists");

    let mut next = m.id_bound;
    let mut id = || {
        let v = Id::new(next);
        next += 1;
        v
    };
    let (fid, pid) = (id(), id());
    let (entry, header, body, cont, merge) = (id(), id(), id(), id(), id());
    let (counter, i_phi, acc_phi, ld, inc, cmp, cond, conj, acc2, i2) =
        (id(), id(), id(), id(), id(), id(), id(), id(), id(), id());

    let mut header_instructions = vec![
        Instruction::with_result(i_phi, t_int, Op::Phi {
            incoming: vec![(c0, entry), (i2, cont)],
        }),
        Instruction::with_result(acc_phi, t_int, Op::Phi {
            incoming: vec![(c0, entry), (acc2, cont)],
        }),
        Instruction::with_result(ld, t_int, Op::Load { pointer: counter }),
        Instruction::with_result(inc, t_int, Op::Binary {
            op: BinOp::IAdd,
            lhs: ld,
            rhs: c1,
        }),
        Instruction::without_result(Op::Store { pointer: counter, value: inc }),
        Instruction::with_result(cmp, t_bool, Op::Binary {
            op: BinOp::SLessThan,
            lhs: ld,
            rhs: c8,
        }),
        Instruction::with_result(cond, t_bool, Op::Binary {
            op: BinOp::SLessThan,
            lhs: i_phi,
            rhs: pid,
        }),
        Instruction::with_result(conj, t_bool, Op::Binary {
            op: BinOp::LogicalAnd,
            lhs: cond,
            rhs: cmp,
        }),
    ];
    match sabotage {
        "drop-store" => {
            header_instructions.retain(|i| !matches!(i.op, Op::Store { .. }));
        }
        "skip-limiter-in-branch" => {
            // Branch on the raw condition: the limiter no longer gates the
            // loop.
            header_instructions.pop();
        }
        _ => {}
    }
    let branch_cond = if sabotage == "skip-limiter-in-branch" { cond } else { conj };

    let function = Function {
        id: fid,
        ty: fn_ty,
        control: FunctionControl::None,
        params: vec![FunctionParam { id: pid, ty: t_int }],
        blocks: vec![
            Block {
                label: entry,
                instructions: vec![Instruction::with_result(
                    counter,
                    t_ptr,
                    Op::Variable { storage: StorageClass::Function, initializer: None },
                )],
                merge: None,
                terminator: Terminator::Branch { target: header },
            },
            Block {
                label: header,
                instructions: header_instructions,
                merge: Some(Merge::Loop { merge, cont }),
                terminator: Terminator::BranchConditional {
                    cond: branch_cond,
                    true_target: body,
                    false_target: merge,
                },
            },
            Block {
                label: body,
                instructions: vec![Instruction::with_result(acc2, t_int, Op::Binary {
                    op: BinOp::IAdd,
                    lhs: acc_phi,
                    rhs: c1,
                })],
                merge: None,
                terminator: Terminator::Branch { target: cont },
            },
            Block {
                label: cont,
                instructions: vec![Instruction::with_result(i2, t_int, Op::Binary {
                    op: BinOp::IAdd,
                    lhs: i_phi,
                    rhs: c1,
                })],
                merge: None,
                terminator: Terminator::Branch { target: header },
            },
            Block {
                label: merge,
                instructions: vec![],
                merge: None,
                terminator: Terminator::ReturnValue { value: acc_phi },
            },
        ],
    };
    AddFunction { function, livesafe: true }
}

fn seed_with_limiter_prereqs() -> Seed {
    let mut s = seed();
    let ptr = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: ptr,
            ty: Type::Pointer { storage: StorageClass::Function, pointee: s.t_int },
        },
    );
    for value in [0, 8] {
        if s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(value)).is_none() {
            let id = fresh(&s.ctx, 0);
            check_preserves(
                &mut s.ctx,
                AddConstant { fresh_id: id, ty: s.t_int, value: ConstantValue::Int(value) },
            );
        }
    }
    s
}

#[test]
fn limited_loops_are_accepted_as_livesafe() {
    let mut s = seed_with_limiter_prereqs();
    let payload = limited_loop_payload(&s, "none");
    check_preserves(&mut s.ctx, payload.clone());
    assert!(s.ctx.facts.function_is_live_safe(payload.function.id));
    // And calling it from live code terminates with semantics preserved.
    let c1 = s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(1)).unwrap();
    let call_id = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        FunctionCall {
            fresh_id: call_id,
            callee: payload.function.id,
            args: vec![c1],
            insert_before: InstructionDescriptor::of_result(s.sum),
        },
    );
}

#[test]
fn unlimited_loops_are_rejected_as_livesafe() {
    let s = seed_with_limiter_prereqs();
    for sabotage in ["drop-store", "skip-limiter-in-branch"] {
        let payload = limited_loop_payload(&s, sabotage);
        assert!(
            !Transformation::from(payload).precondition(&s.ctx),
            "sabotage {sabotage:?} must fail the live-safe precondition"
        );
    }
}

#[test]
fn sabotaged_loops_still_addable_as_non_livesafe() {
    let mut s = seed_with_limiter_prereqs();
    let mut payload = limited_loop_payload(&s, "skip-limiter-in-branch");
    payload.livesafe = false;
    check_preserves(&mut s.ctx, payload);
}

/// Regression: wrapping a block whose *pointer-typed* definition escapes
/// must be rejected — the escape patch would need a pointer phi and a
/// pointer `OpUndef`, which logical addressing (and the validator) forbid.
/// Found by the workspace property tests.
#[test]
fn wrap_region_rejects_pointer_escapes() {
    let mut s = seed();
    // Build: a block defining an AccessChain pointer used in a later block.
    let t_bool = s.ctx.module.lookup_type(&Type::Bool).unwrap();
    let c_true = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddConstant { fresh_id: c_true, ty: t_bool, value: ConstantValue::Bool(true) },
    );
    let t_vec = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType { fresh_id: t_vec, ty: Type::Vector { component: s.t_int, count: 2 } },
    );
    let t_ptr_vec = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: t_ptr_vec,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: t_vec },
        },
    );
    let t_ptr_int = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddType {
            fresh_id: t_ptr_int,
            ty: Type::Pointer { storage: StorageClass::Private, pointee: s.t_int },
        },
    );
    let g = fresh(&s.ctx, 0);
    check_preserves(&mut s.ctx, AddGlobalVariable { fresh_id: g, pointee: t_vec });
    let c0 = match s.ctx.module.lookup_constant(s.t_int, &ConstantValue::Int(0)) {
        Some(c) => c,
        None => {
            let id = fresh(&s.ctx, 0);
            check_preserves(
                &mut s.ctx,
                AddConstant { fresh_id: id, ty: s.t_int, value: ConstantValue::Int(0) },
            );
            id
        }
    };
    // Pointer defined in then_block...
    let chain = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddAccessChain {
            fresh_id: chain,
            base: g,
            indices: vec![c0],
            insert_before: InstructionDescriptor::in_block(s.then_block, 0),
        },
    );
    // ...with a use in the merge block? Loads would need domination; the
    // then_block dominates nothing outside itself here, so instead split
    // the block after the chain: the tail block's load makes the pointer
    // escape the *original* block when we try to wrap it.
    let tail = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        SplitBlock {
            position: InstructionDescriptor::after_result(chain, 1),
            fresh_block_id: tail,
        },
    );
    let loaded = fresh(&s.ctx, 0);
    check_preserves(
        &mut s.ctx,
        AddLoad {
            fresh_id: loaded,
            pointer: chain,
            insert_before: InstructionDescriptor::in_block(tail, 0),
        },
    );
    // Wrapping then_block (which now ends in Branch{tail}) must fail: the
    // escaping def `chain` is a pointer.
    let function = s.ctx.module.entry_function();
    let escaping = WrapRegionInSelection::escaping_defs(function, s.then_block);
    assert!(escaping.contains(&chain), "the pointer escapes");
    let bound = s.ctx.module.id_bound;
    let wrap = WrapRegionInSelection {
        block: s.then_block,
        form: SelectionForm::Then,
        condition: c_true,
        fresh_header_id: Id::new(bound),
        fresh_merge_id: Id::new(bound + 1),
        escapes: escaping
            .into_iter()
            .enumerate()
            .map(|(i, def)| EscapePatch {
                def,
                fresh_undef: Id::new(bound + 2 + 2 * i as u32),
                fresh_phi: Id::new(bound + 3 + 2 * i as u32),
            })
            .collect(),
    };
    assert!(
        !Transformation::from(wrap).precondition(&s.ctx),
        "pointer escapes must be rejected (no pointer phis under logical addressing)"
    );
}
