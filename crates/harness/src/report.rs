//! Persistent bug reports.
//!
//! spirv-fuzz serialises transformation sequences (as protocol buffers) so
//! that bug reports are *replayable*: the reduced sequence plus the original
//! shader reproduces the failing variant exactly. This module provides the
//! same artefact as JSON: a [`BugReport`] carries the reference identity,
//! the reduced sequence, the human-readable delta, and enough metadata to
//! re-run the interestingness test.

use serde::{Deserialize, Serialize};

use trx_core::{apply_sequence, Context, Transformation};
use trx_ir::disasm;

use crate::campaign::BugSignature;
use crate::corpus::reference_shader;

/// A self-contained, replayable bug report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReport {
    /// The target the bug was observed on.
    pub target: String,
    /// The observed signature.
    pub signature: BugSignature,
    /// Index of the reference shader the test started from.
    pub reference_index: usize,
    /// The reduced transformation sequence (the replayable core of the
    /// report).
    pub sequence: Vec<Transformation>,
    /// The delta between the original and the minimally-transformed
    /// variant, in `-`/`+` line form (the Figure 3 presentation).
    pub delta: String,
    /// Instruction counts of original and reduced variant.
    pub instruction_counts: (usize, usize),
}

/// Failures when building or replaying a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The reference index is out of range.
    UnknownReference(usize),
    /// The referenced corpus shader failed validation — an internal
    /// invariant violation reported as data instead of a panic.
    ReferenceInvalid(String),
    /// Replaying the sequence failed to apply some transformation.
    ReplayIncomplete {
        /// Index of the first transformation that did not apply.
        position: usize,
    },
    /// Serialising the report failed.
    Serialization(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::UnknownReference(i) => write!(f, "unknown reference index {i}"),
            ReportError::ReferenceInvalid(reason) => {
                write!(f, "reference failed validation: {reason}")
            }
            ReportError::ReplayIncomplete { position } => {
                write!(f, "transformation {position} no longer applies")
            }
            ReportError::Serialization(reason) => {
                write!(f, "report serialization failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl BugReport {
    /// Builds a report from a reduced sequence over reference
    /// `reference_index`.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownReference`] for an out-of-range index.
    pub fn new(
        target: &str,
        signature: BugSignature,
        reference_index: usize,
        sequence: Vec<Transformation>,
    ) -> Result<Self, ReportError> {
        if reference_index >= crate::corpus::REFERENCE_COUNT {
            return Err(ReportError::UnknownReference(reference_index));
        }
        let reference = reference_shader(reference_index);
        let original = Context::new(reference.module, reference.inputs)
            .map_err(|e| ReportError::ReferenceInvalid(e.to_string()))?;
        let mut variant = original.clone();
        apply_sequence(&mut variant, &sequence);
        let original_text = disasm::disassemble(&original.module);
        let variant_text = disasm::disassemble(&variant.module);
        Ok(BugReport {
            target: target.to_owned(),
            signature,
            reference_index,
            sequence,
            delta: disasm::changed_lines(&original_text, &variant_text),
            instruction_counts: (
                original.module.instruction_count(),
                variant.module.instruction_count(),
            ),
        })
    }

    /// Replays the report, returning the reproduced variant context.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::ReplayIncomplete`] if some recorded
    /// transformation no longer applies — which indicates a corrupted
    /// report, since sequences replay deterministically against the fixed
    /// corpus.
    pub fn replay(&self) -> Result<Context, ReportError> {
        if self.reference_index >= crate::corpus::REFERENCE_COUNT {
            return Err(ReportError::UnknownReference(self.reference_index));
        }
        let reference = reference_shader(self.reference_index);
        let mut context = Context::new(reference.module, reference.inputs)
            .map_err(|e| ReportError::ReferenceInvalid(e.to_string()))?;
        let applied = apply_sequence(&mut context, &self.sequence);
        if let Some(position) = applied.iter().position(|&a| !a) {
            return Err(ReportError::ReplayIncomplete { position });
        }
        Ok(context)
    }

    /// Serialises the report to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::Serialization`] if the serializer fails —
    /// never the case for reports produced by [`BugReport::new`], but
    /// surfaced as data so campaign code can route it into an error ledger.
    pub fn to_json(&self) -> Result<String, ReportError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| ReportError::Serialization(e.to_string()))
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{classify, generate_test, Tool};
    use crate::corpus::donor_modules;
    use trx_reducer::Reducer;
    use trx_targets::catalog;

    fn some_reduced_report() -> BugReport {
        let donors = donor_modules();
        let target = catalog::target_by_name("spirv-opt-old").unwrap();
        for seed in 0..300 {
            let test = generate_test(Tool::SpirvFuzz, seed, &donors);
            let Some(signature @ BugSignature::Crash(_)) = classify(
                Tool::SpirvFuzz,
                &target,
                &test.original,
                &test.variant.module,
                &test.original.inputs,
            ) else {
                continue;
            };
            let reduction = Reducer::default().reduce(
                &test.original,
                &test.transformations,
                |variant| {
                    classify(
                        Tool::SpirvFuzz,
                        &target,
                        &test.original,
                        &variant.module,
                        &test.original.inputs,
                    )
                    .as_ref()
                        == Some(&signature)
                },
            );
            return BugReport::new(
                target.name(),
                signature,
                seed as usize % crate::corpus::REFERENCE_COUNT,
                reduction.sequence,
            )
            .expect("valid reference index");
        }
        panic!("no crash found in seed range");
    }

    #[test]
    fn report_round_trips_through_json_and_replays() {
        let report = some_reduced_report();
        let json = report.to_json().expect("serialises");
        let parsed = BugReport::from_json(&json).expect("parses");
        assert_eq!(report, parsed);
        let replayed = parsed.replay().expect("replays cleanly");
        // The replayed variant still triggers the recorded signature.
        let target = catalog::target_by_name(&parsed.target).unwrap();
        let observed = classify(
            Tool::SpirvFuzz,
            &target,
            &replayed, // original == replayed base; classification only
            &replayed.module,
            &replayed.inputs,
        );
        assert_eq!(observed.as_ref(), Some(&parsed.signature));
        assert!(!parsed.delta.is_empty());
    }

    #[test]
    fn unknown_reference_rejected() {
        let err = BugReport::new(
            "x",
            BugSignature::Miscompilation,
            9_999,
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, ReportError::UnknownReference(9_999));
    }
}
