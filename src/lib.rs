//! # transfuzz
//!
//! Transformation-based compiler testing with test-case reduction and
//! deduplication *almost for free* — a from-scratch reproduction of the
//! system described in Donaldson et al., "Test-Case Reduction and
//! Deduplication Almost for Free with Transformation-Based Compiler
//! Testing" (PLDI 2021).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`ir`] — an SSA shader IR mirroring the Vulkan subset of SPIR-V, with
//!   validator, reference interpreter, binary codec and disassembler;
//! * [`core`] — transformation contexts, facts, and the catalogue of
//!   semantics-preserving transformations (the paper's §2);
//! * [`fuzzer`] — fuzzer passes and the recommendations strategy (§3.2);
//! * [`reducer`] — delta debugging over transformation sequences (§3.4);
//! * [`dedup`] — the Figure 6 deduplication heuristic (§3.5);
//! * [`targets`] — nine simulated compilers with injected bugs (Table 2);
//! * [`baseline`] — a glsl-fuzz-style coarse-grained baseline (§4);
//! * [`harness`] — campaign runner, corpus, statistics and experiment
//!   drivers (§4);
//! * [`basicblocks`] — the pedagogical §2.1 language (Table 1, Figures
//!   4–5).
//!
//! # Quick start
//!
//! ```
//! use transfuzz::harness::campaign::{run_single_test, Tool};
//! use transfuzz::harness::corpus::donor_modules;
//! use transfuzz::targets::catalog;
//!
//! let target = catalog::target_by_name("SwiftShader").unwrap();
//! let outcome = run_single_test(Tool::SpirvFuzz, 7, &target, &donor_modules());
//! // `outcome` is `Some(signature)` when seed 7's variant exposes a bug.
//! let _ = outcome;
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use trx_baseline as baseline;
pub use trx_basicblocks as basicblocks;
pub use trx_core as core;
pub use trx_dedup as dedup;
pub use trx_fuzzer as fuzzer;
pub use trx_harness as harness;
pub use trx_ir as ir;
pub use trx_reducer as reducer;
pub use trx_targets as targets;
