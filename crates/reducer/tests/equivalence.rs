//! Equivalence proptests for the prefix-memoized reduction engine.
//!
//! The engine's caching layers must be *behaviorally invisible*: for every
//! cache budget (including 0 and 1), and — for deterministic probes — with
//! verdict memoization and speculative parallel probing enabled, a
//! reduction must produce a byte-identical [`ReductionLog`], reduced
//! sequence, [`trx_reducer::ReductionStats`], and final context compared
//! to the serial budget-0 reference engine. Resume from any journal
//! prefix must land on the same bytes too.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use trx_core::transformations::{AddConstant, SetFunctionControl};
use trx_core::{context_fingerprint, Context, SharedPrefixCache, Transformation};
use trx_ir::{ConstantValue, FunctionControl, Id, Inputs, ModuleBuilder, Type};
use trx_observe::{Counter, MetricsReport, RecordingSink, Scope, SinkHandle};
use trx_pool::with_pool;
use trx_reducer::{
    JournaledReduction, ProbeFault, Reducer, ReducerOptions, ReductionLog,
};

/// A fresh deterministic-mode recording sink plus its handle.
fn recording() -> (Arc<RecordingSink>, SinkHandle) {
    let sink = Arc::new(RecordingSink::deterministic());
    let handle = SinkHandle::new(sink.clone());
    (sink, handle)
}

/// The logical (engine-independent) reduction counters of a snapshot: any
/// two engines that claim byte-equivalence must agree on all of these.
fn logical_counters(snapshot: &MetricsReport) -> [u64; 5] {
    [
        snapshot.total(Counter::TestsRun),
        snapshot.total(Counter::ChunksRemoved),
        snapshot.total(Counter::PayloadInstructionsRemoved),
        snapshot.total(Counter::ProbeFaults),
        snapshot.total(Counter::PoisonedQueries),
    ]
}

/// Entry point plus one helper function whose inline control the flip
/// transformations toggle.
fn base_context() -> Context {
    let mut b = ModuleBuilder::new();
    let c = b.constant_int(1);
    let t_int = b.type_int();
    let mut h = b.begin_function(t_int, &[]);
    h.ret_value(c);
    let helper = h.finish();
    let mut f = b.begin_entry_function("main");
    let r = f.call(helper, vec![]);
    f.store_output("out", r);
    f.ret();
    f.finish();
    Context::new(b.finish(), Inputs::default()).unwrap()
}

/// Decodes sampled genes into a transformation sequence mixing
/// state-toggling flips (whose removal is often a no-op), distinct
/// `AddConstant`s (effective — their removal changes the module), and
/// colliding `AddConstant`s (duplicates are skipped by precondition, so
/// both their application and their removal are no-ops).
fn decode(ctx: &Context, genes: &[u8]) -> Vec<Transformation> {
    let helper = ctx
        .module
        .functions
        .iter()
        .map(|f| f.id)
        .find(|&id| id != ctx.module.entry_point)
        .unwrap();
    let t_int = ctx
        .module
        .types
        .iter()
        .find(|decl| matches!(decl.ty, Type::Int))
        .unwrap()
        .id;
    genes
        .iter()
        .enumerate()
        .map(|(i, &g)| match g % 4 {
            0 => AddConstant {
                fresh_id: Id::new(200 + i as u32),
                ty: t_int,
                value: ConstantValue::Int(10_000 + i as i32),
            }
            .into(),
            1 => SetFunctionControl { function: helper, control: FunctionControl::DontInline }
                .into(),
            2 => SetFunctionControl { function: helper, control: FunctionControl::Inline }
                .into(),
            // Deliberately colliding fresh ids: only the first of each
            // collision group applies, the rest skip.
            _ => AddConstant {
                fresh_id: Id::new(900 + u32::from(g) % 3),
                ty: t_int,
                value: ConstantValue::Int(20_000 + i32::from(g) % 3),
            }
            .into(),
        })
        .collect()
}

/// Byte-level comparison of two journaled reductions (everything except
/// [`trx_reducer::EngineStats`], which legitimately differs between
/// engines that are otherwise byte-identical).
fn assert_same(
    label: &str,
    got: &JournaledReduction,
    want: &JournaledReduction,
) -> Result<(), String> {
    if got.log != want.log {
        return Err(format!("{label}: logs differ\n got {:?}\nwant {:?}", got.log, want.log));
    }
    if got.reduction.sequence != want.reduction.sequence {
        return Err(format!("{label}: reduced sequences differ"));
    }
    if got.reduction.stats != want.reduction.stats {
        return Err(format!(
            "{label}: stats differ\n got {:?}\nwant {:?}",
            got.reduction.stats, want.reduction.stats
        ));
    }
    if got.reduction.context.module != want.reduction.context.module {
        return Err(format!("{label}: final modules differ"));
    }
    if got.reduction.context.facts != want.reduction.context.facts {
        return Err(format!("{label}: final fact stores differ"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_memoized_and_speculative_engines_match_serial(
        genes in vec(0u8..=15, 0..=18),
        fault_salt in 0u64..=u64::MAX,
        fault_every in 0u64..=6,
        knobs in 0u32..=11,
    ) {
        let original = base_context();
        let sequence = decode(&original, &genes);

        // The oracle demands every effective AddConstant survive: the full
        // sequence is interesting, flip/duplicate removals are accepted,
        // effective-constant removals are rejected.
        let variant = {
            let mut full = original.clone();
            trx_core::apply_sequence(&mut full, &sequence);
            full
        };
        let needed = variant.module.constants.len();
        // Deterministic per-context fault plan: some candidate contexts
        // always fault (and therefore poison-quarantine), the rest answer.
        let probe = move |ctx: &Context| -> Result<bool, ProbeFault> {
            if fault_every > 0
                && (context_fingerprint(ctx) ^ fault_salt).is_multiple_of(fault_every + 3)
            {
                return Err(ProbeFault("planned fault".into()));
            }
            Ok(ctx.module.constants.len() >= needed)
        };

        let (votes_required, votes) = if knobs.is_multiple_of(2) { (1, 1) } else { (2, 3) };
        let max_tests = if knobs.is_multiple_of(3) { 7 } else { 100_000 };
        let base_opts = ReducerOptions {
            shrink_added_functions: false,
            max_tests,
            poison_retries: 2,
            prefix_cache_budget: 0,
            memoize_verdicts: false,
            speculation: 1,
            ..ReducerOptions::default()
        }
        .with_votes(votes_required, votes);

        let run_observed = |opts: ReducerOptions, handle: SinkHandle| {
            Reducer::new(opts).with_sink(handle, Scope::Reduction(0)).reduce_journaled(
                &original,
                &sequence,
                &ReductionLog::new(),
                probe,
                |_, _| {},
            )
        };
        let run_serial = |opts: ReducerOptions| run_observed(opts, SinkHandle::noop());

        let (reference_sink, reference_handle) = recording();
        let reference = run_observed(base_opts, reference_handle);
        let reference_metrics = reference_sink.snapshot();
        prop_assert_eq!(
            reference_metrics.total(Counter::TestsRun) as usize,
            reference.reduction.stats.tests_run,
            "sink and stats disagree on tests_run"
        );
        // Without memo, speculation, or replayed prefix, every journal
        // record is one live oracle invocation (faulted attempts included).
        prop_assert_eq!(
            reference_metrics.total(Counter::LiveProbes) as usize,
            reference.log.len(),
            "serial run: every probe invocation is live"
        );

        // Every cache budget is behaviorally invisible; the verdict memo is
        // an exact optimization for this (deterministic) probe.
        for budget in [1usize, 4, 64] {
            let (sink, handle) = recording();
            let got =
                run_observed(ReducerOptions { prefix_cache_budget: budget, ..base_opts }, handle);
            assert_same(&format!("budget {budget}"), &got, &reference)?;
            prop_assert!(
                got.reduction.engine.cache.transformations_applied
                    <= reference.reduction.engine.cache.transformations_applied,
                "budget {budget}: cache increased work"
            );
            let metrics = sink.snapshot();
            prop_assert_eq!(
                logical_counters(&metrics),
                logical_counters(&reference_metrics),
                "budget {}: logical counters diverged from serial", budget
            );
            // Counter-level cache oracle: whenever the whole sequence fits
            // in the cache, the search did real work (some chunk was
            // removed), and the sequence is long enough for a removal
            // candidate to share a nonempty prefix with the cached full
            // sequence, the cache must have hit at least once.
            if budget >= sequence.len()
                && sequence.len() >= 3
                && got.reduction.stats.chunks_removed > 0
            {
                prop_assert!(
                    metrics.total(Counter::CacheHits) > 0,
                    "budget {}: cache never hit on a reducible sequence", budget
                );
            }
        }
        let (memo_sink, memo_handle) = recording();
        let memo = run_observed(
            ReducerOptions { prefix_cache_budget: 64, memoize_verdicts: true, ..base_opts },
            memo_handle,
        );
        assert_same("memo", &memo, &reference)?;
        let memo_metrics = memo_sink.snapshot();
        prop_assert_eq!(
            logical_counters(&memo_metrics),
            logical_counters(&reference_metrics),
            "memo: logical counters diverged from serial"
        );
        // The memo conservation law: every query the memo answers is one
        // live probe the serial engine performed, one for one.
        prop_assert_eq!(
            memo_metrics.total(Counter::LiveProbes) + memo_metrics.total(Counter::MemoHits),
            reference_metrics.total(Counter::LiveProbes),
            "memo hits and live probes must partition the serial probe count"
        );

        // Seeding the engine with the pre-built variant context skips the
        // initial full-sequence replay but must not move a single byte.
        let seeded = Reducer::new(ReducerOptions {
            prefix_cache_budget: 64,
            memoize_verdicts: true,
            ..base_opts
        })
        .reduce_journaled_seeded(
            &original,
            &sequence,
            &variant,
            &ReductionLog::new(),
            probe,
            |_, _| {},
        );
        assert_same("seeded", &seeded, &reference)?;

        // Speculative probing adopts verdicts in canonical order, so the
        // bytes match the serial engine at every width — and so do the
        // logical counters, which is the cross-engine oracle the pipeline
        // invariant suite leans on.
        for width in [2usize, 5] {
            let (spec_sink, spec_handle) = recording();
            let got = with_pool(3, |pool| {
                let reducer = Reducer::new(ReducerOptions {
                    prefix_cache_budget: 64,
                    memoize_verdicts: knobs % 4 == 1,
                    speculation: width,
                    ..base_opts
                })
                .with_sink(spec_handle.clone(), Scope::Reduction(0));
                // One width per case also exercises the seeded entry point.
                if width == 5 {
                    reducer.reduce_speculative_seeded(
                        &original,
                        &sequence,
                        &variant,
                        &ReductionLog::new(),
                        probe,
                        |_, _| {},
                        pool,
                    )
                } else {
                    reducer.reduce_speculative(
                        &original,
                        &sequence,
                        &ReductionLog::new(),
                        probe,
                        |_, _| {},
                        pool,
                    )
                }
            });
            assert_same(&format!("speculation {width}"), &got, &reference)?;
            let metrics = spec_sink.snapshot();
            prop_assert_eq!(
                logical_counters(&metrics),
                logical_counters(&reference_metrics),
                "speculation {}: logical counters diverged from serial", width
            );
            // A speculative verdict can only be consumed after it was
            // launched, so hits are bounded by launches.
            prop_assert!(
                metrics.total(Counter::SpeculativeHits)
                    <= metrics.total(Counter::SpeculativeLaunches),
                "speculation {}: more hits than launches", width
            );
        }

        // Kill/resume: replaying any journal prefix of the memoized run
        // reproduces the remaining records bit-identically.
        let golden = run_serial(ReducerOptions {
            prefix_cache_budget: 64,
            memoize_verdicts: true,
            ..base_opts
        });
        let cut = (fault_salt % (golden.log.len() as u64 + 1)) as usize;
        let prefix = ReductionLog { records: golden.log.records[..cut].to_vec() };
        let resumed = Reducer::new(ReducerOptions {
            prefix_cache_budget: 64,
            memoize_verdicts: true,
            ..base_opts
        })
        .reduce_journaled(&original, &sequence, &prefix, probe, |_, _| {});
        assert_same(&format!("resume cut {cut}"), &resumed, &golden)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism contract: any number of reducers sharing
    /// one sharded prefix cache must each produce a reduction
    /// byte-identical to the serial budget-0 reference — cache *contents*
    /// may depend on thread timing, reduced *outputs* may not. Exercised at
    /// 1, 4 and 8 concurrent reducers over roomy and deliberately
    /// pathological budgets (1 byte rejects every insert), plus kill/resume
    /// against a cache warmed by a previous incarnation.
    #[test]
    fn shared_cache_reducers_match_serial_at_1_4_and_8_threads(
        genes in vec(0u8..=15, 0..=14),
        fault_salt in 0u64..=u64::MAX,
        fault_every in 0u64..=6,
        budget_pick in 0usize..3,
        shards in 1usize..5,
    ) {
        let original = base_context();
        let sequence = decode(&original, &genes);
        let needed = {
            let mut full = original.clone();
            trx_core::apply_sequence(&mut full, &sequence);
            full.module.constants.len()
        };
        let probe = move |ctx: &Context| -> Result<bool, ProbeFault> {
            if fault_every > 0
                && (context_fingerprint(ctx) ^ fault_salt).is_multiple_of(fault_every + 3)
            {
                return Err(ProbeFault("planned fault".into()));
            }
            Ok(ctx.module.constants.len() >= needed)
        };
        let opts = ReducerOptions {
            shrink_added_functions: false,
            poison_retries: 2,
            prefix_cache_budget: 0,
            ..ReducerOptions::default()
        };
        let reference = Reducer::new(opts).reduce_journaled(
            &original,
            &sequence,
            &ReductionLog::new(),
            probe,
            |_, _| {},
        );

        let budget = [1usize, 64 << 10, 1 << 20][budget_pick];
        for threads in [1usize, 4, 8] {
            let cache = Arc::new(SharedPrefixCache::new(budget, shards));
            let results: Vec<JournaledReduction> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cache = Arc::clone(&cache);
                        let original = &original;
                        let sequence = &sequence;
                        s.spawn(move || {
                            Reducer::new(opts).with_shared_cache(cache).reduce_journaled(
                                original,
                                sequence,
                                &ReductionLog::new(),
                                probe,
                                |_, _| {},
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("reducer panicked")).collect()
            });
            for (i, got) in results.iter().enumerate() {
                assert_same(&format!("threads {threads} reducer {i} budget {budget}"), got, &reference)?;
            }
            cache.debug_check_accounting();
        }

        // Kill/resume with the shared cache enabled: resuming from any
        // journal prefix against an already-warm cache reproduces the
        // golden bytes and the exact journal suffix.
        let cache = Arc::new(SharedPrefixCache::new(budget, shards.max(2)));
        let _ = Reducer::new(opts)
            .with_shared_cache(Arc::clone(&cache))
            .reduce_journaled(&original, &sequence, &ReductionLog::new(), probe, |_, _| {});
        let cut = (fault_salt % (reference.log.len() as u64 + 1)) as usize;
        let prefix = ReductionLog { records: reference.log.records[..cut].to_vec() };
        let resumed = Reducer::new(opts)
            .with_shared_cache(Arc::clone(&cache))
            .reduce_journaled(&original, &sequence, &prefix, probe, |_, _| {});
        assert_same(&format!("shared resume cut {cut}"), &resumed, &reference)?;
        cache.debug_check_accounting();
    }
}

/// Longer sequences where reduction does real work: the cached engine must
/// apply strictly fewer transformations than the budget-0 reference.
#[test]
fn cache_strictly_reduces_applications_on_reducible_sequences() {
    let original = base_context();
    let genes: Vec<u8> = (0..24u8).map(|i| [1, 2, 3, 0][usize::from(i) % 4]).collect();
    let sequence = decode(&original, &genes);
    let needed = {
        let mut full = original.clone();
        trx_core::apply_sequence(&mut full, &sequence);
        full.module.constants.len()
    };
    let probe =
        move |ctx: &Context| -> Result<bool, ProbeFault> { Ok(ctx.module.constants.len() >= needed) };
    let run = |budget: usize| {
        let (sink, handle) = recording();
        let out = Reducer::new(ReducerOptions {
            shrink_added_functions: false,
            prefix_cache_budget: budget,
            ..ReducerOptions::default()
        })
        .with_sink(handle, Scope::Reduction(0))
        .reduce_journaled(&original, &sequence, &ReductionLog::new(), probe, |_, _| {});
        (out, sink.snapshot())
    };
    let (serial, serial_metrics) = run(0);
    let (cached, cached_metrics) = run(256);
    assert_eq!(serial.log, cached.log);
    assert_eq!(serial.reduction.sequence, cached.reduction.sequence);
    let serial_applied = serial.reduction.engine.cache.transformations_applied;
    let cached_applied = cached.reduction.engine.cache.transformations_applied;
    assert!(
        cached_applied < serial_applied,
        "cache saved nothing: {cached_applied} vs {serial_applied}"
    );
    assert!(cached.reduction.engine.cache.hits > 0);

    // The recorded counters mirror the engine's own statistics exactly.
    assert_eq!(logical_counters(&cached_metrics), logical_counters(&serial_metrics));
    assert_eq!(
        cached_metrics.total(Counter::CacheHits),
        cached.reduction.engine.cache.hits
    );
    assert_eq!(
        cached_metrics.total(Counter::CacheApplications),
        cached.reduction.engine.cache.transformations_applied
    );
    assert_eq!(
        cached_metrics.total(Counter::CacheSaved),
        cached.reduction.engine.cache.transformations_saved
    );
    assert!(cached_metrics.total(Counter::CacheSaved) > 0, "cache saved no applications");
}

/// The memo answers repeat contexts without consulting the oracle: on a
/// sequence full of no-op removals, a memoized run performs strictly fewer
/// live probe invocations for the same journal.
#[test]
fn memo_skips_live_probes_for_repeat_contexts() {
    let original = base_context();
    // All genes collide: most transformations are precondition-failed
    // no-ops, so most candidates normalize to already-seen contexts.
    let genes: Vec<u8> = (0..20u8).map(|i| [3, 7, 11, 1][usize::from(i) % 4]).collect();
    let sequence = decode(&original, &genes);
    let needed = {
        let mut full = original.clone();
        trx_core::apply_sequence(&mut full, &sequence);
        full.module.constants.len()
    };
    let run = |memoize: bool| {
        let mut live = 0usize;
        let (sink, handle) = recording();
        let out = Reducer::new(ReducerOptions {
            shrink_added_functions: false,
            memoize_verdicts: memoize,
            ..ReducerOptions::default()
        })
        .with_sink(handle, Scope::Reduction(0))
        .reduce_journaled(
            &original,
            &sequence,
            &ReductionLog::new(),
            |ctx| {
                live += 1;
                Ok(ctx.module.constants.len() >= needed)
            },
            |_, _| {},
        );
        (out, live, sink.snapshot())
    };
    let (plain, plain_live, plain_metrics) = run(false);
    let (memoized, memo_live, memo_metrics) = run(true);
    assert_eq!(plain.log, memoized.log, "memo must not change the journal");
    assert_eq!(plain.reduction.sequence, memoized.reduction.sequence);
    assert_eq!(plain.reduction.stats, memoized.reduction.stats);
    assert!(
        memo_live < plain_live,
        "memo never hit: {memo_live} live probes vs {plain_live}"
    );
    assert!(memoized.reduction.engine.memo_hits > 0);
    assert_eq!(
        memo_live as u64 + memoized.reduction.engine.memo_hits,
        plain_live as u64,
        "every skipped live probe must be a memo hit"
    );

    // The same conservation law, read back from the recorded counters: the
    // sink's live-probe count matches the hand count on both runs, and
    // memoized probes plus memo hits partition the plain run's traffic.
    assert_eq!(plain_metrics.total(Counter::LiveProbes), plain_live as u64);
    assert_eq!(memo_metrics.total(Counter::LiveProbes), memo_live as u64);
    assert_eq!(memo_metrics.total(Counter::MemoHits), memoized.reduction.engine.memo_hits);
    assert_eq!(
        memo_metrics.total(Counter::LiveProbes) + memo_metrics.total(Counter::MemoHits),
        plain_metrics.total(Counter::LiveProbes),
    );
    assert_eq!(memo_metrics.total(Counter::TestsRun), plain_metrics.total(Counter::TestsRun));
}

/// The speculation hit-rate throttle suppresses prefetch launches (and the
/// eviction churn they cause) when the prefix cache keeps missing, without
/// moving a single byte of the reduction output.
#[test]
fn speculation_throttle_suppresses_launches_without_changing_bytes() {
    let original = base_context();
    let genes: Vec<u8> = (0..28u8).map(|i| [1, 2, 3, 0][usize::from(i) % 4]).collect();
    let sequence = decode(&original, &genes);
    let needed = {
        let mut full = original.clone();
        trx_core::apply_sequence(&mut full, &sequence);
        full.module.constants.len()
    };
    let probe =
        move |ctx: &Context| -> Result<bool, ProbeFault> { Ok(ctx.module.constants.len() >= needed) };
    // Budget 1 keeps the hit rate on the floor, so a speculative run
    // thrashes the cache — exactly the pathology the throttle targets.
    let run = |min_hit_permille: u32| {
        let (sink, handle) = recording();
        let out = with_pool(3, |pool| {
            Reducer::new(ReducerOptions {
                shrink_added_functions: false,
                prefix_cache_budget: 1,
                speculation: 4,
                speculation_min_hit_permille: min_hit_permille,
                ..ReducerOptions::default()
            })
            .with_sink(handle, Scope::Reduction(0))
            .reduce_speculative(&original, &sequence, &ReductionLog::new(), probe, |_, _| {}, pool)
        });
        (out, sink.snapshot())
    };
    let (free, free_metrics) = run(0);
    // A floor above 1000 permille can never be satisfied: every post-warmup
    // batch is suppressed, which pins the throttle's worst case.
    let (throttled, throttled_metrics) = run(1001);

    assert_eq!(free.log, throttled.log, "throttle must not change the journal");
    assert_eq!(free.reduction.sequence, throttled.reduction.sequence);
    assert_eq!(free.reduction.stats, throttled.reduction.stats);
    assert_eq!(free.reduction.context.module, throttled.reduction.context.module);

    assert!(
        throttled.reduction.engine.speculative_throttles > 0,
        "throttle never fired on a thrashing cache"
    );
    assert!(
        throttled.reduction.engine.speculative_probes
            < free.reduction.engine.speculative_probes,
        "throttle suppressed no launches: {} vs {}",
        throttled.reduction.engine.speculative_probes,
        free.reduction.engine.speculative_probes,
    );
    assert!(
        throttled.reduction.engine.cache.evictions < free.reduction.engine.cache.evictions,
        "throttle saved no evictions: {} vs {}",
        throttled.reduction.engine.cache.evictions,
        free.reduction.engine.cache.evictions,
    );
    // The recorded counters agree with the engine's own statistics.
    assert_eq!(
        throttled_metrics.total(Counter::SpeculativeThrottles),
        throttled.reduction.engine.speculative_throttles
    );
    assert_eq!(free_metrics.total(Counter::SpeculativeThrottles), 0);
    assert_eq!(
        logical_counters(&free_metrics),
        logical_counters(&throttled_metrics),
        "logical counters must not see the throttle"
    );
}
