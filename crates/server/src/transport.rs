//! Transports binding the daemon's dispatch path to the outside world.
//!
//! Both transports round-trip every request and response through the real
//! frame codec, so the deterministic in-process client exercises exactly
//! the byte path a TCP client does — encode, length-check, decode,
//! dispatch — with no socket nondeterminism in tests.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use crate::daemon::Daemon;
use crate::wire::{
    decode_message, encode_frame, encode_message, FrameDecoder, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// A client whose "connection" is a function call, but whose bytes are
/// real: each request is framed, fed through a [`FrameDecoder`], decoded,
/// dispatched, and the response makes the same round trip back.
pub struct InProcessClient {
    daemon: Daemon,
    inbound: FrameDecoder,
    outbound: FrameDecoder,
}

impl InProcessClient {
    /// Connects to a daemon with the default frame ceiling.
    #[must_use]
    pub fn connect(daemon: Daemon) -> Self {
        InProcessClient {
            daemon,
            inbound: FrameDecoder::new(DEFAULT_MAX_FRAME),
            outbound: FrameDecoder::new(DEFAULT_MAX_FRAME),
        }
    }

    /// Sends one request through the full codec path and returns the
    /// daemon's response. Codec failures surface as [`Response::Error`],
    /// exactly as the TCP transport reports them.
    pub fn request(&mut self, request: &Request) -> Response {
        let frame = match encode_message(request) {
            Ok(frame) => frame,
            Err(e) => return Response::Error { message: e.to_string() },
        };
        self.inbound.push(&frame);
        let response = match self.inbound.next_frame() {
            Ok(Some(payload)) => match decode_message::<Request>(&payload) {
                Ok(req) => self.daemon.handle(req),
                Err(e) => Response::Error { message: e.to_string() },
            },
            Ok(None) => Response::Error { message: "truncated frame".to_owned() },
            Err(e) => Response::Error { message: e.to_string() },
        };
        let reply_frame = match encode_message(&response) {
            Ok(frame) => frame,
            Err(e) => return Response::Error { message: e.to_string() },
        };
        self.outbound.push(&reply_frame);
        match self.outbound.next_frame() {
            Ok(Some(payload)) => match decode_message::<Response>(&payload) {
                Ok(resp) => resp,
                Err(e) => Response::Error { message: e.to_string() },
            },
            Ok(None) => Response::Error { message: "truncated reply frame".to_owned() },
            Err(e) => Response::Error { message: e.to_string() },
        }
    }
}

/// A blocking TCP client speaking the daemon's wire protocol.
pub struct TcpClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl TcpClient {
    /// Connects to a listening daemon.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(TcpClient { stream: TcpStream::connect(addr)?, decoder: FrameDecoder::new(DEFAULT_MAX_FRAME) })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let frame = encode_message(request)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        self.stream.write_all(&frame)?;
        let mut buf = [0u8; 4096];
        loop {
            if let Some(payload) = self
                .decoder
                .next_frame()
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?
            {
                return decode_message::<Response>(&payload)
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }
}

/// Serves the daemon on a TCP listener until [`Request::Shutdown`]
/// arrives (from any connection). One thread per connection; a framing
/// violation gets a typed [`Response::Error`] and the connection is
/// closed, never a crash.
pub fn serve_tcp(daemon: Daemon, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    loop {
        if daemon.shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let daemon = daemon.clone();
                if let Ok(handle) =
                    std::thread::Builder::new().name("trx-conn".to_owned()).spawn(move || {
                        serve_connection(&daemon, stream);
                    })
                {
                    workers.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
    Ok(())
}

fn serve_connection(daemon: &Daemon, mut stream: TcpStream) {
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
    let mut buf = [0u8; 4096];
    loop {
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    let response = match decode_message::<Request>(&payload) {
                        Ok(request) => daemon.handle(request),
                        Err(e) => Response::Error { message: e.to_string() },
                    };
                    if !send_response(&mut stream, &response) {
                        return;
                    }
                    if daemon.shutdown_requested() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing violation (oversized declaration): reply with
                    // the typed error and drop the connection — the decoder
                    // is poisoned by design, resynchronisation is unsafe.
                    let response = Response::Error { message: e.to_string() };
                    send_response(&mut stream, &response);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => decoder.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn send_response(stream: &mut TcpStream, response: &Response) -> bool {
    match encode_message(response) {
        Ok(frame) => stream.write_all(&frame).is_ok(),
        Err(_) => stream.write_all(&encode_frame(b"{}")).is_ok(),
    }
}
