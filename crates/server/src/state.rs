//! Durable cross-job state for the triage daemon.
//!
//! A long-lived daemon should not re-reduce a signature it has already
//! triaged. This module keeps the cross-job knowledge — a signature
//! corpus plus the [`IncrementalDedup`] accumulator that orders the
//! global verdict — alive across jobs *and* across daemon restarts, with
//! the same crash discipline the pipeline WAL established in PR 2:
//!
//! * **Snapshot + append-only WAL.** The folded [`CorpusState`] is
//!   checkpointed to a snapshot file; every job commit appends exactly
//!   one JSON line to the WAL. A crash can tear at most the final WAL
//!   line, which recovery drops — a commit is all-or-nothing because it
//!   is one line.
//! * **Idempotent replay.** Every record carries a sequence number and
//!   the snapshot records how many it has folded in, so a crash between
//!   "write snapshot" and "truncate WAL" (compaction's two steps) never
//!   double-applies a record.
//! * **Repair before append.** A failed append may leave a torn tail;
//!   appending after it would corrupt the *middle* of the log. The store
//!   therefore rewrites the WAL from its parseable prefix before
//!   retrying, the same rewrite-then-append discipline
//!   `run_pipeline_on_file` uses.
//!
//! Storage is abstracted behind [`StateStorage`] so the recovery contract
//! can be proven without a filesystem: [`MemStorage`] models durable
//! versus merely-written bytes (a crash drops the unsynced suffix), and
//! [`FaultyStorage`] injects short writes, torn records, fsync loss and
//! disk-full failures from a seeded [`StorageFaultPlan`] — the
//! `FaultyTarget`/`FaultPlan` idiom applied to the storage layer. The
//! kill-at-every-append and injected-fault matrices in this module's
//! tests (and in the `chaos_state` bench) assert that whatever survives
//! is byte-identical to a golden store fed the same surviving commits.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};
use trx_core::TransformationKind;
use trx_dedup::IncrementalDedup;
use trx_harness::pipeline::KnownSignatures;

/// A typed failure of the durable state layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The storage backend failed an operation.
    Io(String),
    /// A non-final record (or the snapshot) failed to parse — real
    /// corruption, not the footprint of a crash.
    Corrupt {
        /// Which file is corrupt.
        file: StateFile,
        /// The parser's message.
        reason: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io(m) => write!(f, "state storage error: {m}"),
            StateError::Corrupt { file, reason } => {
                write!(f, "state {} is corrupt: {reason}", file.name())
            }
        }
    }
}

impl std::error::Error for StateError {}

/// The two files a state store keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateFile {
    /// The folded-state checkpoint, replaced atomically by compaction.
    Snapshot,
    /// The append-only commit log since the last snapshot.
    Wal,
}

impl StateFile {
    /// Stable file name inside a `state_dir`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StateFile::Snapshot => "state.snapshot.json",
            StateFile::Wal => "state.wal.jsonl",
        }
    }
}

/// The storage operations the store needs, with their durability
/// contracts: `append` must flush-and-sync before reporting success, and
/// `replace` must be atomic (old bytes or new bytes, never a mix).
pub trait StateStorage: Send {
    /// The file's current content, `None` if it does not exist yet.
    fn read(&mut self, file: StateFile) -> Result<Option<Vec<u8>>, StateError>;
    /// Appends `bytes` and makes them durable.
    fn append(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError>;
    /// Atomically replaces the file's whole content.
    fn replace(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError>;
}

/// Real-filesystem storage rooted at a `state_dir`.
///
/// Appends open-write-sync per call (commits are per job, not per probe,
/// so the sync cost is negligible); replace writes a temp file, syncs it,
/// and renames over the target — the only torn state a kill can leave is
/// an invisible temp file.
pub struct DiskStorage {
    dir: PathBuf,
}

impl DiskStorage {
    /// Opens (creating if needed) a state directory.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<DiskStorage, StateError> {
        std::fs::create_dir_all(dir).map_err(|e| StateError::Io(e.to_string()))?;
        Ok(DiskStorage { dir: dir.to_path_buf() })
    }

    fn path(&self, file: StateFile) -> PathBuf {
        self.dir.join(file.name())
    }
}

impl StateStorage for DiskStorage {
    fn read(&mut self, file: StateFile) -> Result<Option<Vec<u8>>, StateError> {
        match std::fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StateError::Io(e.to_string())),
        }
    }

    fn append(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        use std::io::Write;
        let io = |e: std::io::Error| StateError::Io(e.to_string());
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(file))
            .map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_data().map_err(io)
    }

    fn replace(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        use std::io::Write;
        let io = |e: std::io::Error| StateError::Io(e.to_string());
        let tmp = self.dir.join(format!("{}.tmp", file.name()));
        {
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(bytes).map_err(io)?;
            f.sync_data().map_err(io)?;
        }
        std::fs::rename(&tmp, self.path(file)).map_err(io)?;
        // Make the rename itself durable; best-effort (some filesystems
        // refuse to open directories).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[derive(Default)]
struct MemFile {
    /// The file content as the running process sees it (reads and
    /// subsequent appends), including not-yet-synced bytes.
    bytes: Vec<u8>,
    /// How much of `bytes` has reached "disk": a simulated crash
    /// truncates to this length.
    durable: usize,
}

/// In-memory storage with an explicit durability line per file.
///
/// Cloning shares the underlying files, so a test can keep a handle,
/// drop the store ("kill the process"), call [`MemStorage::crash`] to
/// discard unsynced bytes, and open a new store over the same handle
/// ("restart").
#[derive(Clone, Default)]
pub struct MemStorage {
    files: Arc<Mutex<BTreeMap<&'static str, MemFile>>>,
}

impl MemStorage {
    /// Empty storage.
    #[must_use]
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<&'static str, MemFile>) -> R) -> R {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut files)
    }

    /// Simulates a process kill: every byte past each file's durability
    /// line is lost.
    pub fn crash(&self) {
        self.with(|files| {
            for file in files.values_mut() {
                file.bytes.truncate(file.durable);
                file.durable = file.bytes.len();
            }
        });
    }

    /// The raw current content of `file` (tests cut and corrupt this).
    #[must_use]
    pub fn raw(&self, file: StateFile) -> Vec<u8> {
        self.with(|files| files.get(file.name()).map(|f| f.bytes.clone()).unwrap_or_default())
    }

    /// Overwrites `file` with `bytes`, fully durable (tests simulate
    /// arbitrary on-disk states with this).
    pub fn set_raw(&self, file: StateFile, bytes: Vec<u8>) {
        self.with(|files| {
            let f = files.entry(file.name()).or_default();
            f.durable = bytes.len();
            f.bytes = bytes;
        });
    }
}

impl StateStorage for MemStorage {
    fn read(&mut self, file: StateFile) -> Result<Option<Vec<u8>>, StateError> {
        Ok(self.with(|files| files.get(file.name()).map(|f| f.bytes.clone())))
    }

    fn append(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        self.with(|files| {
            let f = files.entry(file.name()).or_default();
            f.bytes.extend_from_slice(bytes);
            // A clean append syncs, which makes everything written so far
            // durable — fsync covers the whole file, not just this write.
            f.durable = f.bytes.len();
        });
        Ok(())
    }

    fn replace(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        self.with(|files| {
            let f = files.entry(file.name()).or_default();
            f.bytes = bytes.to_vec();
            f.durable = f.bytes.len();
        });
        Ok(())
    }
}

impl MemStorage {
    fn append_unsynced(&self, file: StateFile, bytes: &[u8]) {
        self.with(|files| {
            let f = files.entry(file.name()).or_default();
            f.bytes.extend_from_slice(bytes);
        });
    }

    fn append_torn(&self, file: StateFile, bytes: &[u8]) {
        self.with(|files| {
            let f = files.entry(file.name()).or_default();
            f.bytes.extend_from_slice(bytes);
            // The prefix hit the platter before the crash.
            f.durable = f.bytes.len();
        });
    }
}

/// The kinds of storage fault [`FaultyStorage`] injects on appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageFault {
    /// Only a prefix of the record was written; the call reports an
    /// error. The tail is torn until repaired.
    ShortWrite,
    /// The process dies mid-append: a prefix is durable, and every later
    /// operation fails until the storage is reopened after a crash.
    TornRecord,
    /// The call reports success but the bytes never reach the platter —
    /// they vanish at the next crash.
    SyncLoss,
    /// Nothing is written and the call reports an error.
    DiskFull,
}

/// A deterministic, seeded schedule of storage faults — `FaultPlan` for
/// the storage layer. Each append draws one uniform value from
/// `mix(seed, op_index)`; cumulative probability thresholds pick the
/// fault, so the same plan over the same operation sequence always
/// faults identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    /// Seed decorrelating this plan from others.
    pub seed: u64,
    /// Probability of [`StorageFault::ShortWrite`] per append.
    pub short_write_probability: f64,
    /// Probability of [`StorageFault::TornRecord`] per append.
    pub torn_record_probability: f64,
    /// Probability of [`StorageFault::SyncLoss`] per append.
    pub sync_loss_probability: f64,
    /// Probability of [`StorageFault::DiskFull`] per append (also applied
    /// to `replace`).
    pub disk_full_probability: f64,
}

impl StorageFaultPlan {
    /// A plan that never faults.
    #[must_use]
    pub fn none(seed: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed,
            short_write_probability: 0.0,
            torn_record_probability: 0.0,
            sync_loss_probability: 0.0,
            disk_full_probability: 0.0,
        }
    }

    /// The fault (if any) for operation number `op`.
    #[must_use]
    pub fn fault_for(&self, op: u64) -> Option<StorageFault> {
        let draw = uniform(mix(self.seed ^ 0x9e37_79b9_7f4a_7c15, op));
        let mut threshold = self.short_write_probability;
        if draw < threshold {
            return Some(StorageFault::ShortWrite);
        }
        threshold += self.torn_record_probability;
        if draw < threshold {
            return Some(StorageFault::TornRecord);
        }
        threshold += self.sync_loss_probability;
        if draw < threshold {
            return Some(StorageFault::SyncLoss);
        }
        threshold += self.disk_full_probability;
        if draw < threshold {
            return Some(StorageFault::DiskFull);
        }
        None
    }

    /// Where the injected tear cuts a record of `len` bytes: somewhere
    /// strictly inside it (deterministic per operation).
    #[must_use]
    pub fn cut_for(&self, op: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        (mix(self.seed ^ 0x1357_9bdf_2468_ace0, op) as usize) % (len - 1)
    }
}

/// SplitMix64-style mixer (the `FaultPlan` idiom).
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed.wrapping_add(value.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed value to `[0, 1)` with 53 bits of precision.
fn uniform(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// [`MemStorage`] wrapped in a seeded fault injector.
pub struct FaultyStorage {
    inner: MemStorage,
    plan: StorageFaultPlan,
    ops: u64,
    crashed: bool,
    faults: Vec<(u64, StorageFault)>,
}

impl FaultyStorage {
    /// Wraps `inner` with `plan`.
    #[must_use]
    pub fn new(inner: MemStorage, plan: StorageFaultPlan) -> FaultyStorage {
        FaultyStorage { inner, plan, ops: 0, crashed: false, faults: Vec::new() }
    }

    /// Whether an injected [`StorageFault::TornRecord`] has "killed the
    /// process": every further operation fails until reopened.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The faults injected so far, as `(operation index, fault)`.
    #[must_use]
    pub fn faults(&self) -> &[(u64, StorageFault)] {
        &self.faults
    }

    /// A handle to the underlying storage (for crash-and-reopen tests).
    #[must_use]
    pub fn storage(&self) -> MemStorage {
        self.inner.clone()
    }
}

impl StateStorage for FaultyStorage {
    fn read(&mut self, file: StateFile) -> Result<Option<Vec<u8>>, StateError> {
        if self.crashed {
            return Err(StateError::Io("simulated crash".to_owned()));
        }
        self.inner.read(file)
    }

    fn append(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        if self.crashed {
            return Err(StateError::Io("simulated crash".to_owned()));
        }
        let op = self.ops;
        self.ops += 1;
        match self.plan.fault_for(op) {
            None => self.inner.append(file, bytes),
            Some(StorageFault::ShortWrite) => {
                self.faults.push((op, StorageFault::ShortWrite));
                let cut = self.plan.cut_for(op, bytes.len());
                self.inner.append_unsynced(file, &bytes[..cut]);
                Err(StateError::Io("short write (injected)".to_owned()))
            }
            Some(StorageFault::TornRecord) => {
                self.faults.push((op, StorageFault::TornRecord));
                let cut = self.plan.cut_for(op, bytes.len());
                self.inner.append_torn(file, &bytes[..cut]);
                self.crashed = true;
                Err(StateError::Io("simulated crash during append".to_owned()))
            }
            Some(StorageFault::SyncLoss) => {
                self.faults.push((op, StorageFault::SyncLoss));
                self.inner.append_unsynced(file, bytes);
                Ok(())
            }
            Some(StorageFault::DiskFull) => {
                self.faults.push((op, StorageFault::DiskFull));
                Err(StateError::Io("disk full (injected)".to_owned()))
            }
        }
    }

    fn replace(&mut self, file: StateFile, bytes: &[u8]) -> Result<(), StateError> {
        if self.crashed {
            return Err(StateError::Io("simulated crash".to_owned()));
        }
        let op = self.ops;
        self.ops += 1;
        if matches!(self.plan.fault_for(op), Some(StorageFault::DiskFull)) {
            self.faults.push((op, StorageFault::DiskFull));
            return Err(StateError::Io("disk full (injected)".to_owned()));
        }
        // Replace is tmp-write-then-rename underneath: it either lands
        // whole or not at all, so only disk-full applies.
        self.inner.replace(file, bytes)
    }
}

/// What the store knows about one signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureEntry {
    /// Interesting transformation kinds of the reduced sequence — the
    /// dedup key (§3.5).
    pub kinds: BTreeSet<TransformationKind>,
    /// Job that first reduced this signature.
    pub first_job: u64,
    /// Length of that job's reduced sequence.
    pub reduced_length: usize,
}

/// One signature a job contributed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NovelSignature {
    /// The cross-job signature key
    /// ([`trx_harness::pipeline::signature_key`]).
    pub key: String,
    /// What the job learned about it.
    pub entry: SignatureEntry,
}

/// One WAL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum StateRecord {
    /// A completed job committed its novel signatures, atomically.
    Committed {
        /// Monotonic record number (snapshot idempotence key).
        seq: u64,
        /// The committing job's id.
        job: u64,
        /// The signatures it reduced that the store did not yet know.
        novel: Vec<NovelSignature>,
    },
}

/// The folded store state. Byte-identical canonical JSON is the
/// equivalence currency of every recovery matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusState {
    /// WAL records folded in so far (snapshot idempotence bound).
    pub applied: u64,
    /// Jobs that contributed at least one novel signature.
    pub jobs_committed: u64,
    /// Everything ever reduced, by signature key.
    pub signatures: BTreeMap<String, SignatureEntry>,
    /// Signature keys in dedup arrival (commit) order — index `i` is the
    /// dedup accumulator's arrival `i`.
    pub arrivals: Vec<String>,
    /// The global Figure 6 accumulator over all committed signatures.
    pub dedup: IncrementalDedup,
}

/// What recovery found while opening a store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// Records already folded into the snapshot.
    pub snapshot_applied: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Whether a torn final WAL line was dropped (and repaired).
    pub torn_tail_dropped: bool,
}

/// Cumulative store health counters (monotonic over the store's life in
/// this process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Commits durably appended.
    pub commits: u64,
    /// Commits that failed even after tail repair and retry.
    pub commit_failures: u64,
    /// Successful snapshot-and-truncate compactions.
    pub compactions: u64,
    /// Compactions that failed (snapshot or truncate step).
    pub compaction_failures: u64,
}

/// The outcome of one [`StateStore::commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Novel signatures durably recorded (0 = the job was fully known and
    /// no WAL record was written).
    pub novel: usize,
    /// Whether this commit triggered a successful compaction.
    pub compacted: bool,
}

/// The crash-safe signature store: snapshot + WAL over a
/// [`StateStorage`], with explicit compaction.
pub struct StateStore {
    storage: Box<dyn StateStorage>,
    state: CorpusState,
    /// Valid records currently in the WAL file (compaction trigger).
    wal_records: usize,
    snapshot_every: usize,
    recovery: RecoveryInfo,
    counters: StoreCounters,
    /// A failed append may have left a torn tail that repair could not
    /// clean (the repair write itself failed). While set, no append may
    /// land — it would corrupt the *middle* of the log.
    tail_dirty: bool,
}

impl StateStore {
    /// Opens (recovering if needed) a store over `storage`.
    /// `snapshot_every` is the WAL record count that triggers automatic
    /// compaction after a commit; 0 compacts only on explicit
    /// [`StateStore::compact`] calls.
    ///
    /// Recovery loads the snapshot, replays every WAL record past the
    /// snapshot's `applied` bound, drops (and repairs) a torn final line,
    /// and rejects corruption anywhere else.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] from the backend, [`StateError::Corrupt`] for a
    /// snapshot or non-final WAL record that does not parse, or a WAL
    /// sequence gap.
    pub fn open(
        mut storage: Box<dyn StateStorage>,
        snapshot_every: usize,
    ) -> Result<StateStore, StateError> {
        let state = match storage.read(StateFile::Snapshot)? {
            None => CorpusState::default(),
            Some(bytes) if bytes.is_empty() => CorpusState::default(),
            Some(bytes) => {
                let text = std::str::from_utf8(&bytes).map_err(|e| StateError::Corrupt {
                    file: StateFile::Snapshot,
                    reason: e.to_string(),
                })?;
                serde_json::from_str(text).map_err(|e| StateError::Corrupt {
                    file: StateFile::Snapshot,
                    reason: e.to_string(),
                })?
            }
        };
        let mut store = StateStore {
            storage,
            state,
            wal_records: 0,
            snapshot_every,
            recovery: RecoveryInfo::default(),
            counters: StoreCounters::default(),
            tail_dirty: false,
        };
        store.recovery.snapshot_applied = store.state.applied;
        store.replay_wal()?;
        Ok(store)
    }

    fn replay_wal(&mut self) -> Result<(), StateError> {
        let bytes = self.storage.read(StateFile::Wal)?.unwrap_or_default();
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.lines().collect();
        let mut valid: Vec<&str> = Vec::new();
        let mut torn = false;
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<StateRecord>(line) {
                Ok(record) => {
                    let StateRecord::Committed { seq, .. } = &record;
                    if *seq <= self.state.applied {
                        // Pre-snapshot leftovers: compaction crashed
                        // between snapshot and truncate. Skip, idempotent.
                    } else if *seq == self.state.applied + 1 {
                        self.apply(record.clone());
                        self.recovery.wal_records_replayed += 1;
                    } else {
                        return Err(StateError::Corrupt {
                            file: StateFile::Wal,
                            reason: format!(
                                "sequence gap: record {seq} after applied {}",
                                self.state.applied
                            ),
                        });
                    }
                    valid.push(line);
                }
                Err(_) if i + 1 == lines.len() => {
                    torn = true;
                    break;
                }
                Err(e) => {
                    return Err(StateError::Corrupt {
                        file: StateFile::Wal,
                        reason: format!("record {}: {e}", i + 1),
                    });
                }
            }
        }
        self.wal_records = valid.len();
        if torn {
            // Repair now: appending after a torn tail would corrupt the
            // middle of the log.
            let mut clean = String::with_capacity(bytes.len());
            for line in &valid {
                clean.push_str(line);
                clean.push('\n');
            }
            self.storage.replace(StateFile::Wal, clean.as_bytes())?;
            self.recovery.torn_tail_dropped = true;
        }
        Ok(())
    }

    fn apply(&mut self, record: StateRecord) {
        let StateRecord::Committed { seq, novel, .. } = record;
        for sig in novel {
            self.state.dedup.observe(sig.entry.kinds.clone());
            self.state.arrivals.push(sig.key.clone());
            self.state.signatures.insert(sig.key, sig.entry);
        }
        self.state.applied = seq;
        self.state.jobs_committed += 1;
    }

    /// What recovery found at open time.
    #[must_use]
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Health counters.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The folded state (read-only).
    #[must_use]
    pub fn state(&self) -> &CorpusState {
        &self.state
    }

    /// Signatures known so far, in the map shape
    /// [`trx_harness::pipeline::run_pipeline_with_known`] consumes.
    #[must_use]
    pub fn known(&self) -> KnownSignatures {
        self.state
            .signatures
            .iter()
            .map(|(key, entry)| (key.clone(), entry.kinds.clone()))
            .collect()
    }

    /// What the store knows about `key`.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<&SignatureEntry> {
        self.state.signatures.get(key)
    }

    /// The global dedup verdict over every committed signature: the kept
    /// signature keys, in Figure 6 selection order.
    #[must_use]
    pub fn verdict(&self) -> Vec<String> {
        self.state
            .dedup
            .recommend()
            .into_iter()
            .filter_map(|arrival| self.state.arrivals.get(arrival).cloned())
            .collect()
    }

    /// Canonical pretty JSON of the folded state — the byte-equivalence
    /// artifact of every recovery matrix. Independent of how the state is
    /// split between snapshot and WAL.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] if serialisation fails (it cannot for states
    /// this store builds).
    pub fn canonical_json(&self) -> Result<String, StateError> {
        serde_json::to_string_pretty(&self.state).map_err(|e| StateError::Io(e.to_string()))
    }

    /// Commits a completed job's novel signatures in one atomic WAL
    /// record. Signatures the store already knows are skipped (first
    /// writer wins); if nothing is novel, nothing is written and the
    /// store is unchanged.
    ///
    /// On an append failure the tail is repaired (rewritten from its
    /// parseable prefix) and the append retried once; only then does the
    /// commit fail — and a failed commit leaves the in-memory state
    /// untouched, so memory never runs ahead of what recovery can
    /// rebuild, except through an (acknowledged-lost) fsync.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] when the backend refuses both attempts,
    /// [`StateError::Corrupt`] if repair finds mid-log corruption.
    pub fn commit(
        &mut self,
        job: u64,
        novel: Vec<NovelSignature>,
    ) -> Result<CommitOutcome, StateError> {
        let fresh: Vec<NovelSignature> = novel
            .into_iter()
            .filter(|sig| !self.state.signatures.contains_key(&sig.key))
            .collect();
        if fresh.is_empty() {
            return Ok(CommitOutcome { novel: 0, compacted: false });
        }
        let record =
            StateRecord::Committed { seq: self.state.applied + 1, job, novel: fresh };
        let mut line = serde_json::to_string(&record)
            .map_err(|e| StateError::Io(e.to_string()))?;
        line.push('\n');
        if let Err(e) = self.append_clean(line.as_bytes()) {
            self.counters.commit_failures += 1;
            return Err(e);
        }
        let StateRecord::Committed { novel: fresh, .. } = &record;
        let novel_count = fresh.len();
        self.apply(record);
        self.wal_records += 1;
        self.counters.commits += 1;
        let mut compacted = false;
        if self.snapshot_every > 0 && self.wal_records >= self.snapshot_every {
            // The commit above is already durable; a failed compaction
            // must not fail it.
            match self.compact() {
                Ok(()) => compacted = true,
                Err(_) => self.counters.compaction_failures += 1,
            }
        }
        Ok(CommitOutcome { novel: novel_count, compacted })
    }

    /// Appends one record line, guaranteeing it never lands after an
    /// unrepaired torn tail: a dirty tail is repaired first, a failed
    /// append marks the tail dirty, repairs, and retries exactly once.
    fn append_clean(&mut self, line: &[u8]) -> Result<(), StateError> {
        if self.tail_dirty {
            self.repair_tail()?; // still dirty if this fails
            self.tail_dirty = false;
        }
        if self.storage.append(StateFile::Wal, line).is_ok() {
            return Ok(());
        }
        self.tail_dirty = true;
        self.repair_tail()?;
        self.tail_dirty = false;
        self.storage.append(StateFile::Wal, line).inspect_err(|_| {
            self.tail_dirty = true;
            // Leave the tail clean for the next caller when possible.
            if self.repair_tail().is_ok() {
                self.tail_dirty = false;
            }
        })
    }

    /// Rewrites the WAL from its parseable prefix, dropping a torn tail.
    fn repair_tail(&mut self) -> Result<(), StateError> {
        let bytes = self.storage.read(StateFile::Wal)?.unwrap_or_default();
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.lines().collect();
        let mut clean = String::with_capacity(bytes.len());
        for (i, line) in lines.iter().enumerate() {
            if serde_json::from_str::<StateRecord>(line).is_ok() {
                clean.push_str(line);
                clean.push('\n');
            } else if i + 1 == lines.len() {
                break;
            } else {
                return Err(StateError::Corrupt {
                    file: StateFile::Wal,
                    reason: format!("record {} unparseable during repair", i + 1),
                });
            }
        }
        self.storage.replace(StateFile::Wal, clean.as_bytes())
    }

    /// Checkpoints the folded state into the snapshot and truncates the
    /// WAL. Crash-safe in both halves: the snapshot lands atomically, and
    /// a crash before the truncate leaves only already-applied records,
    /// which recovery skips by sequence number.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] if either step fails. When the snapshot step
    /// succeeded, the store still counts the WAL as logically empty —
    /// its leftover records are dead weight recovery ignores.
    pub fn compact(&mut self) -> Result<(), StateError> {
        let json = self.canonical_json()?;
        self.storage.replace(StateFile::Snapshot, json.as_bytes())?;
        // Past this point the WAL's records are all <= applied: dead.
        self.wal_records = 0;
        self.storage.replace(StateFile::Wal, b"")?;
        self.tail_dirty = false;
        self.counters.compactions += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(picks: &[TransformationKind]) -> BTreeSet<TransformationKind> {
        picks.iter().copied().collect()
    }

    /// A deterministic synthetic commit stream: job `j` contributes one
    /// or two signatures drawn from a small kind pool, with every third
    /// job repeating an earlier signature (which the store must skip).
    fn commit_stream(jobs: u64) -> Vec<(u64, Vec<NovelSignature>)> {
        use TransformationKind as K;
        let pool = [
            K::AddDeadBlock,
            K::CopyObject,
            K::AddLoad,
            K::AddStore,
            K::MoveBlockDown,
            K::InlineFunction,
        ];
        (0..jobs)
            .map(|j| {
                let a = pool[(j as usize) % pool.len()];
                let b = pool[(j as usize * 5 + 2) % pool.len()];
                let mut novel = vec![NovelSignature {
                    key: format!("target-{}|crash: sig-{j}", j % 3),
                    entry: SignatureEntry {
                        kinds: kinds(&[a, b]),
                        first_job: j,
                        reduced_length: 1 + (j as usize % 4),
                    },
                }];
                if j % 3 == 2 {
                    // Repeat an earlier job's signature: must be skipped.
                    novel.push(NovelSignature {
                        key: format!("target-{}|crash: sig-{}", (j - 1) % 3, j - 1),
                        entry: SignatureEntry {
                            kinds: kinds(&[a]),
                            first_job: j,
                            reduced_length: 9,
                        },
                    });
                }
                (j, novel)
            })
            .collect()
    }

    /// Golden fingerprints: canonical JSON after each prefix of commits,
    /// built on fault-free storage.
    fn golden_fingerprints(stream: &[(u64, Vec<NovelSignature>)]) -> Vec<String> {
        let mut store =
            StateStore::open(Box::new(MemStorage::new()), 0).expect("open clean");
        let mut prints = vec![store.canonical_json().expect("fingerprint")];
        for (job, novel) in stream {
            store.commit(*job, novel.clone()).expect("clean commit");
            prints.push(store.canonical_json().expect("fingerprint"));
        }
        prints
    }

    #[test]
    fn commit_lookup_and_verdict_round_trip() {
        let stream = commit_stream(6);
        let mem = MemStorage::new();
        let mut store = StateStore::open(Box::new(mem.clone()), 0).expect("open");
        for (job, novel) in &stream {
            store.commit(*job, novel.clone()).expect("commit");
        }
        assert_eq!(store.state().jobs_committed, 6);
        assert!(store.lookup("target-0|crash: sig-0").is_some());
        assert!(store.lookup("missing").is_none());
        // First writer wins: job 2's repeat of job 1's key kept job 1's entry.
        assert_eq!(store.lookup("target-1|crash: sig-1").unwrap().first_job, 1);
        let verdict = store.verdict();
        assert!(!verdict.is_empty());
        for key in &verdict {
            assert!(store.lookup(key).is_some());
        }
        // Reopen without a crash: identical bytes.
        let print = store.canonical_json().unwrap();
        drop(store);
        let reopened = StateStore::open(Box::new(mem), 0).expect("reopen");
        assert_eq!(reopened.canonical_json().unwrap(), print);
        assert_eq!(reopened.recovery().wal_records_replayed, 6);
    }

    #[test]
    fn kill_after_every_commit_recovers_byte_identically() {
        let stream = commit_stream(8);
        let golden = golden_fingerprints(&stream);
        for k in 0..=stream.len() {
            let mem = MemStorage::new();
            let mut store = StateStore::open(Box::new(mem.clone()), 0).expect("open");
            for (job, novel) in &stream[..k] {
                store.commit(*job, novel.clone()).expect("commit");
            }
            drop(store); // kill
            mem.crash();
            let recovered = StateStore::open(Box::new(mem), 0).expect("recover");
            assert_eq!(
                recovered.canonical_json().unwrap(),
                golden[k],
                "state diverged recovering after commit {k}"
            );
        }
    }

    #[test]
    fn truncating_the_wal_at_every_byte_recovers_a_golden_prefix() {
        let stream = commit_stream(5);
        let golden = golden_fingerprints(&stream);
        let mem = MemStorage::new();
        let mut store = StateStore::open(Box::new(mem.clone()), 0).expect("open");
        for (job, novel) in &stream {
            store.commit(*job, novel.clone()).expect("commit");
        }
        drop(store);
        let wal = mem.raw(StateFile::Wal);
        for cut in 0..=wal.len() {
            let torn = MemStorage::new();
            torn.set_raw(StateFile::Wal, wal[..cut].to_vec());
            let recovered =
                StateStore::open(Box::new(torn.clone()), 0).expect("recover from cut");
            let fingerprint = recovered.canonical_json().unwrap();
            let records = recovered.state().jobs_committed as usize;
            assert_eq!(
                fingerprint, golden[records],
                "cut at byte {cut} is not a golden prefix"
            );
            // The repaired WAL is clean: reopening changes nothing.
            drop(recovered);
            let again = StateStore::open(Box::new(torn), 0).expect("reopen repaired");
            assert_eq!(again.canonical_json().unwrap(), fingerprint);
        }
    }

    #[test]
    fn compaction_preserves_state_and_survives_mid_compaction_crash() {
        let stream = commit_stream(7);
        let golden = golden_fingerprints(&stream);

        // Auto-compaction every 2 records: state identical to never
        // compacting.
        let mem = MemStorage::new();
        let mut store = StateStore::open(Box::new(mem.clone()), 2).expect("open");
        let mut compactions = 0;
        for (job, novel) in &stream {
            if store.commit(*job, novel.clone()).expect("commit").compacted {
                compactions += 1;
            }
        }
        assert!(compactions >= 2, "snapshot_every=2 over 7 commits must compact");
        assert_eq!(store.canonical_json().unwrap(), golden[stream.len()]);
        drop(store);
        mem.crash();
        let recovered = StateStore::open(Box::new(mem), 2).expect("recover");
        assert_eq!(recovered.canonical_json().unwrap(), golden[stream.len()]);

        // Crash between snapshot and truncate: WAL still holds applied
        // records; recovery must skip them by sequence number.
        let mem = MemStorage::new();
        let mut store = StateStore::open(Box::new(mem.clone()), 0).expect("open");
        for (job, novel) in &stream[..4] {
            store.commit(*job, novel.clone()).expect("commit");
        }
        let snapshot = store.canonical_json().unwrap();
        let wal_before = mem.raw(StateFile::Wal);
        drop(store);
        mem.set_raw(StateFile::Snapshot, snapshot.into_bytes());
        mem.set_raw(StateFile::Wal, wal_before); // truncate never happened
        let mut recovered = StateStore::open(Box::new(mem.clone()), 0).expect("recover");
        assert_eq!(recovered.canonical_json().unwrap(), golden[4]);
        assert_eq!(recovered.recovery().wal_records_replayed, 0, "all were in the snapshot");
        // And the store keeps working past the leftovers.
        for (job, novel) in &stream[4..] {
            recovered.commit(*job, novel.clone()).expect("commit after recovery");
        }
        assert_eq!(recovered.canonical_json().unwrap(), golden[stream.len()]);
    }

    #[test]
    fn injected_fault_matrix_recovers_a_golden_prefix() {
        let stream = commit_stream(10);
        let golden = golden_fingerprints(&stream);
        let plans = [
            ("short-write", StorageFaultPlan {
                short_write_probability: 0.3,
                ..StorageFaultPlan::none(11)
            }),
            ("torn-record", StorageFaultPlan {
                torn_record_probability: 0.25,
                ..StorageFaultPlan::none(12)
            }),
            ("sync-loss", StorageFaultPlan {
                sync_loss_probability: 0.3,
                ..StorageFaultPlan::none(13)
            }),
            ("disk-full", StorageFaultPlan {
                disk_full_probability: 0.3,
                ..StorageFaultPlan::none(14)
            }),
            ("chaos-mix", StorageFaultPlan {
                seed: 15,
                short_write_probability: 0.1,
                torn_record_probability: 0.1,
                sync_loss_probability: 0.1,
                disk_full_probability: 0.1,
            }),
        ];
        // golden[] is unused here directly: with per-commit failures the
        // surviving state is a prefix of the *acknowledged* commits, so
        // the oracle replays exactly those on clean storage.
        let _ = golden;
        for (name, plan) in plans {
            for seed_shift in 0..6u64 {
                let plan =
                    StorageFaultPlan { seed: plan.seed + 100 * seed_shift, ..plan.clone() };
                // Acked commits may silently miss durability only when the
                // plan can lose acknowledged bytes.
                let lossy_acks =
                    plan.sync_loss_probability > 0.0 || plan.torn_record_probability > 0.0;
                let faulty = FaultyStorage::new(MemStorage::new(), plan.clone());
                let mem = faulty.storage();
                let mut store = StateStore::open(Box::new(faulty), 0).expect("open");
                let mut acked: Vec<(u64, Vec<NovelSignature>)> = Vec::new();
                for (job, novel) in &stream {
                    if store.commit(*job, novel.clone()).is_ok() {
                        acked.push((*job, novel.clone()));
                    }
                }
                drop(store);
                mem.crash();
                let recovered =
                    StateStore::open(Box::new(mem), 0).expect("recover after faults");
                let records = recovered.state().jobs_committed as usize;
                assert!(
                    records <= acked.len(),
                    "plan {name} seed-shift {seed_shift}: recovered more commits than \
                     were acknowledged"
                );
                // The oracle: a clean store fed the first `records` acked
                // commits must be byte-identical.
                let oracle_fingerprints = golden_fingerprints(&acked[..records]);
                assert_eq!(
                    recovered.canonical_json().unwrap(),
                    oracle_fingerprints[records],
                    "plan {name} seed-shift {seed_shift}: not a prefix of the \
                     acknowledged commits"
                );
                if !lossy_acks {
                    assert_eq!(
                        records,
                        acked.len(),
                        "plan {name} seed-shift {seed_shift}: an acknowledged durable \
                         commit was lost"
                    );
                }
            }
        }
    }

    #[test]
    fn torn_record_crash_recovers_and_resumes() {
        // Force a torn record on the 3rd append, crash, reopen, recommit
        // the lost suffix: final state is golden.
        let stream = commit_stream(6);
        let golden = golden_fingerprints(&stream);
        // Find a seed whose first fault is TornRecord within the stream.
        let mut chosen = None;
        for seed in 0..1000 {
            let candidate = StorageFaultPlan {
                torn_record_probability: 0.3,
                ..StorageFaultPlan::none(seed)
            };
            let first = (0..stream.len() as u64).find(|op| candidate.fault_for(*op).is_some());
            if let Some(op) = first {
                if op >= 1 && (op as usize) < stream.len() - 1 {
                    chosen = Some((candidate, op as usize));
                    break;
                }
            }
        }
        let (plan, fault_at) = chosen.expect("a seed with a mid-stream torn record");

        let faulty = FaultyStorage::new(MemStorage::new(), plan);
        let mem = faulty.storage();
        let mut store = StateStore::open(Box::new(faulty), 0).expect("open");
        let mut committed = 0usize;
        for (job, novel) in &stream {
            match store.commit(*job, novel.clone()) {
                Ok(_) => committed += 1,
                Err(_) => break, // the torn record "killed the process"
            }
        }
        assert_eq!(committed, fault_at);
        drop(store);
        mem.crash();
        let mut recovered = StateStore::open(Box::new(mem), 0).expect("recover");
        assert_eq!(recovered.canonical_json().unwrap(), golden[committed]);
        for (job, novel) in &stream[committed..] {
            recovered.commit(*job, novel.clone()).expect("recommit");
        }
        assert_eq!(recovered.canonical_json().unwrap(), golden[stream.len()]);
    }

    #[test]
    fn disk_storage_round_trips_through_a_real_directory() {
        let dir = std::env::temp_dir()
            .join(format!("trx-state-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stream = commit_stream(4);
        let golden = golden_fingerprints(&stream);
        {
            let disk = DiskStorage::open(&dir).expect("create state dir");
            let mut store = StateStore::open(Box::new(disk), 2).expect("open");
            for (job, novel) in &stream {
                store.commit(*job, novel.clone()).expect("commit");
            }
            assert_eq!(store.canonical_json().unwrap(), golden[stream.len()]);
        }
        // "Restart": a new store over the same directory.
        let disk = DiskStorage::open(&dir).expect("reopen state dir");
        let store = StateStore::open(Box::new(disk), 2).expect("recover");
        assert_eq!(store.canonical_json().unwrap(), golden[stream.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error_not_a_panic() {
        let stream = commit_stream(4);
        let mem = MemStorage::new();
        let mut store = StateStore::open(Box::new(mem.clone()), 0).expect("open");
        for (job, novel) in &stream {
            store.commit(*job, novel.clone()).expect("commit");
        }
        drop(store);
        let mut wal = mem.raw(StateFile::Wal);
        // Corrupt a byte inside the second record (not the final line).
        let second_line_start =
            wal.iter().position(|&b| b == b'\n').expect("one line") + 1;
        wal[second_line_start + 3] = b'!';
        mem.set_raw(StateFile::Wal, wal);
        match StateStore::open(Box::new(mem), 0) {
            Err(StateError::Corrupt { file: StateFile::Wal, .. }) => {}
            Err(other) => panic!("expected WAL corruption error, got {other:?}"),
            Ok(_) => panic!("expected WAL corruption error, got a clean store"),
        }
    }
}
