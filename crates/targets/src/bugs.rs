//! Injected bugs: crash bugs with distinct signatures and miscompilation
//! bugs realised as wrong-but-valid rewrites.

use serde::{Deserialize, Serialize};

use trx_ir::validate::validate;
use trx_ir::{BinOp, Module, Op, Terminator};

use crate::passes::PassKind;
use crate::triggers::Trigger;

/// Identifies one injected bug (one *root cause*). Ground truth for the
/// deduplication experiment (Table 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BugId(pub String);

impl BugId {
    /// Creates a bug id.
    #[must_use]
    pub fn new(name: &str) -> Self {
        BugId(name.to_owned())
    }
}

impl std::fmt::Display for BugId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A wrong-but-valid rewrite applied when a miscompilation bug fires.
///
/// Every mutation keeps the module valid (it self-checks with the validator
/// and becomes a no-op otherwise), so the only observable symptom is a wrong
/// result — exactly how real miscompilations present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Miscompilation {
    /// Flip the first `SLessThan` feeding a conditional branch into
    /// `SLessThanEqual` (or vice versa): the Figure 8a off-by-one, which in
    /// Mesa "caused the last loop iteration to be skipped".
    OffByOneComparison,
    /// Swap the targets of the first conditional branch found.
    SwapBranchTargets,
    /// Delete the syntactically last store in the entry function.
    DropLastStore,
    /// Rewrite the first `OpSelect` into a copy of its false-arm.
    FoldSelectWrongArm,
    /// Replace the first non-trivial `IMul` with a copy of its left
    /// operand (as if folding `x * k` to `x`).
    DropMultiplication,
    /// Replace the first `OpKill` in the entry function with `OpReturn`
    /// (the fragment is no longer discarded).
    IgnoreKill,
    /// Swap the values of the first two incomings of the first phi with
    /// distinct values (wrong value flows along each edge).
    CrossPhiValues,
}

impl Miscompilation {
    /// Applies the mutation. Returns `true` if the module changed (the
    /// mutation found its shape and the result stayed valid).
    pub fn apply(self, module: &mut Module) -> bool {
        let backup = module.clone();
        let changed = self.apply_inner(module);
        if changed && validate(module).is_err() {
            *module = backup;
            return false;
        }
        changed
    }

    #[allow(clippy::too_many_lines)]
    fn apply_inner(self, module: &mut Module) -> bool {
        match self {
            Miscompilation::OffByOneComparison => {
                let mut flipped = false;
                for function in &mut module.functions {
                    // Conditions used by conditional branches, traced
                    // through phis (the buggy pass consistently rewrites
                    // every comparison feeding a branch).
                    let mut conds: Vec<trx_ir::Id> = function
                        .blocks
                        .iter()
                        .filter_map(|b| match &b.terminator {
                            Terminator::BranchConditional { cond, .. } => Some(*cond),
                            _ => None,
                        })
                        .collect();
                    loop {
                        let mut grew = false;
                        for block in &function.blocks {
                            for inst in &block.instructions {
                                let (Some(result), Op::Phi { incoming }) =
                                    (inst.result, &inst.op)
                                else {
                                    continue;
                                };
                                if !conds.contains(&result) {
                                    continue;
                                }
                                for (value, _) in incoming {
                                    if !conds.contains(value) {
                                        conds.push(*value);
                                        grew = true;
                                    }
                                }
                            }
                        }
                        if !grew {
                            break;
                        }
                    }
                    for block in &mut function.blocks {
                        for inst in &mut block.instructions {
                            if let (Some(result), Op::Binary { op, .. }) =
                                (inst.result, &mut inst.op)
                            {
                                if !conds.contains(&result) {
                                    continue;
                                }
                                match op {
                                    BinOp::SLessThan => {
                                        *op = BinOp::SLessThanEqual;
                                        flipped = true;
                                    }
                                    BinOp::SLessThanEqual => {
                                        *op = BinOp::SLessThan;
                                        flipped = true;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                flipped
            }
            Miscompilation::SwapBranchTargets => {
                for function in &mut module.functions {
                    for block in &mut function.blocks {
                        if let Terminator::BranchConditional {
                            true_target,
                            false_target,
                            ..
                        } = &mut block.terminator
                        {
                            if true_target != false_target {
                                std::mem::swap(true_target, false_target);
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Miscompilation::DropLastStore => {
                let entry = module.entry_point;
                let Some(function) =
                    module.functions.iter_mut().find(|f| f.id == entry)
                else {
                    return false;
                };
                for block in function.blocks.iter_mut().rev() {
                    if let Some(pos) = block
                        .instructions
                        .iter()
                        .rposition(|i| matches!(i.op, Op::Store { .. }))
                    {
                        block.instructions.remove(pos);
                        return true;
                    }
                }
                false
            }
            Miscompilation::FoldSelectWrongArm => {
                for function in &mut module.functions {
                    for block in &mut function.blocks {
                        for inst in &mut block.instructions {
                            if let Op::Select { if_false, .. } = inst.op {
                                inst.op = Op::CopyObject { src: if_false };
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Miscompilation::DropMultiplication => {
                // Skip multiplications by literal one: dropping those is a
                // correct fold and would make the bug unobservable.
                let ones: Vec<trx_ir::Id> = module
                    .constants
                    .iter()
                    .filter(|c| c.value == trx_ir::ConstantValue::Int(1))
                    .map(|c| c.id)
                    .collect();
                for function in &mut module.functions {
                    for block in &mut function.blocks {
                        for inst in &mut block.instructions {
                            if let Op::Binary { op: BinOp::IMul, lhs, rhs } = inst.op {
                                if ones.contains(&rhs) || ones.contains(&lhs) {
                                    continue;
                                }
                                inst.op = Op::CopyObject { src: lhs };
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Miscompilation::IgnoreKill => {
                let entry = module.entry_point;
                let Some(function) =
                    module.functions.iter_mut().find(|f| f.id == entry)
                else {
                    return false;
                };
                for block in &mut function.blocks {
                    if matches!(block.terminator, Terminator::Kill) {
                        block.terminator = Terminator::Return;
                        return true;
                    }
                }
                false
            }
            Miscompilation::CrossPhiValues => {
                for function in &mut module.functions {
                    for block in &mut function.blocks {
                        for inst in &mut block.instructions {
                            if let Op::Phi { incoming } = &mut inst.op {
                                if incoming.len() >= 2 && incoming[0].0 != incoming[1].0 {
                                    let tmp = incoming[0].0;
                                    incoming[0].0 = incoming[1].0;
                                    incoming[1].0 = tmp;
                                    return true;
                                }
                            }
                        }
                    }
                }
                false
            }
        }
    }
}

/// What an injected bug does when its trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugEffect {
    /// The compiler crashes with this signature.
    Crash {
        /// The crash signature, as scraped from compiler output (§3.4).
        signature: String,
    },
    /// The compiler silently emits wrong code.
    Miscompile(Miscompilation),
}

/// One injected bug: a distinct root cause with a trigger and an effect,
/// evaluated after a particular pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedBug {
    /// Unique identity (ground truth for deduplication experiments).
    pub id: BugId,
    /// After which pass the trigger is evaluated; `None` = on the input
    /// module before any pass ("front-end" bugs).
    pub stage: Option<PassKind>,
    /// The feature pattern that provokes the bug.
    pub trigger: Trigger,
    /// What happens when it fires.
    pub effect: BugEffect,
}

impl InjectedBug {
    /// A crash bug.
    #[must_use]
    pub fn crash(
        name: &str,
        stage: Option<PassKind>,
        trigger: Trigger,
        signature: &str,
    ) -> Self {
        InjectedBug {
            id: BugId::new(name),
            stage,
            trigger,
            effect: BugEffect::Crash { signature: signature.to_owned() },
        }
    }

    /// A miscompilation bug.
    #[must_use]
    pub fn miscompile(
        name: &str,
        stage: Option<PassKind>,
        trigger: Trigger,
        mutation: Miscompilation,
    ) -> Self {
        InjectedBug {
            id: BugId::new(name),
            stage,
            trigger,
            effect: BugEffect::Miscompile(mutation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_ir::{interp, Inputs, ModuleBuilder, Value};

    #[test]
    fn swap_branch_targets_changes_behaviour() {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let u = b.uniform("k", t_int);
        let c5 = b.constant_int(5);
        let c1 = b.constant_int(1);
        let c2 = b.constant_int(2);
        let mut f = b.begin_entry_function("main");
        let loaded = f.load(u);
        let cond = f.slt(loaded, c5);
        let then_l = f.reserve_label();
        let merge_l = f.reserve_label();
        let entry = f.current_label();
        f.selection_merge(merge_l);
        f.branch_cond(cond, then_l, merge_l);
        f.begin_block_with_label(then_l);
        f.branch(merge_l);
        f.begin_block_with_label(merge_l);
        let phi = f.phi(t_int, vec![(c1, then_l), (c2, entry)]);
        f.store_output("out", phi);
        f.ret();
        f.finish();
        let mut m = b.finish();

        let inputs = Inputs::new().with("k", Value::Int(3));
        let before = interp::execute(&m, &inputs).unwrap();
        assert!(Miscompilation::SwapBranchTargets.apply(&mut m));
        validate(&m).expect("mutation keeps module valid");
        let after = interp::execute(&m, &inputs).unwrap();
        assert_ne!(before, after, "the miscompilation must be observable");
    }

    #[test]
    fn mutations_are_noops_without_their_shape() {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(1);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        let m = b.finish();
        for mutation in [
            Miscompilation::OffByOneComparison,
            Miscompilation::SwapBranchTargets,
            Miscompilation::FoldSelectWrongArm,
            Miscompilation::DropMultiplication,
            Miscompilation::IgnoreKill,
            Miscompilation::CrossPhiValues,
        ] {
            let mut copy = m.clone();
            let changed = mutation.apply(&mut copy);
            if !changed {
                assert_eq!(copy, m, "{mutation:?} must be a no-op when it misses");
            }
        }
    }

    #[test]
    fn drop_last_store_makes_output_zero() {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(9);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        let mut m = b.finish();
        assert!(Miscompilation::DropLastStore.apply(&mut m));
        let r = interp::execute(&m, &Inputs::default()).unwrap();
        assert_eq!(r.outputs["out"], Value::Int(0));
    }
}
