//! # trx-bench
//!
//! Experiment binaries that regenerate every table and figure of the paper
//! (`table2`, `table3`, `figure7`, `rq2_reduction`, `table4`, `figure3`,
//! `figure8`) plus Criterion performance benches for the core components.
//!
//! Shared here: a minimal fixed-width table printer and a tiny CLI-flag
//! parser used by the binaries.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod interp;
pub mod perf;
pub mod robustness;
pub mod shootout;

/// Renders rows as a fixed-width text table with a header rule.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Reads `--flag value` style options from the command line, returning the
/// value for `name` parsed as `usize`, or `default`.
#[must_use]
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads `--flag value` style options, returning the value for `name`
/// parsed as `u64`, or `default`.
#[must_use]
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a bare `--flag` style option, returning whether `name` appears
/// anywhere on the command line.
#[must_use]
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Reads `--flag value` style options, returning the value for `name` as a
/// string, or `default`.
#[must_use]
pub fn arg_string(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let table = render_table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
        assert_eq!(arg_u64("--definitely-not-passed", 9), 9);
    }
}
