//! Chaos server: the triage daemon under shard slaughter.
//!
//! Two runs over the same batch of jobs on a multi-shard daemon. The
//! golden run is uninterrupted. The chaos run arms a kill schedule on
//! every job — a real panic out of the pipeline at a chosen journal
//! append — so each shard thread dies mid-job and is replaced by its
//! supervisor at least once (verified; the binary fails otherwise).
//! Killed jobs restart-with-resume from their journals, and the verdict
//! is byte equality: the chaos run's drained merged report and merged
//! journal must be identical to the golden run's.
//!
//! Alongside the equivalence verdict the binary measures service-level
//! numbers — completed jobs per second and p50/p99 job latency under
//! chaos — and writes the `server` section of `BENCH_robustness.json`,
//! preserving the sections owned by `chaos_campaign` and
//! `chaos_pipeline`.
//!
//! Usage: `chaos_server [--jobs N] [--shards S] [--tests T] [--seed B]
//! [--out FILE] [--golden-report FILE] [--chaos-report FILE]`
//!
//! `--golden-report` / `--chaos-report` additionally write each run's
//! drained merged report to a file, so CI can `cmp` the two artifacts
//! directly instead of trusting this binary's own verdict.

use std::time::{Duration, Instant};

use trx_bench::robustness::{RobustnessBaseline, ServerBaseline};
use trx_bench::{arg_string, arg_u64, arg_usize, render_table};
use trx_harness::campaign::Tool;
use trx_harness::executor::ExecutorConfig;
use trx_observe::SinkHandle;
use trx_server::{Daemon, DaemonConfig, InProcessClient, JobPhase, JobSpec, Request, Response};
use trx_targets::catalog;

fn fail(message: &str) -> ! {
    eprintln!("FAIL: {message}");
    std::process::exit(1);
}

struct RunOutcome {
    merged_report: String,
    merged_journal: String,
    shard_deaths: Vec<u64>,
    resume_replays: u64,
    quarantined: u64,
    latencies: Vec<Duration>,
    elapsed: Duration,
}

/// Submits `specs` to a fresh daemon, polls every job to completion
/// (recording per-job admission-to-done latency), then drains.
fn run_batch(config: DaemonConfig, specs: &[JobSpec]) -> RunOutcome {
    let daemon = Daemon::start(config, SinkHandle::noop());
    let mut client = InProcessClient::connect(daemon);
    let started = Instant::now();
    let mut submitted = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        match client.request(&Request::Submit(spec.clone())) {
            Response::Accepted { job } => {
                if job != i as u64 {
                    fail(&format!("job ids drifted: expected {i}, got {job}"));
                }
                submitted.push(Instant::now());
            }
            other => fail(&format!("submit {i} refused: {other:?}")),
        }
    }

    // Poll all jobs round-robin, recording the first time each is seen
    // terminal. Coarse (one poll loop per millisecond) but unbiased: every
    // job is visited each sweep.
    let mut done_at: Vec<Option<Instant>> = vec![None; specs.len()];
    while done_at.iter().any(Option::is_none) {
        for (i, slot) in done_at.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            match client.request(&Request::Status { job: i as u64 }) {
                Response::Status(status) => {
                    if matches!(status.phase, JobPhase::Done | JobPhase::Quarantined) {
                        *slot = Some(Instant::now());
                    }
                }
                other => fail(&format!("status {i} failed: {other:?}")),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = started.elapsed();

    let (shard_deaths, resume_replays, quarantined) = match client.request(&Request::Stats) {
        Response::Stats(stats) => (stats.shard_deaths, stats.resume_replays, stats.quarantined),
        other => fail(&format!("stats failed: {other:?}")),
    };
    let (merged_report, merged_journal) = match client.request(&Request::Drain) {
        Response::Drained { merged_report, merged_journal } => (merged_report, merged_journal),
        other => fail(&format!("drain failed: {other:?}")),
    };
    let latencies = submitted
        .iter()
        .zip(&done_at)
        .map(|(s, d)| d.expect("all jobs terminal") - *s)
        .collect();
    RunOutcome {
        merged_report,
        merged_journal,
        shard_deaths,
        resume_replays,
        quarantined,
        latencies,
        elapsed,
    }
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1000.0
}

fn main() {
    let jobs = arg_usize("--jobs", 200).max(1);
    let shards = arg_usize("--shards", 2).max(2);
    let tests = arg_usize("--tests", 6).max(1);
    let seed = arg_u64("--seed", 0);
    let out = arg_string("--out", "BENCH_robustness.json");
    let golden_report = arg_string("--golden-report", "");
    let chaos_report = arg_string("--chaos-report", "");

    let config = DaemonConfig {
        shards,
        queue_capacity: jobs,
        ..DaemonConfig::default()
    };
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| JobSpec {
            tests,
            ..JobSpec::small(seed.wrapping_add(i as u64))
        })
        .collect();

    // Injected kills are real panics on shard threads; silence the default
    // hook's backtrace spam (each death is accounted for in the stats).
    std::panic::set_hook(Box::new(|_| {}));

    eprintln!("golden run: {jobs} jobs x {tests} tests on {shards} shards ...");
    let golden = run_batch(config, &specs);
    if golden.shard_deaths.iter().any(|&d| d > 0) {
        fail("the golden run killed a shard — the clean pipeline panicked");
    }
    if golden.quarantined > 0 {
        fail("the golden run quarantined a job");
    }

    // Chaos schedule: every job kills its shard exactly once, at an append
    // index staggered across jobs so deaths land in different pipeline
    // stages. One kill per job stays far inside the restart budget — a
    // quarantine would (correctly) break byte-equivalence.
    let chaos_specs: Vec<JobSpec> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| JobSpec {
            kill_at_appends: vec![1 + (i % 5)],
            ..spec.clone()
        })
        .collect();
    eprintln!("chaos run: killing every job's shard once mid-job ...");
    let chaos = run_batch(config, &chaos_specs);
    let _ = std::panic::take_hook();

    let total_deaths: u64 = chaos.shard_deaths.iter().sum();
    if chaos.shard_deaths.contains(&0) {
        fail(&format!(
            "a shard survived the chaos run unkilled (deaths per shard: {:?}); \
             every shard must recover from at least one mid-job death",
            chaos.shard_deaths
        ));
    }
    if chaos.quarantined > 0 {
        fail("the chaos run quarantined a job; equivalence is not meaningful");
    }

    let equivalent = chaos.merged_report == golden.merged_report
        && chaos.merged_journal == golden.merged_journal;

    for (path, report) in [(&golden_report, &golden), (&chaos_report, &chaos)] {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(path, format!("{}\n", report.merged_report)) {
                fail(&format!("cannot write {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
    }

    let mut sorted = chaos.latencies.clone();
    sorted.sort_unstable();
    let section = ServerBaseline {
        shards,
        jobs,
        tests_per_job: tests,
        shard_deaths: chaos.shard_deaths.clone(),
        resume_replays: chaos.resume_replays,
        quarantined: chaos.quarantined,
        jobs_per_second: jobs as f64 / chaos.elapsed.as_secs_f64(),
        p50_latency_ms: percentile_ms(&sorted, 0.50),
        p99_latency_ms: percentile_ms(&sorted, 0.99),
        equivalent,
    };

    let rows = vec![
        vec!["jobs completed".to_owned(), jobs.to_string()],
        vec!["shards".to_owned(), shards.to_string()],
        vec!["shard deaths (chaos)".to_owned(), format!("{:?}", section.shard_deaths)],
        vec!["resume replays".to_owned(), section.resume_replays.to_string()],
        vec!["jobs/second (chaos)".to_owned(), format!("{:.1}", section.jobs_per_second)],
        vec!["p50 latency (ms)".to_owned(), format!("{:.1}", section.p50_latency_ms)],
        vec!["p99 latency (ms)".to_owned(), format!("{:.1}", section.p99_latency_ms)],
        vec!["merged artifacts equivalent".to_owned(), equivalent.to_string()],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));

    // Fill the server section, preserving the other binaries' sections.
    let mut baseline = RobustnessBaseline::load(&out).unwrap_or_else(|| {
        eprintln!(
            "note: {out} missing or unparseable; writing a skeleton (run chaos_campaign and \
             chaos_pipeline to fill the other sections)"
        );
        RobustnessBaseline {
            tool: Tool::SpirvFuzz.name().to_owned(),
            tests: 0,
            targets: catalog::all_targets().iter().map(|t| t.name().to_owned()).collect(),
            executor: ExecutorConfig::default(),
            scenarios: Vec::new(),
            pipeline: None,
            server: None,
        }
    });
    baseline.server = Some(section);
    if let Err(e) = baseline.save(&out) {
        fail(&format!("failed to write {out}: {e}"));
    }
    eprintln!("wrote {out} ({total_deaths} shard deaths recovered)");

    if !equivalent {
        fail("chaos-run merged artifacts diverged from the uninterrupted run");
    }
}
