//! Structural fingerprints over whole [`Context`]s.
//!
//! The reducer memoizes interestingness verdicts by context: delta-debugging
//! repeatedly re-probes candidate sequences that *normalize* to a context it
//! has already asked the oracle about (repeat passes at the same chunk size,
//! halved chunks whose removals are no-ops because the preconditions already
//! failed, …). Two contexts are interchangeable for a deterministic oracle
//! exactly when module, inputs and facts all coincide, so the memo key is a
//! stable structural hash over all three (see [`trx_ir::hash`] for why the
//! hash must be seed-free).

use trx_ir::hash::{module_fingerprint, StableHasher};

use crate::context::Context;

/// Stable 64-bit structural fingerprint of a context: module (via its
/// canonical binary encoding), interpreter inputs, and fact store.
#[must_use]
pub fn context_fingerprint(ctx: &Context) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(module_fingerprint(&ctx.module));
    h.write_inputs(&ctx.inputs);
    ctx.facts.write_fingerprint(&mut h);
    h.finish()
}

/// Stable 64-bit identity of a transformation *value*, used by
/// [`crate::PrefixCache`] to key state transitions without cloning or
/// comparing whole transformations.
///
/// The hash runs over the derived `Debug` rendering, which is a faithful,
/// deterministic function of the structure (field names, variant names,
/// every payload value — floats included, via Rust's shortest-roundtrip
/// formatting). Two equal transformations always share an id; distinct
/// transformations collide with probability ~2⁻⁶⁴, the same standing
/// assumption the verdict memo makes about [`context_fingerprint`].
#[must_use]
pub fn transformation_id(t: &crate::Transformation) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&format!("{t:?}"));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformations::SetFunctionControl;
    use crate::{apply, Transformation};
    use trx_ir::{FunctionControl, ModuleBuilder};

    fn tiny_context() -> Context {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(1);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c);
        f.ret();
        f.finish();
        Context::new(b.finish(), trx_ir::Inputs::new()).expect("valid module")
    }

    #[test]
    fn equal_contexts_share_a_fingerprint() {
        assert_eq!(
            context_fingerprint(&tiny_context()),
            context_fingerprint(&tiny_context())
        );
    }

    #[test]
    fn facts_affect_the_fingerprint() {
        let base = tiny_context();
        let mut facted = base.clone();
        facted.facts.add_irrelevant(trx_ir::Id::new(1));
        assert_ne!(context_fingerprint(&base), context_fingerprint(&facted));
    }

    #[test]
    fn applied_transformations_change_the_fingerprint() {
        let base = tiny_context();
        let mut transformed = base.clone();
        let function = transformed.module.functions[0].id;
        let t: Transformation =
            SetFunctionControl { function, control: FunctionControl::DontInline }.into();
        if apply(&mut transformed, &t) {
            assert_ne!(context_fingerprint(&base), context_fingerprint(&transformed));
        }
    }
}
