//! The triage daemon: a supervised, sharded campaign service.
//!
//! # Supervision tree
//!
//! [`Daemon::start`] spawns `shards` worker threads. Each shard claims
//! jobs from a bounded admission queue and runs one full triage pipeline
//! per job ([`trx_harness::pipeline::run_pipeline_observed`]) under
//! [`std::panic::catch_unwind`]. Every WAL record the pipeline emits is
//! appended to the job's in-memory journal *before* anything can kill the
//! shard, so the journal is always a valid resume prefix — the same
//! write-ahead discipline the on-disk pipeline uses.
//!
//! A panic that escapes a job (injected by a chaos schedule or a real
//! defect) counts as a **shard death**: the dying thread performs the
//! supervisor bookkeeping — records the death, applies the restart policy
//! to the job it was running, spawns its own replacement thread — and
//! exits. The replacement re-claims queued work, and a restarted job
//! resumes from its journal prefix, which the PR 2 recovery contract
//! guarantees is byte-identical to never having died.
//!
//! # Restart policy
//!
//! Restarts are bounded per job: each death charges the job one restart
//! and a *logical* exponential backoff (`backoff_base_ms << (restarts-1)`,
//! recorded rather than slept — the executor's determinism discipline).
//! A job that kills its shard more than [`DaemonConfig::max_restarts`]
//! times is circuit-broken into [`JobPhase::Quarantined`]: its journal is
//! kept for post-mortem, the shard pool stops retrying it, and the rest of
//! the queue keeps flowing.
//!
//! # Backpressure and drain
//!
//! Admission is a bounded queue: past `queue_capacity` waiting jobs, new
//! submissions get a typed [`Response::Overloaded`] instead of unbounded
//! growth. [`Daemon::drain`] closes admission, lets in-flight and queued
//! jobs finish, and merges every job's report and journal **in job-id
//! order** — so a drained daemon's merged artifacts are byte-identical to
//! an uninterrupted run's, no matter how many shards died along the way.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use trx_core::SharedPrefixCache;
use trx_harness::pipeline::{
    run_pipeline_with_known_observed_cached, signature_key, Journal, KnownSignatures,
    PipelineConfig, PipelineReport,
};
use trx_harness::{BugSignature, ExecutorConfig, Tool, WatchdogConfig};
use trx_observe::{Counter, Scope, SinkHandle};
use trx_reducer::ReducerOptions;
use trx_targets::{catalog, FaultPlan, FaultyTarget};

use crate::state::{
    DiskStorage, MemStorage, NovelSignature, SignatureEntry, StateError, StateStorage, StateStore,
};
use crate::wire::{
    DaemonStats, JobPhase, JobSpec, JobStatus, Request, Response,
};

/// Tuning knobs for [`Daemon::start`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonConfig {
    /// Concurrent shard workers. Each runs one job at a time.
    pub shards: usize,
    /// Jobs that may wait in the admission queue before submissions are
    /// shed with [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Shard deaths one job may cause before the circuit breaker
    /// quarantines it.
    pub max_restarts: u32,
    /// Base of the logical exponential backoff charged per restart, in
    /// milliseconds (recorded, not slept).
    pub backoff_base_ms: u64,
    /// Directory for the durable signature store. `None` keeps the store
    /// in memory: cross-job dedup still works, but dies with the process.
    pub state_dir: Option<String>,
    /// WAL records that trigger automatic store compaction after a
    /// commit; 0 never auto-compacts.
    pub snapshot_every: usize,
    /// Byte budget of each worker shard's persistent
    /// [`SharedPrefixCache`]. The cache outlives any one job, so later
    /// jobs re-reducing overlapping transformation prefixes (resubmitted
    /// campaigns, restart storms) walk snapshots earlier jobs paid for.
    /// 0 (the default) disables the shard caches; journal bytes and
    /// reports are identical either way.
    pub cache_budget_bytes: usize,
    /// Shard count *inside* each worker's prefix cache (not the daemon's
    /// worker shards): concurrent reductions of one job contend on these.
    pub cache_shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: 2,
            queue_capacity: 64,
            max_restarts: 3,
            backoff_base_ms: 10,
            state_dir: None,
            snapshot_every: 64,
            cache_budget_bytes: 0,
            cache_shards: 8,
        }
    }
}

/// One job's report slot in the merged drain artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedJob {
    /// The job id.
    pub job: u64,
    /// Whether the circuit breaker quarantined the job.
    pub quarantined: bool,
    /// Whether the job's deadline expired before it could finish.
    pub deadline_exceeded: bool,
    /// The pipeline report; `None` for quarantined or deadline-exceeded
    /// jobs.
    pub report: Option<PipelineReport>,
}

/// Every job's outcome, in job-id order. Serialisation is deterministic:
/// two drains over the same admitted job set render bit-identical JSON
/// regardless of shard scheduling or deaths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedReport {
    /// Jobs in id (admission) order.
    pub jobs: Vec<MergedJob>,
}

impl MergedReport {
    /// Deterministic pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parses what [`MergedReport::to_json`] wrote.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// One admitted job's full state.
struct Job {
    spec: JobSpec,
    phase: JobPhase,
    /// Encoded WAL lines appended so far — the durable resume prefix.
    journal: Vec<String>,
    /// Kill points already consumed from `spec.kill_at_appends`.
    kills_fired: usize,
    restarts: u32,
    backoff_ms: u64,
    report: Option<PipelineReport>,
    error: Option<String>,
    admitted_at: Instant,
    /// Admission→terminal latency, set exactly once at the terminal
    /// transition (so queue wait is included — the honest p99).
    latency: Option<Duration>,
    /// The store's known-signature map, pinned at the job's *first* claim
    /// so restarts resume against the same map and stay byte-identical.
    known: Option<Arc<KnownSignatures>>,
}

/// Mutable daemon state behind the one lock.
struct State {
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    draining: bool,
    /// Jobs currently executing on some shard.
    running: usize,
    shard_deaths: Vec<u64>,
    admitted: u64,
    shed: u64,
    completed: u64,
    quarantined: u64,
    resume_replays: u64,
    deadline_exceeded: u64,
    duplicates_suppressed: u64,
}

struct Shared {
    config: DaemonConfig,
    observe: SinkHandle,
    state: Mutex<State>,
    /// The durable signature store, behind its own lock. Lock discipline:
    /// never held together with `state` — every path takes one, drops it,
    /// then may take the other, so the pair cannot deadlock.
    store: Mutex<StateStore>,
    /// Signaled when work arrives or drain starts (shards wait here).
    work: Condvar,
    /// Signaled when a job reaches a terminal phase (drain waits here).
    settled: Condvar,
    shutdown: AtomicBool,
    /// One persistent prefix cache per worker shard (empty when
    /// [`DaemonConfig::cache_budget_bytes`] is 0). Indexed by shard id;
    /// survives both job boundaries and shard-thread deaths, so a
    /// restarted job resumes against a warm cache — safely, because the
    /// cache never influences journal bytes.
    caches: Vec<Arc<SharedPrefixCache>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A shard that panics inside a chaos kill holds no lock (appends
        // release it first), but stay robust to poisoning anyway: state
        // transitions are all crash-consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_store(&self) -> MutexGuard<'_, StateStore> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Panic payload marking a deliberate deadline abort — not a shard death.
/// The unwind is just transport: the shard catches it, rolls the job into
/// [`JobPhase::DeadlineExceeded`], and keeps running without a respawn.
struct DeadlineAbort;

/// The long-lived triage service. Cheap to clone — all clones share one
/// supervision tree.
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Daemon {
    /// Starts the shard pool and returns a handle to it. Counters for
    /// every admission and failure path stream to `observe` under
    /// [`Scope::Server`].
    ///
    /// The durable signature store opens from `config.state_dir` (or in
    /// memory when `None`) and is recovered before the first shard runs.
    ///
    /// # Panics
    ///
    /// If the store cannot be opened or is corrupt — a daemon must not
    /// serve over state it cannot trust. Use
    /// [`Daemon::start_with_storage`] to handle the error.
    #[must_use]
    pub fn start(config: DaemonConfig, observe: SinkHandle) -> Daemon {
        let storage: Box<dyn StateStorage> = match &config.state_dir {
            Some(dir) => Box::new(
                DiskStorage::open(&PathBuf::from(dir))
                    .expect("daemon state_dir must be creatable"),
            ),
            None => Box::new(MemStorage::new()),
        };
        Daemon::start_with_storage(config, storage, observe)
            .expect("daemon state store must recover cleanly")
    }

    /// [`Daemon::start`] over an explicit storage backend — the hook the
    /// fault-injection and restart matrices use ([`MemStorage`] handles
    /// survive a daemon "process" and carry its durable bytes to the
    /// next incarnation).
    ///
    /// # Errors
    ///
    /// [`StateError`] when the store cannot be recovered from `storage`.
    pub fn start_with_storage(
        config: DaemonConfig,
        storage: Box<dyn StateStorage>,
        observe: SinkHandle,
    ) -> Result<Daemon, StateError> {
        let shards = config.shards.max(1);
        let config = DaemonConfig { shards, ..config };
        let store = StateStore::open(storage, config.snapshot_every)?;
        let recovered = store.recovery().wal_records_replayed as u64;
        if recovered > 0 {
            observe.count(Scope::Server, Counter::StateRecoveredRecords, recovered);
        }
        let caches: Vec<Arc<SharedPrefixCache>> = if config.cache_budget_bytes > 0 {
            (0..shards)
                .map(|_| {
                    Arc::new(SharedPrefixCache::new(config.cache_budget_bytes, config.cache_shards))
                })
                .collect()
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            config,
            observe,
            state: Mutex::new(State {
                jobs: Vec::new(),
                queue: VecDeque::new(),
                draining: false,
                running: 0,
                shard_deaths: vec![0; shards],
                admitted: 0,
                shed: 0,
                completed: 0,
                quarantined: 0,
                resume_replays: 0,
                deadline_exceeded: 0,
                duplicates_suppressed: 0,
            }),
            store: Mutex::new(store),
            work: Condvar::new(),
            settled: Condvar::new(),
            shutdown: AtomicBool::new(false),
            caches,
        });
        for shard in 0..shards {
            spawn_shard(Arc::clone(&shared), shard);
        }
        Ok(Daemon { shared })
    }

    /// Submits a job. Admission control may answer
    /// [`Response::Overloaded`] (queue full) or [`Response::Error`]
    /// (draining); success is [`Response::Accepted`].
    pub fn submit(&self, spec: JobSpec) -> Response {
        let shared = &self.shared;
        let mut st = shared.lock();
        if st.draining {
            return Response::Error { message: "daemon is draining".to_owned() };
        }
        if st.queue.len() >= shared.config.queue_capacity {
            st.shed += 1;
            shared.observe.count(Scope::Server, Counter::JobsShed, 1);
            return Response::Overloaded {
                queued: st.queue.len(),
                capacity: shared.config.queue_capacity,
            };
        }
        let id = st.jobs.len();
        let mut spec = spec;
        spec.kill_at_appends.sort_unstable();
        spec.kill_at_appends.dedup();
        st.jobs.push(Job {
            spec,
            phase: JobPhase::Queued,
            journal: Vec::new(),
            kills_fired: 0,
            restarts: 0,
            backoff_ms: 0,
            report: None,
            error: None,
            admitted_at: Instant::now(),
            latency: None,
            known: None,
        });
        st.queue.push_back(id);
        st.admitted += 1;
        shared.observe.count(Scope::Server, Counter::JobsAdmitted, 1);
        drop(st);
        shared.work.notify_one();
        Response::Accepted { job: id as u64 }
    }

    /// One job's status, or an error for an unknown id.
    pub fn status(&self, job: u64) -> Response {
        let st = self.shared.lock();
        match st.jobs.get(job as usize) {
            None => Response::Error { message: format!("unknown job {job}") },
            Some(j) => Response::Status(JobStatus {
                job,
                phase: j.phase,
                restarts: j.restarts,
                backoff_ms: j.backoff_ms,
                journal_records: j.journal.len(),
            }),
        }
    }

    /// A job's journal records from `from`, plus whether more can come.
    pub fn findings(&self, job: u64, from: usize) -> Response {
        let st = self.shared.lock();
        match st.jobs.get(job as usize) {
            None => Response::Error { message: format!("unknown job {job}") },
            Some(j) => Response::Findings {
                job,
                from,
                records: j.journal.iter().skip(from).cloned().collect(),
                terminal: matches!(
                    j.phase,
                    JobPhase::Done | JobPhase::Quarantined | JobPhase::DeadlineExceeded
                ),
            },
        }
    }

    /// Daemon-level counters and supervision state.
    pub fn stats(&self) -> DaemonStats {
        let mut stats = {
            let st = self.shared.lock();
            DaemonStats {
                shards: self.shared.config.shards,
                shard_deaths: st.shard_deaths.clone(),
                admitted: st.admitted,
                shed: st.shed,
                completed: st.completed,
                quarantined: st.quarantined,
                resume_replays: st.resume_replays,
                queued: st.queue.len(),
                deadline_exceeded: st.deadline_exceeded,
                duplicates_suppressed: st.duplicates_suppressed,
                store_signatures: 0,
                store_jobs_committed: 0,
                store_commit_failures: 0,
                store_recovered_records: 0,
                store_compactions: 0,
            }
        };
        // State lock released before the store lock (see `Shared.store`).
        let store = self.shared.lock_store();
        stats.store_signatures = store.state().signatures.len() as u64;
        stats.store_jobs_committed = store.state().jobs_committed;
        stats.store_commit_failures = store.counters().commit_failures;
        stats.store_recovered_records = store.recovery().wal_records_replayed as u64;
        stats.store_compactions = store.counters().compactions;
        stats
    }

    /// Admission→terminal latency per job in submission order; `None` for
    /// jobs not yet terminal. This is the honest curve: queue wait
    /// included.
    #[must_use]
    pub fn latencies(&self) -> Vec<Option<u64>> {
        let st = self.shared.lock();
        st.jobs
            .iter()
            .map(|j| {
                j.latency
                    .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            })
            .collect()
    }

    /// Answers a signature lookup against the durable store.
    pub fn signature(&self, target: &str, signature: &BugSignature) -> Response {
        let key = signature_key(target, signature);
        let store = self.shared.lock_store();
        match store.lookup(&key) {
            Some(entry) => Response::Duplicate {
                key,
                kinds: entry.kinds.clone(),
                first_job: entry.first_job,
                reduced_length: entry.reduced_length,
            },
            None => Response::Novel { key },
        }
    }

    /// The durable store's corpus snapshot.
    pub fn corpus(&self) -> Response {
        let store = self.shared.lock_store();
        Response::Corpus {
            jobs_committed: store.state().jobs_committed,
            signatures: store.state().signatures.len() as u64,
            kept_keys: store.verdict(),
        }
    }

    /// Closes admission, waits for every job to reach a terminal phase,
    /// and returns the deterministic job-order merged artifacts.
    pub fn drain(&self) -> (MergedReport, String) {
        let shared = &self.shared;
        let mut st = shared.lock();
        st.draining = true;
        shared.work.notify_all();
        while !(st.queue.is_empty() && st.running == 0) {
            st = shared
                .settled
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let merged = MergedReport {
            jobs: st
                .jobs
                .iter()
                .enumerate()
                .map(|(id, j)| MergedJob {
                    job: id as u64,
                    quarantined: matches!(j.phase, JobPhase::Quarantined),
                    deadline_exceeded: matches!(j.phase, JobPhase::DeadlineExceeded),
                    report: j.report.clone(),
                })
                .collect(),
        };
        let mut journal = String::new();
        for (id, j) in st.jobs.iter().enumerate() {
            journal.push_str(&format!("# job {id}\n"));
            for line in &j.journal {
                journal.push_str(line);
                journal.push('\n');
            }
        }
        (merged, journal)
    }

    /// Whether [`Request::Shutdown`] was received; transports poll this.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Serves one request. Both transports funnel through here, so the
    /// in-process harness exercises exactly the TCP dispatch path.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit(spec) => self.submit(spec),
            Request::Status { job } => self.status(job),
            Request::Findings { job, from } => self.findings(job, from),
            Request::Stats => Response::Stats(self.stats()),
            Request::Signature { target, signature } => self.signature(&target, &signature),
            Request::Corpus => self.corpus(),
            Request::Latencies => Response::Latencies { nanos: self.latencies() },
            Request::Drain => {
                let (merged, journal) = self.drain();
                match merged.to_json() {
                    Ok(merged_report) => {
                        Response::Drained { merged_report, merged_journal: journal }
                    }
                    Err(message) => Response::Error { message },
                }
            }
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }
}

/// Builds the per-job pipeline configuration. Shards give the daemon its
/// parallelism, so the campaign stage inside a job stays serial; the
/// reduction stage may still fan out on `trx-pool` workers per the spec.
fn job_config(spec: &JobSpec) -> PipelineConfig {
    PipelineConfig {
        tool: Tool::SpirvFuzz,
        tests: spec.tests,
        seed_base: spec.seed_base,
        executor: ExecutorConfig { threads: 1, ..ExecutorConfig::default() },
        reducer: ReducerOptions::default(),
        // `spec.deadline_ms` is the *job's* wall-clock budget, enforced by
        // the shard from admission time; probes always run inline so the
        // pipeline stays deterministic under resume.
        watchdog: WatchdogConfig { deadline_ms: 0 },
        reduction_threads: spec.reduction_threads.max(1),
        // The daemon passes its own per-shard cache handle to the cached
        // pipeline entry point; the in-config budget stays 0 so a job
        // resumed on a cacheless daemon build behaves identically.
        cache_budget_bytes: 0,
        cache_shards: 1,
        dedup_backend: spec.dedup_backend,
    }
}

/// Builds the job's targets. Every target is wrapped in a fault injector
/// (an empty plan injects nothing), with per-target derived seeds so fault
/// decisions are decorrelated across targets — the chaos-campaign idiom.
/// Fresh wrappers per (re)start reset the injector's attempt counters, so
/// a resumed job replays the exact fault schedule of its first run.
fn job_targets(spec: &JobSpec) -> Arc<Vec<FaultyTarget>> {
    let all = catalog::all_targets();
    let count = if spec.target_count == 0 {
        all.len()
    } else {
        spec.target_count.min(all.len())
    };
    let plan = spec.plan.clone().unwrap_or_else(|| FaultPlan::none(0));
    Arc::new(
        all.into_iter()
            .take(count)
            .enumerate()
            .map(|(t, target)| {
                let plan = FaultPlan { seed: plan.seed.wrapping_add(t as u64), ..plan.clone() };
                FaultyTarget::new(target, plan)
            })
            .collect(),
    )
}

/// Spawns one shard worker thread (or its replacement after a death).
fn spawn_shard(shared: Arc<Shared>, shard: usize) {
    let spawned = std::thread::Builder::new()
        .name(format!("trx-shard-{shard}"))
        .spawn(move || shard_loop(shared, shard));
    // Thread exhaustion at spawn time leaves the daemon with fewer shards
    // but still live: remaining shards keep draining the queue.
    drop(spawned);
}

fn shard_loop(shared: Arc<Shared>, shard: usize) {
    loop {
        // Claim the next job, or exit when the daemon is draining and the
        // queue is dry. A queued job whose deadline already expired is
        // terminated here, cheaply — under overload this is what keeps
        // dead work from occupying shards.
        let (job_id, spec, prior_lines, deadline) = {
            let mut st = shared.lock();
            let claimed = loop {
                let Some(id) = st.queue.pop_front() else {
                    if st.draining {
                        return;
                    }
                    st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                    continue;
                };
                let job = &mut st.jobs[id];
                let deadline_ms = job.spec.deadline_ms;
                if deadline_ms > 0
                    && job.admitted_at.elapsed() >= Duration::from_millis(deadline_ms)
                {
                    job.phase = JobPhase::DeadlineExceeded;
                    job.latency = Some(job.admitted_at.elapsed());
                    job.error = Some(format!(
                        "deadline of {deadline_ms} ms expired in the admission queue"
                    ));
                    st.deadline_exceeded += 1;
                    shared
                        .observe
                        .count(Scope::Server, Counter::JobsDeadlineExceeded, 1);
                    shared.settled.notify_all();
                    continue;
                }
                break id;
            };
            st.running += 1;
            let job = &mut st.jobs[claimed];
            job.phase = JobPhase::Running;
            // Kill points at or below the resume prefix already fired (they
            // are why the prefix ends where it does); never re-arm them.
            let prefix = job.journal.len();
            while job.kills_fired < job.spec.kill_at_appends.len()
                && job.spec.kill_at_appends[job.kills_fired] <= prefix
            {
                job.kills_fired += 1;
            }
            if job.restarts > 0 {
                st.resume_replays += prefix as u64;
                shared
                    .observe
                    .count(Scope::Server, Counter::ResumeReplays, prefix as u64);
            }
            let spec = st.jobs[claimed].spec.clone();
            let lines = st.jobs[claimed].journal.join("\n");
            let deadline = (spec.deadline_ms > 0)
                .then(|| (st.jobs[claimed].admitted_at, Duration::from_millis(spec.deadline_ms)));
            (claimed, spec, lines, deadline)
        };

        // Pin the job's known-signature map at its first claim. Restarts
        // reuse the pinned map even if the store has since learned more,
        // so a resumed job replays byte-identically. The store lock is
        // taken with the state lock released (see `Shared.store`).
        let known: Arc<KnownSignatures> = {
            let pinned = shared.lock().jobs[job_id].known.clone();
            match pinned {
                Some(known) => known,
                None => {
                    let fresh = Arc::new(if spec.consult_store {
                        shared.lock_store().known()
                    } else {
                        KnownSignatures::new()
                    });
                    let mut st = shared.lock();
                    let job = &mut st.jobs[job_id];
                    job.known.get_or_insert(fresh).clone()
                }
            }
        };

        let config = job_config(&spec);
        let targets = job_targets(&spec);
        let sink_shared = Arc::clone(&shared);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let journal = Journal::parse(&prior_lines)?;
            run_pipeline_with_known_observed_cached(
                &config,
                &targets,
                &known,
                &journal,
                |record| {
                    // Append-then-maybe-kill: the record is durable in the
                    // job's journal before the chaos schedule may panic, so
                    // the journal is always a valid resume prefix. Encoding
                    // cannot fail for records the pipeline just built; if
                    // it ever does, the panic is absorbed as a shard death
                    // and the restart budget decides the job's fate.
                    let line = match Journal::encode_line(record) {
                        Ok(line) => line,
                        Err(e) => panic!("WAL record failed to encode: {e}"),
                    };
                    let mut st = sink_shared.lock();
                    let job = &mut st.jobs[job_id];
                    job.journal.push(line);
                    let appended = job.journal.len();
                    let kill = job.kills_fired < job.spec.kill_at_appends.len()
                        && job.spec.kill_at_appends[job.kills_fired] == appended;
                    if kill {
                        job.kills_fired += 1;
                    }
                    drop(st);
                    // The deadline is checked at the same granularity the
                    // journal advances: the record above is durable, so the
                    // abort rolls the job back to a valid resume prefix and
                    // never tears the store (commits happen only on Done).
                    if let Some((admitted_at, budget)) = deadline {
                        if admitted_at.elapsed() >= budget {
                            std::panic::panic_any(DeadlineAbort);
                        }
                    }
                    if kill {
                        panic!("chaos kill: job {job_id} at journal record {appended}");
                    }
                },
                // Per-job pipeline metrics live in each report's own
                // `metrics` section; the daemon's sink only carries
                // server-scope counters, so concurrent jobs cannot
                // interleave their reduction scopes.
                &SinkHandle::noop(),
                // This worker shard's persistent cache: jobs resubmitting
                // overlapping campaigns reuse prior jobs' snapshots.
                shared.caches.get(shard),
            )
        }));

        match outcome {
            Ok(Ok(report)) => {
                // Commit the job's novel signatures *before* it becomes
                // visible as Done: a client that sees Done and resubmits
                // the same bugs is guaranteed to hit the store.
                let suppressed = report.duplicates.len() as u64;
                if spec.consult_store {
                    let novel: Vec<NovelSignature> = report
                        .bugs
                        .iter()
                        .map(|bug| NovelSignature {
                            key: signature_key(&bug.target, &bug.signature),
                            entry: SignatureEntry {
                                kinds: bug.kinds.clone(),
                                first_job: job_id as u64,
                                reduced_length: bug.reduced_length,
                            },
                        })
                        .collect();
                    let committed = {
                        let mut store = shared.lock_store();
                        store.commit(job_id as u64, novel)
                    };
                    match committed {
                        Ok(outcome) => {
                            if outcome.novel > 0 {
                                shared
                                    .observe
                                    .count(Scope::Server, Counter::StateCommits, 1);
                            }
                            if outcome.compacted {
                                shared
                                    .observe
                                    .count(Scope::Server, Counter::StateCompactions, 1);
                            }
                        }
                        Err(_) => {
                            // The job's report stands; the store just failed
                            // to learn from it. Surfaced via stats and the
                            // counter — never by corrupting the store.
                            shared
                                .observe
                                .count(Scope::Server, Counter::StateCommitFailures, 1);
                        }
                    }
                }
                if suppressed > 0 {
                    shared
                        .observe
                        .count(Scope::Server, Counter::DedupStoreHits, suppressed);
                }
                let mut st = shared.lock();
                st.running -= 1;
                st.completed += 1;
                st.duplicates_suppressed += suppressed;
                let job = &mut st.jobs[job_id];
                job.phase = JobPhase::Done;
                job.report = Some(report);
                let latency = job.admitted_at.elapsed();
                job.latency = Some(latency);
                drop(st);
                shared.observe.count(Scope::Server, Counter::JobsCompleted, 1);
                shared.observe.duration(
                    Scope::Server,
                    Counter::JobLatencyNanos,
                    u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
                );
                shared.settled.notify_all();
            }
            Ok(Err(e)) => {
                // A typed pipeline error (corrupt journal, serialization)
                // is not a shard death: the job is terminally failed and
                // quarantined with its journal for post-mortem.
                let mut st = shared.lock();
                st.running -= 1;
                st.quarantined += 1;
                let job = &mut st.jobs[job_id];
                job.phase = JobPhase::Quarantined;
                job.error = Some(e.to_string());
                job.latency = Some(job.admitted_at.elapsed());
                drop(st);
                shared.observe.count(Scope::Server, Counter::JobsQuarantined, 1);
                shared.settled.notify_all();
            }
            Err(payload) if payload.downcast_ref::<DeadlineAbort>().is_some() => {
                // A deliberate deadline abort, not a shard death: the job
                // rolls back to its (valid) journal prefix, nothing was
                // committed to the store, and this shard keeps running.
                let mut st = shared.lock();
                st.running -= 1;
                st.deadline_exceeded += 1;
                let job = &mut st.jobs[job_id];
                job.phase = JobPhase::DeadlineExceeded;
                job.latency = Some(job.admitted_at.elapsed());
                job.error =
                    Some(format!("deadline of {} ms exceeded mid-run", spec.deadline_ms));
                drop(st);
                shared
                    .observe
                    .count(Scope::Server, Counter::JobsDeadlineExceeded, 1);
                shared.settled.notify_all();
            }
            Err(payload) => {
                // Shard death. The dying thread is its own supervisor:
                // bookkeeping, restart policy, replacement spawn, exit.
                let message = panic_text(payload.as_ref());
                let quarantine;
                {
                    let mut st = shared.lock();
                    st.running -= 1;
                    st.shard_deaths[shard] += 1;
                    let max_restarts = shared.config.max_restarts;
                    let backoff_base = shared.config.backoff_base_ms;
                    let job = &mut st.jobs[job_id];
                    job.restarts += 1;
                    quarantine = job.restarts > max_restarts;
                    if quarantine {
                        job.phase = JobPhase::Quarantined;
                        job.error = Some(message);
                        job.latency = Some(job.admitted_at.elapsed());
                        st.quarantined += 1;
                    } else {
                        // Deterministic logical backoff, recorded instead
                        // of slept — doubling per consecutive death.
                        job.backoff_ms +=
                            backoff_base << (job.restarts.saturating_sub(1)).min(16);
                        job.phase = JobPhase::Queued;
                        st.queue.push_front(job_id);
                    }
                }
                shared.observe.count(Scope::Server, Counter::ShardRestarts, 1);
                if quarantine {
                    shared.observe.count(Scope::Server, Counter::JobsQuarantined, 1);
                    shared.settled.notify_all();
                } else {
                    shared.work.notify_one();
                }
                let replacement = Arc::clone(&shared);
                spawn_shard(replacement, shard);
                return;
            }
        }
    }
}

/// Renders a panic payload without taking ownership of it.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
