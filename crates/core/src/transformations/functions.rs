//! Function-level transformations: donor functions, calls, parameters,
//! inlining and function-control attributes.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use trx_ir::{
    Block, Function, FunctionControl, FunctionParam, Id, Instruction, Op, Terminator, Type,
    TypeDecl,
};

use super::util::{cover_ids, insert_at, retarget_phi_preds};
use crate::descriptor::InstructionDescriptor;
use crate::Context;

fn validates_after(ctx: &Context, apply: impl FnOnce(&mut Context)) -> bool {
    let mut probe = ctx.clone();
    apply(&mut probe);
    trx_ir::validate::validate(&probe.module).is_ok()
}

/// Sets a function's inlining control attribute.
///
/// The delta of Figure 3 — a single added `DontInline` — sufficed to expose
/// a SwiftShader bug; this transformation produces exactly such deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetFunctionControl {
    /// The function whose control changes.
    pub function: Id,
    /// The new control value.
    pub control: FunctionControl,
}

impl SetFunctionControl {
    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        ctx.module
            .function(self.function)
            .is_some_and(|f| f.control != self.control)
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        ctx.module
            .function_mut(self.function)
            .expect("precondition")
            .control = self.control;
    }
}

/// Adds a parameter to a function, updating every call site to pass a given
/// constant. The new parameter is recorded `Irrelevant` — "because the
/// values that are provided do not matter" (§3.2) — which later lets
/// `ReplaceIrrelevantId` enrich the arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddParameter {
    /// The function gaining a parameter.
    pub function: Id,
    /// Id for the new formal parameter.
    pub fresh_param_id: Id,
    /// The parameter's type.
    pub param_ty: Id,
    /// Constant passed at every existing call site.
    pub argument: Id,
    /// Id for the new function type, used only when no structurally equal
    /// type exists yet.
    pub fresh_function_type_id: Id,
}

impl AddParameter {
    fn new_type(&self, ctx: &Context) -> Option<Type> {
        let f = ctx.module.function(self.function)?;
        match ctx.module.type_of(f.ty)? {
            Type::Function { ret, params } => {
                let mut params = params.clone();
                params.push(self.param_ty);
                Some(Type::Function { ret: *ret, params })
            }
            _ => None,
        }
    }

    fn cheap_pre(&self, ctx: &Context) -> bool {
        if !ctx.fresh_and_distinct(&[self.fresh_param_id, self.fresh_function_type_id]) {
            return false;
        }
        if self.function == ctx.module.entry_point {
            return false;
        }
        if self.new_type(ctx).is_none() {
            return false;
        }
        ctx.module
            .constant(self.argument)
            .is_some_and(|c| c.ty == self.param_ty)
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        self.cheap_pre(ctx) && validates_after(ctx, |c| self.apply(c))
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let new_type = self.new_type(ctx).expect("precondition");
        let ty_id = match ctx.module.lookup_type(&new_type) {
            Some(existing) => existing,
            None => {
                ctx.module
                    .types
                    .push(TypeDecl { id: self.fresh_function_type_id, ty: new_type });
                cover_ids(&mut ctx.module, &[self.fresh_function_type_id]);
                self.fresh_function_type_id
            }
        };
        let function = ctx.module.function_mut(self.function).expect("precondition");
        function.ty = ty_id;
        function
            .params
            .push(FunctionParam { id: self.fresh_param_id, ty: self.param_ty });
        // Update every call site.
        let callee = self.function;
        let argument = self.argument;
        for f in &mut ctx.module.functions {
            for b in &mut f.blocks {
                for inst in &mut b.instructions {
                    if let Op::Call { callee: c, args } = &mut inst.op {
                        if *c == callee {
                            args.push(argument);
                        }
                    }
                }
            }
        }
        ctx.facts.add_irrelevant(self.fresh_param_id);
        cover_ids(&mut ctx.module, &[self.fresh_param_id]);
    }
}

/// Adds a complete function to the module.
///
/// The payload encodes the entire function with pre-assigned fresh ids, "so
/// that the donors are not required during reduction" (§3.2). When `livesafe`
/// is set, the payload must be structurally live-safe — loop-free, free of
/// `OpKill`/`OpUnreachable`, storing only through local pointers, and calling
/// only live-safe functions — and the `LiveSafe` fact is recorded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddFunction {
    /// The function to add, expressed in the target module's id space.
    pub function: Function,
    /// Whether the function is live-safe (callable from live code).
    pub livesafe: bool,
}

impl AddFunction {
    fn payload_ids(&self) -> Vec<Id> {
        let f = &self.function;
        let mut ids = vec![f.id];
        ids.extend(f.params.iter().map(|p| p.id));
        for b in &f.blocks {
            ids.push(b.label);
            ids.extend(b.instructions.iter().filter_map(|i| i.result));
        }
        ids
    }

    /// Labels of blocks that are targets of back edges (loop headers).
    fn back_edge_headers(&self) -> Vec<Id> {
        let index: HashMap<Id, usize> = self
            .function
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label, i))
            .collect();
        let n = self.function.blocks.len();
        let mut headers = Vec::new();
        if n == 0 {
            return headers;
        }
        let mut state = vec![0u8; n]; // 0 = unseen, 1 = visiting, 2 = done
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let succs = self.function.blocks[node].successors();
            if *cursor < succs.len() {
                let target = succs[*cursor];
                *cursor += 1;
                if let Some(&next) = index.get(&target) {
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => headers.push(self.function.blocks[next].label),
                        _ => {}
                    }
                }
            } else {
                state[node] = 2;
                stack.pop();
            }
        }
        headers.sort_unstable();
        headers.dedup();
        headers
    }

    /// Verifies the loop-limiter pattern on a back-edge header, per §3.2's
    /// "truncating loops via an iteration limit". The header must look like:
    ///
    /// ```text
    ///   ... phis ...
    ///   %ld  = OpLoad %counter          ; counter: function-local variable
    ///   %inc = OpIAdd %ld %positive     ; positive integer constant
    ///          OpStore %counter %inc
    ///   %cmp = OpSLessThan %ld %limit   ; integer constant bound
    ///   ...
    ///   OpBranchConditional %cond %continue %merge
    /// ```
    ///
    /// where `%cond` is `%cmp` or `LogicalAnd(_, %cmp)` (either operand) and
    /// the false arm is the loop merge. The counter may be used *only* by
    /// this load and store, so it increases monotonically and the header
    /// executes at most `limit` times.
    fn limiter_pattern_ok(&self, ctx: &Context, header: Id) -> bool {
        let Some(block) = self.function.block(header) else {
            return false;
        };
        let Some(trx_ir::Merge::Loop { merge, .. }) = block.merge else {
            return false;
        };
        let body = &block.instructions[block.phi_count()..];
        if body.len() < 4 {
            return false;
        }
        let (Some(ld), Op::Load { pointer: counter }) = (body[0].result, &body[0].op) else {
            return false;
        };
        let counter = *counter;
        // The counter is a local variable of this very function.
        let is_local_var = self
            .function
            .blocks
            .iter()
            .flat_map(|b| b.instructions.iter())
            .any(|i| i.result == Some(counter) && i.is_variable());
        if !is_local_var {
            return false;
        }
        let (Some(inc), Op::Binary { op: trx_ir::BinOp::IAdd, lhs, rhs }) =
            (body[1].result, &body[1].op)
        else {
            return false;
        };
        if *lhs != ld
            || ctx
                .module
                .constant(*rhs)
                .and_then(|c| c.value.as_int()).is_none_or(|v| v < 1)
        {
            return false;
        }
        let Op::Store { pointer, value } = &body[2].op else {
            return false;
        };
        if *pointer != counter || *value != inc {
            return false;
        }
        let (Some(cmp), Op::Binary { op: trx_ir::BinOp::SLessThan, lhs, rhs }) =
            (body[3].result, &body[3].op)
        else {
            return false;
        };
        if *lhs != ld || ctx.module.constant(*rhs).and_then(|c| c.value.as_int()).is_none() {
            return false;
        }
        // The counter must have no other uses.
        let counter_uses = self
            .function
            .blocks
            .iter()
            .flat_map(|b| b.instructions.iter())
            .map(|i| {
                let mut count = 0;
                i.op.for_each_id_operand(|id| {
                    if id == counter {
                        count += 1;
                    }
                });
                count
            })
            .sum::<usize>();
        if counter_uses != 2 {
            return false;
        }
        // The exit condition: false arm is the merge, and the condition is
        // the comparison (possibly conjoined with the original condition).
        let Terminator::BranchConditional { cond, true_target, false_target } =
            &block.terminator
        else {
            return false;
        };
        if *false_target != merge || *true_target == merge {
            return false;
        }
        if *cond == cmp {
            return true;
        }
        block.instructions.iter().any(|i| {
            i.result == Some(*cond)
                && matches!(
                    &i.op,
                    Op::Binary { op: trx_ir::BinOp::LogicalAnd, lhs, rhs }
                        if *lhs == cmp || *rhs == cmp
                )
        })
    }

    fn livesafe_structure_ok(&self, ctx: &Context) -> bool {
        // Loops are allowed only when truncated by a recognized iteration
        // limiter (§3.2).
        if !self
            .back_edge_headers()
            .into_iter()
            .all(|header| self.limiter_pattern_ok(ctx, header))
        {
            return false;
        }
        // Pointers that are safe to store through: locally declared
        // variables, pointer parameters (the caller must pass
        // IrrelevantPointee pointers), and access chains rooted at those.
        let mut safe_pointers: HashSet<Id> = self
            .function
            .params
            .iter()
            .filter(|p| {
                matches!(ctx.module.type_of(p.ty), Some(Type::Pointer { .. }))
            })
            .map(|p| p.id)
            .collect();
        for b in &self.function.blocks {
            for inst in &b.instructions {
                match &inst.op {
                    Op::Variable { .. } => {
                        safe_pointers.extend(inst.result);
                    }
                    Op::AccessChain { base, .. }
                        if safe_pointers.contains(base) => {
                            safe_pointers.extend(inst.result);
                        }
                    _ => {}
                }
            }
        }
        for b in &self.function.blocks {
            if matches!(b.terminator, Terminator::Kill | Terminator::Unreachable) {
                return false;
            }
            for inst in &b.instructions {
                match &inst.op {
                    Op::Store { pointer, .. } if !safe_pointers.contains(pointer) => {
                        return false;
                    }
                    Op::Call { callee, .. }
                        if !ctx.facts.function_is_live_safe(*callee) =>
                    {
                        return false;
                    }
                    _ => {}
                }
            }
        }
        true
    }

    fn cheap_pre(&self, ctx: &Context) -> bool {
        let ids = self.payload_ids();
        if !ctx.fresh_and_distinct(&ids) {
            return false;
        }
        if self.function.blocks.is_empty() {
            return false;
        }
        if self.livesafe && !self.livesafe_structure_ok(ctx) {
            return false;
        }
        true
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        self.cheap_pre(ctx) && validates_after(ctx, |c| self.apply(c))
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        ctx.module.functions.push(self.function.clone());
        let ids = self.payload_ids();
        cover_ids(&mut ctx.module, &ids);
        if self.livesafe {
            ctx.facts.add_live_safe(self.function.id);
        }
    }
}

/// Inserts a function call: to a live-safe function from anywhere (passing
/// `IrrelevantPointee` pointers for pointer parameters), or to any function
/// from a known-dead block (§3.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionCall {
    /// Id for the call's result.
    pub fresh_id: Id,
    /// The function called.
    pub callee: Id,
    /// Arguments, one per parameter.
    pub args: Vec<Id>,
    /// Where to insert the call.
    pub insert_before: InstructionDescriptor,
}

impl FunctionCall {
    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        if !ctx.fresh_and_distinct(&[self.fresh_id]) {
            return false;
        }
        if self.callee == ctx.module.entry_point {
            return false;
        }
        let Some(callee) = ctx.module.function(self.callee) else {
            return false;
        };
        let Some(Type::Function { params, .. }) = ctx.module.type_of(callee.ty).cloned()
        else {
            return false;
        };
        let Some(point) = self.insert_before.resolve(&ctx.module) else {
            return false;
        };
        if !ctx.insertion_ok(point) {
            return false;
        }
        let caller = &ctx.module.functions[point.function];
        if ctx.call_creates_cycle(caller.id, self.callee) {
            return false;
        }
        if self.args.len() != params.len() {
            return false;
        }
        let args_ok = self.args.iter().zip(&params).all(|(&arg, &want)| {
            ctx.module.value_type(arg) == Some(want) && ctx.available_at(point, arg)
        });
        if !args_ok {
            return false;
        }
        let block_label = caller.blocks[point.block].label;
        if ctx.facts.block_is_dead(block_label) {
            return true;
        }
        // Live call sites demand a live-safe callee and irrelevant pointees
        // for every pointer argument.
        ctx.facts.function_is_live_safe(self.callee)
            && self.args.iter().zip(&params).all(|(&arg, &want)| {
                match ctx.module.type_of(want) {
                    Some(Type::Pointer { .. }) => ctx.facts.pointee_is_irrelevant(arg),
                    _ => true,
                }
            })
    }

    pub(crate) fn apply(&self, ctx: &mut Context) {
        let point = self.insert_before.resolve(&ctx.module).expect("precondition");
        let callee = ctx.module.function(self.callee).expect("precondition");
        let ret = match ctx.module.type_of(callee.ty) {
            Some(Type::Function { ret, .. }) => *ret,
            _ => unreachable!("precondition checked the callee type"),
        };
        insert_at(
            &mut ctx.module,
            point,
            Instruction::with_result(
                self.fresh_id,
                ret,
                Op::Call { callee: self.callee, args: self.args.clone() },
            ),
        );
        // The result is unused at birth; its value cannot affect the output,
        // and only irrelevant use sites may ever consume it.
        ctx.facts.add_irrelevant(self.fresh_id);
        cover_ids(&mut ctx.module, &[self.fresh_id]);
    }
}

/// Inlines one call, duplicating the callee's blocks in place of the call.
///
/// Per §3.3 ("maximizing independence"), the instance carries an explicit
/// mapping from callee ids to fresh ids, fixed at fuzzing time; reduction can
/// then drop unrelated transformations without perturbing the ids the inlined
/// body uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InlineFunction {
    /// Result id of the call instruction to inline.
    pub call_result: Id,
    /// Fresh label for the block receiving control after the inlined body.
    pub ret_block_id: Id,
    /// Mapping from each callee label/result id to a fresh id.
    pub id_map: Vec<(Id, Id)>,
}

impl InlineFunction {
    fn callee_of_call<'m>(&self, ctx: &'m Context) -> Option<&'m Function> {
        let (_, inst) = ctx.module.find_result(self.call_result)?;
        match &inst.op {
            Op::Call { callee, .. } => ctx.module.function(*callee),
            _ => None,
        }
    }

    fn cheap_pre(&self, ctx: &Context) -> bool {
        let Some(callee) = self.callee_of_call(ctx) else {
            return false;
        };
        // Domain must cover callee labels and results exactly.
        let mut domain: Vec<Id> = callee.blocks.iter().map(|b| b.label).collect();
        domain.extend(
            callee
                .blocks
                .iter()
                .flat_map(|b| b.instructions.iter().filter_map(|i| i.result)),
        );
        domain.sort_unstable();
        let mut mapped: Vec<Id> = self.id_map.iter().map(|(old, _)| *old).collect();
        mapped.sort_unstable();
        if domain != mapped {
            return false;
        }
        let mut images: Vec<Id> = self.id_map.iter().map(|(_, new)| *new).collect();
        images.push(self.ret_block_id);
        ctx.fresh_and_distinct(&images)
    }

    pub(crate) fn precondition(&self, ctx: &Context) -> bool {
        self.cheap_pre(ctx) && validates_after(ctx, |c| self.apply(c))
    }

    #[allow(clippy::too_many_lines)]
    pub(crate) fn apply(&self, ctx: &mut Context) {
        let (loc, call_inst) = ctx.module.find_result(self.call_result).expect("precondition");
        let (call_ty, call_args, callee_id) = match &call_inst.op {
            Op::Call { callee, args } => (call_inst.ty, args.clone(), *callee),
            _ => unreachable!("precondition requires a call"),
        };
        let callee = ctx.module.function(callee_id).expect("precondition").clone();

        let map: HashMap<Id, Id> = self.id_map.iter().copied().collect();
        let param_map: HashMap<Id, Id> = callee
            .params
            .iter()
            .map(|p| p.id)
            .zip(call_args.iter().copied())
            .collect();
        let subst = |id: &mut Id| {
            if let Some(new) = map.get(id) {
                *id = *new;
            } else if let Some(arg) = param_map.get(id) {
                *id = *arg;
            }
        };

        // Copy and rename the callee body; rewrite returns into branches to
        // the return block and collect returned values for the result phi.
        let mut inlined: Vec<Block> = Vec::with_capacity(callee.blocks.len());
        let mut returned: Vec<(Id, Id)> = Vec::new();
        let mut hoisted_vars: Vec<Instruction> = Vec::new();
        for src in &callee.blocks {
            let mut block = src.clone();
            subst_block_label(&mut block, &subst);
            block.instructions.retain_mut(|inst| {
                if let Some(r) = &mut inst.result {
                    subst(r);
                }
                inst.op.for_each_id_operand_mut(&subst);
                if let Op::Phi { incoming } = &mut inst.op {
                    for (_, pred) in incoming {
                        subst(pred);
                    }
                }
                if inst.is_variable() {
                    hoisted_vars.push(inst.clone());
                    false
                } else {
                    true
                }
            });
            block.terminator.for_each_id_operand_mut(&subst);
            block.terminator.for_each_target_mut(&subst);
            if let Some(merge) = &mut block.merge {
                merge.for_each_label_mut(&subst);
            }
            match block.terminator {
                Terminator::Return => {
                    block.terminator = Terminator::Branch { target: self.ret_block_id };
                }
                Terminator::ReturnValue { value } => {
                    returned.push((value, block.label));
                    block.terminator = Terminator::Branch { target: self.ret_block_id };
                }
                _ => {}
            }
            inlined.push(block);
        }
        let inlined_entry = inlined[0].label;

        // Carve up the caller block.
        let function = &mut ctx.module.functions[loc.function];
        let caller_label = function.blocks[loc.block].label;
        let call_block = &mut function.blocks[loc.block];
        let tail = call_block.instructions.split_off(loc.index + 1);
        call_block.instructions.pop(); // the call itself
        let old_merge = call_block.merge.take();
        let old_terminator = std::mem::replace(
            &mut call_block.terminator,
            Terminator::Branch { target: inlined_entry },
        );

        // Assemble the return block: result phi (for non-void callees that
        // return), then the tail of the original block.
        let mut ret_instructions = Vec::new();
        let callee_returns_value = !returned.is_empty()
            && call_ty.is_some_and(|ty| {
                !matches!(ctx.module.type_of(ty), Some(Type::Void))
            });
        if callee_returns_value {
            ret_instructions.push(Instruction {
                result: Some(self.call_result),
                ty: call_ty,
                op: Op::Phi { incoming: returned },
            });
        }
        ret_instructions.extend(tail);
        let ret_block = Block {
            label: self.ret_block_id,
            instructions: ret_instructions,
            merge: old_merge,
            terminator: old_terminator,
        };

        let function = &mut ctx.module.functions[loc.function];
        let mut insertion = loc.block + 1;
        for block in inlined {
            function.blocks.insert(insertion, block);
            insertion += 1;
        }
        function.blocks.insert(insertion, ret_block);
        // Hoisted callee variables go to the caller's entry block.
        let entry = &mut function.blocks[0].instructions;
        entry.splice(0..0, hoisted_vars);
        // Successor phi edges from the caller block now originate at the
        // return block.
        retarget_phi_preds(&mut ctx.module, loc.function, caller_label, self.ret_block_id);

        let mut new_ids: Vec<Id> = self.id_map.iter().map(|(_, n)| *n).collect();
        new_ids.push(self.ret_block_id);
        cover_ids(&mut ctx.module, &new_ids);
    }
}

fn subst_block_label(block: &mut Block, subst: &impl Fn(&mut Id)) {
    subst(&mut block.label);
}
