//! Quickstart: the full transformation-based testing loop of Figures 1
//! and 2 — fuzz a reference shader, cross-check a simulated compiler,
//! reduce the bug-inducing transformation sequence, and print the
//! resulting bug report.
//!
//! Run with: `cargo run --release --example quickstart`

use transfuzz::core::{apply_sequence, Context};
use transfuzz::fuzzer::{Fuzzer, FuzzerOptions};
use transfuzz::harness::corpus::{donor_modules, reference_shader};
use transfuzz::ir::{disasm, interp};
use transfuzz::reducer::Reducer;
use transfuzz::targets::{catalog, TargetResult};

fn main() {
    let target = catalog::target_by_name("SwiftShader").expect("target exists");
    let donors = donor_modules();

    // Step 1 (Figure 1): take an original program that is well-defined on
    // its input, and apply many semantics-preserving transformations.
    for seed in 0.. {
        let reference = reference_shader(seed as usize % 21);
        let original = Context::new(reference.module.clone(), reference.inputs.clone())
            .expect("references validate");
        let fuzzed = Fuzzer::new(FuzzerOptions::default()).run(original.clone(), &donors, seed);

        // The variant is equivalent to the original by construction
        // (Theorem 2.6): the reference interpreter agrees on both.
        let reference_semantics =
            interp::execute(&original.module, &original.inputs).expect("original runs");
        let variant_semantics =
            interp::execute(&fuzzed.context.module, &original.inputs).expect("variant runs");
        assert_eq!(reference_semantics, variant_semantics);

        // Step 2: compile and execute both through the (buggy) target.
        let impl_original = target.execute(&original.module, &original.inputs);
        let impl_variant = target.execute(&fuzzed.context.module, &original.inputs);
        let crashed = matches!(impl_variant, TargetResult::CompilerCrash(_));
        let mismatched = matches!(
            (&impl_original, &impl_variant),
            (TargetResult::Executed(a), TargetResult::Executed(b)) if a != b
        );
        if !crashed && !mismatched {
            continue; // results agree: no bug found, continue fuzzing
        }

        println!(
            "seed {seed} ({}): bug found after {} transformations",
            reference.name,
            fuzzed.transformations.len()
        );
        println!("  Impl(original) = {impl_original:?}");
        println!("  Impl(variant)  = {impl_variant:?}\n");

        // Step 3 (Figure 2): delta-debug the transformation sequence down
        // to a 1-minimal subsequence that still triggers the bug.
        let observe = |ctx: &Context| target.execute(&ctx.module, &ctx.inputs);
        let wanted = impl_variant.clone();
        let reduction = Reducer::default().reduce(
            &original,
            &fuzzed.transformations,
            |variant| observe(variant) == wanted,
        );
        println!(
            "reduced {} transformations -> {} (in {} interestingness tests)",
            fuzzed.transformations.len(),
            reduction.sequence.len(),
            reduction.stats.tests_run
        );
        for t in &reduction.sequence {
            println!("  - {}", t.kind());
        }

        // Step 4: report the bug as a delta between the original and the
        // minimally-transformed variant (the Figure 3 form).
        let mut minimal = original.clone();
        apply_sequence(&mut minimal, &reduction.sequence);
        println!("\nbug-report delta (original vs reduced variant):");
        print!(
            "{}",
            disasm::changed_lines(
                &disasm::disassemble(&original.module),
                &disasm::disassemble(&minimal.module),
            )
        );
        return;
    }
}
