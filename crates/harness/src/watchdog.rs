//! Wall-clock watchdog supervision for individual harness jobs.
//!
//! The interpreter's step budget ([`trx_ir::interp::ExecConfig`]) bounds
//! *simulated* work, but a probe can still burn unbounded wall-clock time
//! outside the interpreter — pathological module cloning, a wedged pass, or
//! (in a real deployment) a compiler process that never returns. Real
//! harnesses such as gfauto wrap every tool invocation in a process-level
//! timeout for exactly this reason.
//!
//! [`supervise`] layers that wall-clock deadline *over* the step budget:
//! the job runs on a dedicated worker thread while the caller waits on a
//! channel with [`std::sync::mpsc::Receiver::recv_timeout`]. The two
//! budgets are complementary — the step budget is deterministic and trips
//! first for hostile-but-terminating modules, the watchdog is the
//! last-resort backstop for everything the step budget cannot see.
//!
//! # The leaked-thread caveat
//!
//! Safe Rust cannot kill a thread. When the deadline fires, the runaway
//! worker is *detached*, not destroyed: it keeps running until its own step
//! budget trips or the process exits, and its eventual channel send fails
//! harmlessly. This mirrors what process-level harnesses do with orphaned
//! compiler invocations, minus the SIGKILL. Callers that supervise
//! genuinely unbounded jobs should therefore pair the watchdog with a step
//! budget so leaked threads terminate on their own.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use trx_observe::{Counter, Scope, SinkHandle};

use crate::errors::panic_message;

/// Tuning for [`supervise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Wall-clock deadline per supervised job, in milliseconds. `0`
    /// disables the watchdog: the job runs inline on the caller's thread
    /// (panics are still caught), which is cheaper and fully deterministic.
    pub deadline_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { deadline_ms: 2_000 }
    }
}

/// How a supervised job ended.
#[derive(Debug)]
pub enum WatchdogOutcome<T> {
    /// The job finished within the deadline.
    Completed(T),
    /// The deadline fired; the worker thread was detached (see the module
    /// docs for why it cannot be killed).
    TimedOut {
        /// The deadline that fired, in milliseconds.
        deadline_ms: u64,
    },
    /// The job panicked with this message.
    Panicked(String),
}

/// Runs `job` under the wall-clock deadline of `config`.
///
/// Panics inside the job are caught and reported as
/// [`WatchdogOutcome::Panicked`] in every mode, so a supervised job can
/// never take down the caller.
pub fn supervise<T: Send + 'static>(
    config: WatchdogConfig,
    job: impl FnOnce() -> T + Send + 'static,
) -> WatchdogOutcome<T> {
    if config.deadline_ms == 0 {
        return match catch_unwind(AssertUnwindSafe(job)) {
            Ok(value) => WatchdogOutcome::Completed(value),
            Err(payload) => WatchdogOutcome::Panicked(panic_message(payload)),
        };
    }
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("trx-watchdog-job".to_owned())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            // The receiver is gone when the deadline already fired.
            let _ = tx.send(result);
        });
    if let Err(e) = spawned {
        return WatchdogOutcome::Panicked(format!("failed to spawn watchdog worker: {e}"));
    }
    match rx.recv_timeout(Duration::from_millis(config.deadline_ms)) {
        Ok(Ok(value)) => WatchdogOutcome::Completed(value),
        Ok(Err(payload)) => WatchdogOutcome::Panicked(panic_message(payload)),
        Err(_) => WatchdogOutcome::TimedOut { deadline_ms: config.deadline_ms },
    }
}

/// [`supervise`], bumping the volatile `watchdog_timeouts` counter on
/// `sink` under `scope` when the deadline fires. Timeouts are wall-clock
/// events, so the counter is excluded from deterministic snapshots.
pub fn supervise_observed<T: Send + 'static>(
    config: WatchdogConfig,
    sink: &SinkHandle,
    scope: Scope,
    job: impl FnOnce() -> T + Send + 'static,
) -> WatchdogOutcome<T> {
    let outcome = supervise(config, job);
    if matches!(outcome, WatchdogOutcome::TimedOut { .. }) {
        sink.count(scope, Counter::WatchdogTimeouts, 1);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_jobs_complete() {
        let outcome = supervise(WatchdogConfig::default(), || 6 * 7);
        assert!(matches!(outcome, WatchdogOutcome::Completed(42)));
    }

    #[test]
    fn inline_mode_completes_and_catches_panics() {
        let inline = WatchdogConfig { deadline_ms: 0 };
        assert!(matches!(supervise(inline, || "ok"), WatchdogOutcome::Completed("ok")));
        let panicked = supervise(inline, || -> u32 { panic!("inline boom") });
        match panicked {
            WatchdogOutcome::Panicked(message) => assert!(message.contains("inline boom")),
            other => panic!("expected a caught panic, got {other:?}"),
        }
    }

    #[test]
    fn worker_panics_are_caught() {
        let outcome = supervise(WatchdogConfig::default(), || -> u32 { panic!("boom") });
        match outcome {
            WatchdogOutcome::Panicked(message) => assert!(message.contains("boom")),
            other => panic!("expected a caught panic, got {other:?}"),
        }
    }

    #[test]
    fn slow_jobs_time_out() {
        // The leaked worker sleeps briefly and exits on its own.
        let config = WatchdogConfig { deadline_ms: 20 };
        let outcome = supervise(config, || {
            std::thread::sleep(Duration::from_millis(500));
            0u32
        });
        assert!(matches!(outcome, WatchdogOutcome::TimedOut { deadline_ms: 20 }));
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = WatchdogConfig { deadline_ms: 123 };
        let json = serde_json::to_string(&config).expect("serialises");
        let back: WatchdogConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, config);
    }
}
