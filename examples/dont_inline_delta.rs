//! The Figure 3 scenario, constructed directly: a single `DontInline`
//! attribute — one changed instruction between two equal-sized modules — is
//! enough to crash the simulated SwiftShader.
//!
//! Run with: `cargo run --example dont_inline_delta`

use transfuzz::core::transformations::SetFunctionControl;
use transfuzz::core::{apply, Context, Transformation};
use transfuzz::harness::corpus::reference_shader;
use transfuzz::ir::{disasm, FunctionControl};
use transfuzz::targets::{catalog, TargetResult};

fn main() {
    let swiftshader = catalog::target_by_name("SwiftShader").expect("target exists");

    // A call-shaped reference (it already contains a helper function, like
    // the 481-instruction original of Figure 3 contained functions).
    let reference = reference_shader(3);
    let original = Context::new(reference.module.clone(), reference.inputs.clone())
        .expect("reference validates");
    let helper = original
        .module
        .functions
        .iter()
        .map(|f| f.id)
        .find(|&id| id != original.module.entry_point)
        .expect("the reference has a helper");

    // One transformation: request that the helper not be inlined.
    let mut variant = original.clone();
    let t: Transformation =
        SetFunctionControl { function: helper, control: FunctionControl::DontInline }.into();
    assert!(apply(&mut variant, &t));

    // The original passes; the variant crashes the compiler.
    let on_original = swiftshader.execute(&original.module, &original.inputs);
    let on_variant = swiftshader.execute(&variant.module, &variant.inputs);
    println!("SwiftShader on original : {on_original:?}");
    println!("SwiftShader on variant  : {on_variant:?}\n");
    assert!(matches!(on_original, TargetResult::Executed(_)));
    assert!(matches!(on_variant, TargetResult::CompilerCrash(_)));

    // The bug-report delta (the form shown in Figure 3): both modules have
    // the same instruction count and differ in a single instruction.
    let original_text = disasm::disassemble(&original.module);
    let variant_text = disasm::disassemble(&variant.module);
    println!(
        "original: {} instructions; variant: {} instructions; delta:",
        original.module.instruction_count(),
        variant.module.instruction_count()
    );
    print!("{}", disasm::changed_lines(&original_text, &variant_text));
    println!(
        "\nIt is immediately apparent from the delta that the underlying bug \
         relates to the handling of function calls."
    );
}
