//! # trx-reducer
//!
//! Test-case reduction "almost for free" (§2.1, §3.4): delta debugging over
//! the *transformation sequence* rather than over program text.
//!
//! Because every transformation is semantics-preserving and sequence
//! application skips transformations whose preconditions fail
//! (Definition 2.5), any subsequence of a bug-inducing sequence yields a
//! valid, UB-free variant — no external sanitizers or oracles are needed.
//! The reducer searches for a **1-minimal** subsequence: one that still
//! triggers the bug, such that removing any single transformation stops it
//! triggering.
//!
//! The algorithm is the one described in §3.4: a chunk size `c` starts at
//! `⌊n/2⌋`; the sequence is divided into chunks of size `c` *from the back*
//! (the leading chunk may be smaller); each chunk is tentatively removed;
//! when no chunk of size `c` can be removed, `c` is halved; reduction stops
//! when no chunk of size 1 can be removed.
//!
//! After delta debugging, [`Reducer::reduce`] optionally shrinks the bodies
//! of any remaining `AddFunction` payloads — the analogue of spirv-fuzz's
//! final spirv-reduce pass, "merely an optimization" per §3.4.
//!
//! For *flaky* oracles — crashes that only reproduce some of the time, a
//! routine hazard in GPU-driver testing — [`ReducerOptions::votes`] turns
//! every interestingness query into a `k`-of-`n` vote. Each vote invokes
//! the oracle once and counts against [`ReducerOptions::max_tests`], so
//! voting trades test budget for robustness.
//!
//! ## The prefix-memoized engine
//!
//! A naive implementation pays O(|candidate|) transformation applications
//! per probe. This engine threads every candidate materialization through a
//! [`trx_core::PrefixCache`] of context snapshots keyed by
//! applied-transformation prefix ([`ReducerOptions::prefix_cache_budget`]),
//! so consecutive candidates replay only the part of the sequence the
//! previous probes have not already computed. The cache is behaviorally
//! invisible: verdicts, the [`ReductionLog`], and the reduced sequence are
//! byte-identical to the uncached engine at every budget (including 0,
//! which disables it).
//!
//! With [`Reducer::with_shared_cache`], the per-reduction cache is replaced
//! by a session onto a [`trx_core::SharedPrefixCache`] shared across all of
//! a run's concurrent reductions: sharded, byte-budgeted, and still
//! behaviorally invisible. Confirmed search candidates insert at full
//! priority; speculative prefetch inserts through a probationary segment
//! that can never evict confirmed-path entries.
//!
//! Two further layers are opt-in:
//!
//! * **Verdict memoization** ([`ReducerOptions::memoize_verdicts`]): probe
//!   verdicts are memoized by the candidate context's structural
//!   fingerprint, so candidates that *normalize* to an already-probed
//!   context are answered without invoking the oracle. A memo hit still
//!   counts against [`ReducerOptions::max_tests`] and is journaled as an
//!   ordinary [`ProbeRecord`], so `reduce_journaled` resume stays
//!   bit-identical; the memo itself is rebuilt deterministically from the
//!   replayed records. Off by default because it changes how often a
//!   *flaky* oracle is consulted (it is an exact optimization only for
//!   deterministic oracles), and it is only active for 1-of-1 voting.
//! * **Speculative parallel probing** ([`Reducer::reduce_speculative`],
//!   width [`ReducerOptions::speculation`]): the independent chunk-removal
//!   candidates of one delta-debugging round are probed concurrently on a
//!   [`trx_pool::WorkerPool`], assuming rejections (the common case).
//!   Outcomes are adopted in canonical back-to-front order as
//!   first-invocation hints, so for a deterministic oracle the log and
//!   result are byte-identical to the serial engine; speculative probes
//!   that turn out stale are discarded unjournaled and cost no test
//!   budget.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::channel;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use trx_core::{
    context_fingerprint, transformation_id, Context, InsertPriority, Materialized, PrefixCache,
    PrefixCacheStats, SharedCacheSession, SharedPrefixCache, Transformation,
};
use trx_observe::{Counter, Scope, SinkHandle};
use trx_pool::WorkerPool;

/// Statistics about a reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Number of interestingness-test invocations.
    pub tests_run: usize,
    /// Number of successful chunk removals.
    pub chunks_removed: usize,
    /// Number of instructions removed from `AddFunction` payloads by the
    /// shrink phase.
    pub payload_instructions_removed: usize,
    /// Number of probe invocations that faulted instead of answering.
    pub probe_faults: usize,
    /// Number of interestingness queries abandoned because the probe kept
    /// faulting on the candidate (poison-test quarantine).
    pub poisoned_queries: usize,
}

/// A fault raised by an interestingness probe itself — the worker crashed,
/// hung past its watchdog deadline, or otherwise failed to produce a
/// verdict. Distinct from the probe *answering* "not interesting".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeFault(pub String);

impl fmt::Display for ProbeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interestingness probe faulted: {}", self.0)
    }
}

impl Error for ProbeFault {}

/// One journaled probe invocation: the unit of the reducer's write-ahead
/// attempt log. The reduction search is a pure function of the record
/// stream, so replaying a log prefix resumes a crashed reduction on the
/// exact path the uninterrupted run would have taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeRecord {
    /// The probe ran to completion and answered.
    Answered(bool),
    /// The probe itself faulted; no verdict was produced.
    Faulted,
}

/// The journaled attempt log of a reduction: every probe invocation, in
/// order. Serialise records as they are emitted (see
/// [`Reducer::reduce_journaled`]'s `on_record`) and replay them after a
/// crash to resume deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionLog {
    /// The records, in invocation order.
    pub records: Vec<ProbeRecord>,
}

impl ReductionLog {
    /// Creates an empty log (a fresh, non-resumed reduction).
    #[must_use]
    pub fn new() -> Self {
        ReductionLog::default()
    }

    /// Number of journaled probe invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The outcome of a journaled reduction: the reduction itself plus the
/// complete attempt log (replayed prefix and live suffix).
#[derive(Debug, Clone)]
pub struct JournaledReduction {
    /// The reduction result.
    pub reduction: Reduction,
    /// The full attempt log; persisting it makes the reduction resumable
    /// from any prefix.
    pub log: ReductionLog,
}

/// Work counters for the prefix-memoized engine itself: how much the
/// caching layers saved. Unlike [`ReductionStats`] (which is part of the
/// journaled pipeline schema and describes the *search*), these describe
/// the *machinery* and may differ between serial and speculative runs that
/// are otherwise byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Prefix-cache counters (applications performed vs. saved, hit rate).
    pub cache: PrefixCacheStats,
    /// Interestingness queries answered from the verdict memo without
    /// invoking the oracle.
    pub memo_hits: u64,
    /// Probes launched speculatively on the worker pool.
    pub speculative_probes: u64,
    /// Speculative probe outcomes actually consumed as query verdicts
    /// (the rest were discarded as stale).
    pub speculative_hits: u64,
    /// Speculative batches suppressed by the cache hit-rate throttle
    /// ([`ReducerOptions::speculation_min_hit_permille`]).
    pub speculative_throttles: u64,
    /// Speculative batches suppressed by the eviction-pressure signal: the
    /// cache was churning (evicting or rejecting a large fraction of
    /// inserts), so prefetch replays would only thrash it further. Active
    /// whenever [`ReducerOptions::speculation_min_hit_permille`] is set.
    pub speculative_pressure_throttles: u64,
    /// Cache lookups whose materialization was never journaled as a probe:
    /// shrink candidates whose payload failed to re-apply, speculative
    /// prefetch materializations, and queries abandoned by budget
    /// exhaustion before casting a vote. For an unseeded, 1-of-1,
    /// deterministic run the books balance exactly:
    /// `cache.lookups == probes_journaled + unprobed_lookups`
    /// (a seeded run journals one extra initial record with no lookup).
    pub unprobed_lookups: u64,
}

/// The outcome of a reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The 1-minimal transformation subsequence.
    pub sequence: Vec<Transformation>,
    /// The reduced variant context (original plus `sequence`).
    pub context: Context,
    /// Counters describing the run.
    pub stats: ReductionStats,
    /// Counters describing the engine's caching and speculation layers.
    pub engine: EngineStats,
}

/// Configuration for the reducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducerOptions {
    /// Whether to run the `AddFunction` payload shrink phase after delta
    /// debugging.
    pub shrink_added_functions: bool,
    /// Safety cap on interestingness-test invocations. Every *vote* counts
    /// against this cap.
    pub max_tests: usize,
    /// Votes (`n`) cast per interestingness query. With a flaky oracle —
    /// a crash that only reproduces some of the time — a single vote makes
    /// the reducer keep chunks whose removal failed to reproduce by bad
    /// luck. Each vote invokes the interestingness closure once.
    pub votes: u32,
    /// Votes (`k`) that must say "interesting" for the query to pass.
    /// Clamped to `1..=votes`. The default 1-of-1 is exact single-shot
    /// testing; for an oracle with reproduction probability `p`, `k`-of-`n`
    /// drives the per-query false-negative rate from `1 - p` down to
    /// `P[Binomial(n, p) < k]`.
    pub votes_required: u32,
    /// Consecutive probe faults within one interestingness query before the
    /// candidate is quarantined as a poison test: the query resolves to
    /// "not interesting" (conservatively keeping the chunk) and
    /// [`ReductionStats::poisoned_queries`] is bumped. Faulting probe runs
    /// count against [`ReducerOptions::max_tests`] but cast no vote.
    pub poison_retries: u32,
    /// Maximum number of context snapshots (transition edges) the
    /// [`trx_core::PrefixCache`] may hold while materializing candidates.
    /// 0 disables the cache: every probe replays its whole candidate from
    /// the original context — the serial reference behavior. The cache is
    /// behaviorally invisible at any budget; raising it only trades memory
    /// for fewer transformation applications.
    pub prefix_cache_budget: usize,
    /// Memoize probe verdicts by candidate-context fingerprint, answering
    /// repeat contexts without invoking the oracle. Memo hits still count
    /// against [`ReducerOptions::max_tests`] and are journaled, keeping
    /// resume bit-identical. Only active for 1-of-1 voting; off by default
    /// because with a *flaky* oracle it changes which probes actually run
    /// (it is an exact optimization only for deterministic oracles).
    pub memoize_verdicts: bool,
    /// Speculation width for [`Reducer::reduce_speculative`]: how many of a
    /// round's upcoming chunk-removal candidates are probed concurrently.
    /// 0 means "match the worker pool's thread count"; 1 disables
    /// speculation. Ignored by the serial entry points.
    pub speculation: usize,
    /// Prefix-cache hit-rate floor, in permille (0–1000), below which new
    /// speculative batches stop launching. Speculative probing replays
    /// candidate prefixes eagerly, and when those replays keep missing the
    /// cache they thrash the LRU edge budget for no benefit; this throttle
    /// keys launch decisions off the observed hit rate (the same numbers
    /// the `cache_lookups`/`cache_hits` counters report). 0 disables the
    /// throttle. The throttle only suppresses *prefetch* — verdicts are
    /// still adopted in canonical order — so reduction output is
    /// byte-identical at any setting.
    pub speculation_min_hit_permille: u32,
}

impl ReducerOptions {
    /// `k`-of-`n` voting with a strict majority: `k = n / 2 + 1`.
    #[must_use]
    pub fn with_majority_votes(mut self, n: u32) -> Self {
        let n = n.max(1);
        self.votes = n;
        self.votes_required = n / 2 + 1;
        self
    }

    /// Explicit `k`-of-`n` voting.
    #[must_use]
    pub fn with_votes(mut self, required: u32, total: u32) -> Self {
        self.votes = total.max(1);
        self.votes_required = required.clamp(1, self.votes);
        self
    }
}

impl Default for ReducerOptions {
    fn default() -> Self {
        ReducerOptions {
            shrink_added_functions: true,
            max_tests: 100_000,
            votes: 1,
            votes_required: 1,
            poison_retries: 3,
            prefix_cache_budget: 256,
            memoize_verdicts: false,
            speculation: 1,
            speculation_min_hit_permille: 0,
        }
    }
}

/// The transformation-sequence reducer.
#[derive(Debug, Clone, Default)]
pub struct Reducer {
    options: ReducerOptions,
    sink: SinkHandle,
    scope: Scope,
    shared_cache: Option<Arc<SharedPrefixCache>>,
}

impl Reducer {
    /// Creates a reducer with the given options.
    #[must_use]
    pub fn new(options: ReducerOptions) -> Self {
        Reducer {
            options,
            sink: SinkHandle::noop(),
            scope: Scope::Pipeline,
            shared_cache: None,
        }
    }

    /// Materializes candidates through `cache` — a [`SharedPrefixCache`]
    /// shared with other concurrent reductions of the same run — instead of
    /// a private per-reduction [`PrefixCache`].
    ///
    /// The shared cache is keyed by `(state fingerprint, transformation
    /// id)`, so reductions of different bugs only collide on genuinely
    /// identical prefixes, where sharing is exactly the point. Like the
    /// private cache it is behaviorally invisible: the journal, reduced
    /// sequence and search stats are byte-identical to a private-cache run
    /// for a deterministic probe; only [`EngineStats`] differ. Confirmed
    /// search candidates insert at [`InsertPriority::Confirmed`];
    /// speculative prefetch inserts through the cache's probationary
    /// segment and can never evict confirmed-path entries.
    /// [`ReducerOptions::prefix_cache_budget`] is ignored while a shared
    /// cache is attached (the shared byte budget governs instead).
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<SharedPrefixCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Routes this reducer's counters to `sink`, attributed to `scope`
    /// (typically [`Scope::Reduction`] keyed by the bug's WAL index).
    ///
    /// Search counters ([`ReductionStats`]) and engine counters
    /// ([`EngineStats`], including the prefix cache's) are emitted in
    /// batches, so the default noop sink costs one `enabled()` check per
    /// probe, not per transformation.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle, scope: Scope) -> Self {
        self.sink = sink;
        self.scope = scope;
        self
    }

    /// Reduces `sequence` against `original`, keeping subsequences for which
    /// `interesting` returns `true` on the resulting variant.
    ///
    /// `interesting` receives the variant context produced by applying a
    /// candidate subsequence to `original`. It must return `true` for the
    /// full initial sequence, or the input is returned unchanged.
    pub fn reduce(
        &self,
        original: &Context,
        sequence: &[Transformation],
        mut interesting: impl FnMut(&Context) -> bool,
    ) -> Reduction {
        self.reduce_journaled(
            original,
            sequence,
            &ReductionLog::new(),
            |ctx| Ok(interesting(ctx)),
            |_, _| {},
        )
        .reduction
    }

    /// The engine for this reducer's sink configuration.
    fn engine<'a, P, R, S>(
        &self,
        original: &'a Context,
        initial: Option<&'a Context>,
        prior: &'a ReductionLog,
        probe: P,
        on_record: R,
        speculation: S,
    ) -> Engine<'a, P, R, S>
    where
        P: FnMut(&Context) -> Result<bool, ProbeFault>,
        R: FnMut(usize, ProbeRecord),
        S: Speculate,
    {
        Engine::new(
            self.options,
            self.shared_cache.clone(),
            self.sink.clone(),
            self.scope,
            original,
            initial,
            prior,
            probe,
            on_record,
            speculation,
        )
    }

    /// Reduces `sequence` against `original` with a fallible probe and a
    /// write-ahead attempt log.
    ///
    /// Every probe invocation appends one [`ProbeRecord`]; `on_record` fires
    /// for each record *as it is produced* (with its index), so callers can
    /// persist the log incrementally. The search consumes `prior`'s records
    /// before invoking `probe` at all: resuming a crashed reduction with the
    /// journaled prefix replays it onto the exact same search path,
    /// bit-identically — whatever the probe would answer today.
    ///
    /// A probe returning `Err` casts no vote; after
    /// [`ReducerOptions::poison_retries`] consecutive faults within one
    /// query the candidate is quarantined ("poison test"): the query
    /// resolves to *not interesting*, conservatively keeping the chunk.
    pub fn reduce_journaled(
        &self,
        original: &Context,
        sequence: &[Transformation],
        prior: &ReductionLog,
        probe: impl FnMut(&Context) -> Result<bool, ProbeFault>,
        on_record: impl FnMut(usize, ProbeRecord),
    ) -> JournaledReduction {
        self.engine(original, None, prior, probe, on_record, NoSpeculation).run(sequence)
    }

    /// Like [`Reducer::reduce_journaled`], but seeded with `variant`, the
    /// already-materialized context of the *full* sequence — in the triage
    /// pipeline the fuzzer built exactly this context while generating the
    /// test, so replaying the whole sequence once more just to run the
    /// initial interestingness check is pure waste.
    ///
    /// `variant` must equal the result of applying `sequence` to
    /// `original` (the fuzzer's replay contract). The probe then sees
    /// bit-identical contexts, and the journal, reduced sequence and
    /// statistics match the unseeded engine's byte for byte; only the
    /// engine-work counters ([`EngineStats`]) differ.
    pub fn reduce_journaled_seeded(
        &self,
        original: &Context,
        sequence: &[Transformation],
        variant: &Context,
        prior: &ReductionLog,
        probe: impl FnMut(&Context) -> Result<bool, ProbeFault>,
        on_record: impl FnMut(usize, ProbeRecord),
    ) -> JournaledReduction {
        self.engine(original, Some(variant), prior, probe, on_record, NoSpeculation)
            .run(sequence)
    }

    /// Like [`Reducer::reduce_journaled`], but probes a round's upcoming
    /// chunk-removal candidates concurrently on `pool`, assuming rejections
    /// (the common case once the sequence is near-minimal).
    ///
    /// Verdicts are adopted in canonical back-to-front order, so for a
    /// *deterministic* probe the [`ReductionLog`], the reduced sequence,
    /// and [`ReductionStats`] are byte-identical to the serial engine's:
    /// speculative probes that turn out stale are discarded without being
    /// journaled and cost no test budget. (For a flaky probe the two
    /// engines may legitimately diverge — wasted speculative probes consume
    /// oracle randomness the serial engine never sees.)
    ///
    /// The speculation width is [`ReducerOptions::speculation`]; 0 matches
    /// the pool's thread count. Speculation pauses while `prior` records
    /// are still being replayed, so resume never re-invokes the probe for
    /// journaled prefixes.
    pub fn reduce_speculative<'env, F>(
        &self,
        original: &Context,
        sequence: &[Transformation],
        prior: &ReductionLog,
        probe: F,
        on_record: impl FnMut(usize, ProbeRecord),
        pool: &WorkerPool<'env>,
    ) -> JournaledReduction
    where
        F: Fn(&Context) -> Result<bool, ProbeFault> + Send + Sync + 'env,
    {
        self.speculative_engine(original, sequence, None, prior, probe, on_record, pool)
    }

    /// [`Reducer::reduce_speculative`] seeded with the full sequence's
    /// already-materialized `variant` context, with the same contract as
    /// [`Reducer::reduce_journaled_seeded`].
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_speculative_seeded<'env, F>(
        &self,
        original: &Context,
        sequence: &[Transformation],
        variant: &Context,
        prior: &ReductionLog,
        probe: F,
        on_record: impl FnMut(usize, ProbeRecord),
        pool: &WorkerPool<'env>,
    ) -> JournaledReduction
    where
        F: Fn(&Context) -> Result<bool, ProbeFault> + Send + Sync + 'env,
    {
        self.speculative_engine(original, sequence, Some(variant), prior, probe, on_record, pool)
    }

    #[allow(clippy::too_many_arguments)]
    fn speculative_engine<'env, F>(
        &self,
        original: &Context,
        sequence: &[Transformation],
        initial: Option<&Context>,
        prior: &ReductionLog,
        probe: F,
        on_record: impl FnMut(usize, ProbeRecord),
        pool: &WorkerPool<'env>,
    ) -> JournaledReduction
    where
        F: Fn(&Context) -> Result<bool, ProbeFault> + Send + Sync + 'env,
    {
        let probe = Arc::new(probe);
        // The auto width (0) clamps to the host's actual parallelism: a
        // prefetch fleet wider than the CPU count only time-slices one
        // core — every materialization still runs, but the probes it was
        // supposed to hide now context-switch against the search thread.
        // Suppression never changes verdicts, so outputs stay
        // byte-identical across hosts; on a single-CPU machine the auto
        // width degenerates to 1 and the engine runs the serial cached
        // path. An explicit width is honored as given (tests and
        // experiments deliberately oversubscribe).
        let host = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
        let width = match self.options.speculation {
            0 => pool.threads().min(host),
            w => w,
        };
        let speculation = PoolSpeculation {
            pool,
            probe: Arc::clone(&probe),
            width,
            hints: HashMap::new(),
            launched: 0,
            consumed: 0,
        };
        let live = move |ctx: &Context| probe(ctx);
        self.engine(original, initial, prior, live, on_record, speculation).run(sequence)
    }
}

/// Outcome of one speculative probe run: the probe's answer, or the panic
/// it raised (re-raised only if the hint is actually consumed — a panic in
/// a probe the serial engine would never have run stays invisible).
type SpeculativeOutcome = std::thread::Result<Result<bool, ProbeFault>>;

/// Strategy hook for running probes ahead of the search. The engine calls
/// [`Speculate::prefetch`] with the contexts of upcoming candidates and
/// consumes outcomes via [`Speculate::take`] as first-invocation hints.
trait Speculate {
    /// Whether prefetching is worth preparing batches for.
    fn active(&self) -> bool {
        false
    }
    /// How many candidates to batch per prefetch.
    fn width(&self) -> usize {
        1
    }
    /// Whether outcomes from a previous batch are still pending.
    fn has_hints(&self) -> bool {
        false
    }
    /// Probes `jobs` (fingerprint, context) concurrently, blocking until
    /// the batch completes.
    fn prefetch(&mut self, jobs: Vec<(u64, Context)>) {
        drop(jobs);
    }
    /// Consumes the outcome for `fp`, if one was prefetched.
    fn take(&mut self, fp: u64) -> Option<SpeculativeOutcome> {
        let _ = fp;
        None
    }
    /// Discards pending outcomes (the sequence changed; they are stale).
    fn discard(&mut self) {}
    /// (probes launched, outcomes consumed).
    fn counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The serial engine: never prefetches.
struct NoSpeculation;

impl Speculate for NoSpeculation {}

/// Pool-backed speculation for [`Reducer::reduce_speculative`].
struct PoolSpeculation<'p, 'env, F> {
    pool: &'p WorkerPool<'env>,
    probe: Arc<F>,
    width: usize,
    hints: HashMap<u64, SpeculativeOutcome>,
    launched: u64,
    consumed: u64,
}

impl<'env, F> Speculate for PoolSpeculation<'_, 'env, F>
where
    F: Fn(&Context) -> Result<bool, ProbeFault> + Send + Sync + 'env,
{
    fn active(&self) -> bool {
        self.width > 1
    }

    fn width(&self) -> usize {
        self.width
    }

    fn has_hints(&self) -> bool {
        !self.hints.is_empty()
    }

    fn prefetch(&mut self, jobs: Vec<(u64, Context)>) {
        let (tx, rx) = channel::<(u64, SpeculativeOutcome)>();
        let mut expected = 0usize;
        for (fp, ctx) in jobs {
            if self.hints.contains_key(&fp) {
                continue;
            }
            let tx = tx.clone();
            let probe = Arc::clone(&self.probe);
            let ctx = Arc::new(ctx);
            self.pool.submit(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| probe(&ctx)));
                let _ = tx.send((fp, outcome));
            });
            expected += 1;
        }
        drop(tx);
        for _ in 0..expected {
            let (fp, outcome) = rx.recv().expect("pool dropped a speculative outcome");
            self.hints.insert(fp, outcome);
            self.launched += 1;
        }
    }

    fn take(&mut self, fp: u64) -> Option<SpeculativeOutcome> {
        let hint = self.hints.remove(&fp);
        if hint.is_some() {
            self.consumed += 1;
        }
        hint
    }

    fn discard(&mut self) {
        self.hints.clear();
    }

    fn counters(&self) -> (u64, u64) {
        (self.launched, self.consumed)
    }
}

/// [`ReducerOptions`] resolved into the engine's operating parameters.
/// Prefix-cache lookups observed before the speculation hit-rate throttle
/// may fire: a cold cache starts at a 0% hit rate, so the floor is only
/// meaningful once the rate is measurable.
const SPECULATION_WARMUP_LOOKUPS: u64 = 32;

/// Eviction-pressure ceiling, in permille of insert attempts, above which
/// speculative prefetch stops launching. Pressure counts evictions plus
/// outright rejections against insert attempts — a cache past this point
/// is replacing most of what speculation feeds it, so prefetch replays
/// cost transformation applications without ever being reusable. The
/// signal rides on the same switch as the hit-rate throttle
/// ([`ReducerOptions::speculation_min_hit_permille`] non-zero).
const SPECULATION_MAX_PRESSURE_PERMILLE: u64 = 500;

/// The engine's prefix-cache handle: a private per-reduction cache (the
/// default), or a session onto a [`SharedPrefixCache`] shared across the
/// run's concurrent reductions. Both are behaviorally invisible; the
/// handle only decides who pays for and who may reuse each snapshot.
enum CacheHandle {
    Private(PrefixCache),
    Shared(SharedCacheSession),
}

impl CacheHandle {
    fn set_sink(&mut self, sink: SinkHandle, scope: Scope) {
        match self {
            CacheHandle::Private(cache) => cache.set_sink(sink, scope),
            CacheHandle::Shared(session) => session.set_sink(sink, scope),
        }
    }

    /// Materializes `candidate` through the cache. `priority` chooses the
    /// shared cache's insert segment (confirmed vs. probationary) and is
    /// ignored by the private cache, which has no cross-reduction
    /// contention to protect against.
    fn materialize_with_ids(
        &mut self,
        original: &Context,
        candidate: &[Transformation],
        ids: &[u64],
        priority: InsertPriority,
    ) -> Materialized {
        match self {
            CacheHandle::Private(cache) => cache.materialize_with_ids(original, candidate, ids),
            CacheHandle::Shared(session) => {
                session.materialize_with_ids(original, candidate, ids, priority)
            }
        }
    }

    fn stats(&self) -> PrefixCacheStats {
        match self {
            CacheHandle::Private(cache) => cache.stats(),
            CacheHandle::Shared(session) => session.stats(),
        }
    }

    /// `(lookups, hits)` feeding the speculation hit-rate throttle. Like
    /// the pressure signal, a shared session reads the *global* cache —
    /// one short reduction sees too few of its own lookups to clear the
    /// warmup floor, but the cache it walks has a measurable hit rate the
    /// moment any sibling has warmed it.
    fn hit_signal(&self) -> (u64, u64) {
        match self {
            CacheHandle::Private(cache) => {
                let stats = cache.stats();
                (stats.lookups, stats.hits)
            }
            CacheHandle::Shared(session) => {
                let stats = session.cache().stats();
                (stats.lookups, stats.hits)
            }
        }
    }

    /// Evictions-plus-rejections per insert attempt, in permille. For the
    /// shared cache this is the *global* churn across every session — the
    /// whole point of the signal is that one reduction's speculation can
    /// feel another's working set. The private cache approximates it from
    /// its own stats (every applied transformation attempts one insert).
    fn eviction_pressure_permille(&self) -> u64 {
        match self {
            CacheHandle::Private(cache) => {
                let stats = cache.stats();
                stats.evictions.saturating_mul(1000) / stats.transformations_applied.max(1)
            }
            CacheHandle::Shared(session) => session.cache().eviction_pressure_permille(),
        }
    }
}

struct Resolved {
    max_tests: usize,
    votes: u32,
    votes_required: u32,
    poison_retries: u32,
    shrink_added_functions: bool,
    /// `memoize_verdicts` is only sound for 1-of-1 voting (a memo entry is
    /// one probe verdict, not a vote tally), so it is resolved against it.
    memoize: bool,
    speculation_min_hit_permille: u32,
}

/// The prefix-memoized reduction engine: one reduction run's state.
///
/// The search itself is a pure function of the probe-record stream; the
/// cache, memo and speculation layers only change how records are
/// *produced*, never which records a deterministic run contains.
struct Engine<'a, P, R, S> {
    opts: Resolved,
    sink: SinkHandle,
    scope: Scope,
    /// Probes that reached the live oracle (neither replayed, memoized,
    /// nor satisfied by a speculative hint).
    live_probes: u64,
    /// Speculative batches suppressed by the hit-rate throttle.
    speculative_throttles: u64,
    /// Speculative batches suppressed by the eviction-pressure signal.
    pressure_throttles: u64,
    /// Cache lookups never paired with a journaled probe (see
    /// [`EngineStats::unprobed_lookups`]).
    unprobed_lookups: u64,
    original: &'a Context,
    /// The full sequence's already-materialized context, when the caller
    /// has one (the fuzzer's variant): the initial interestingness check
    /// then skips the full-sequence replay entirely.
    initial: Option<&'a Context>,
    cache: CacheHandle,
    memo: HashMap<u64, bool>,
    memo_hits: u64,
    prior: &'a ReductionLog,
    replay_pos: usize,
    probe: P,
    on_record: R,
    speculation: S,
    log: ReductionLog,
    stats: ReductionStats,
}

impl<'a, P, R, S> Engine<'a, P, R, S>
where
    P: FnMut(&Context) -> Result<bool, ProbeFault>,
    R: FnMut(usize, ProbeRecord),
    S: Speculate,
{
    #[allow(clippy::too_many_arguments)]
    fn new(
        options: ReducerOptions,
        shared_cache: Option<Arc<SharedPrefixCache>>,
        sink: SinkHandle,
        scope: Scope,
        original: &'a Context,
        initial: Option<&'a Context>,
        prior: &'a ReductionLog,
        probe: P,
        on_record: R,
        speculation: S,
    ) -> Self {
        let votes = options.votes.max(1);
        let mut cache = match shared_cache {
            Some(shared) => CacheHandle::Shared(SharedCacheSession::new(shared)),
            None => CacheHandle::Private(PrefixCache::new(options.prefix_cache_budget)),
        };
        cache.set_sink(sink.clone(), scope);
        Engine {
            opts: Resolved {
                max_tests: options.max_tests,
                votes,
                votes_required: options.votes_required.clamp(1, votes),
                poison_retries: options.poison_retries.max(1),
                shrink_added_functions: options.shrink_added_functions,
                memoize: options.memoize_verdicts && votes == 1,
                speculation_min_hit_permille: options.speculation_min_hit_permille,
            },
            sink,
            scope,
            live_probes: 0,
            speculative_throttles: 0,
            pressure_throttles: 0,
            unprobed_lookups: 0,
            original,
            initial,
            cache,
            memo: HashMap::new(),
            memo_hits: 0,
            prior,
            replay_pos: 0,
            probe,
            on_record,
            speculation,
            log: ReductionLog::new(),
            stats: ReductionStats::default(),
        }
    }

    /// Emits one live (non-replayed) record: journals it and streams it to
    /// the caller.
    fn emit(&mut self, record: ProbeRecord) -> ProbeRecord {
        (self.on_record)(self.log.records.len(), record);
        self.log.records.push(record);
        record
    }

    /// One probe invocation. Sources, in priority order: the replayed
    /// journal prefix; on a query's first invocation only, the verdict
    /// memo, then a speculative hint; finally the live probe.
    fn invoke(&mut self, ctx: &Context, fp: Option<u64>, first: bool) -> ProbeRecord {
        if self.replay_pos < self.prior.records.len() {
            let record = self.prior.records[self.replay_pos];
            self.replay_pos += 1;
            self.log.records.push(record);
            return record;
        }
        if first {
            if let Some(fp) = fp {
                if self.opts.memoize {
                    if let Some(&verdict) = self.memo.get(&fp) {
                        self.memo_hits += 1;
                        return self.emit(ProbeRecord::Answered(verdict));
                    }
                }
                if let Some(outcome) = self.speculation.take(fp) {
                    let record = match outcome {
                        Ok(Ok(verdict)) => ProbeRecord::Answered(verdict),
                        Ok(Err(_)) => ProbeRecord::Faulted,
                        // The serial engine would have run this probe on
                        // the search thread; re-raise where it would have
                        // panicked.
                        Err(payload) => resume_unwind(payload),
                    };
                    return self.emit(record);
                }
            }
        }
        self.live_probes += 1;
        let started = self.sink.enabled().then(std::time::Instant::now);
        let record = match (self.probe)(ctx) {
            Ok(verdict) => ProbeRecord::Answered(verdict),
            Err(_) => ProbeRecord::Faulted,
        };
        if let Some(started) = started {
            self.sink.duration(
                self.scope,
                Counter::ProbeNanos,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        self.emit(record)
    }

    /// One k-of-n interestingness query over an already-materialized
    /// context. Early exit once the verdict is decided, so votes only cost
    /// budget while the outcome is open; `None` means the test budget ran
    /// out mid-query.
    fn query(&mut self, ctx: &Context, fp: Option<u64>) -> Option<bool> {
        let mut yes = 0u32;
        let mut cast = 0u32;
        let mut consecutive_faults = 0u32;
        let mut invocations = 0u32;
        let mut first_record = None;
        let outcome = 'query: {
            while cast < self.opts.votes {
                if self.stats.tests_run >= self.opts.max_tests {
                    break 'query None;
                }
                self.stats.tests_run += 1;
                let record = self.invoke(ctx, fp, invocations == 0);
                invocations += 1;
                if invocations == 1 {
                    first_record = Some(record);
                }
                match record {
                    ProbeRecord::Faulted => {
                        self.stats.probe_faults += 1;
                        consecutive_faults += 1;
                        if consecutive_faults >= self.opts.poison_retries {
                            self.stats.poisoned_queries += 1;
                            break 'query Some(false);
                        }
                    }
                    ProbeRecord::Answered(verdict) => {
                        consecutive_faults = 0;
                        cast += 1;
                        if verdict {
                            yes += 1;
                        }
                        if yes >= self.opts.votes_required {
                            break 'query Some(true);
                        }
                        let remaining = self.opts.votes - cast;
                        if yes + remaining < self.opts.votes_required {
                            break 'query Some(false);
                        }
                    }
                }
            }
            Some(false)
        };
        // Memoize single-invocation answered queries. The rule is a pure
        // function of the record stream, so replaying a journal rebuilds
        // the memo the original run had at every point — resume stays
        // bit-identical even though memo hits skip the live probe.
        if self.opts.memoize && invocations == 1 {
            if let (Some(fp), Some(ProbeRecord::Answered(verdict))) = (fp, first_record) {
                self.memo.insert(fp, verdict);
            }
        }
        outcome
    }

    /// Materializes `candidate` (through the prefix cache) and queries it.
    /// The verdict is `None` when the test budget ran out; the context is
    /// always returned, so callers never replay the sequence again.
    fn check(&mut self, candidate: &[Transformation], ids: &[u64]) -> (Option<bool>, Context) {
        let m = self.cache.materialize_with_ids(
            self.original,
            candidate,
            ids,
            InsertPriority::Confirmed,
        );
        let fp = self.resolve_fp(&m);
        let journaled = self.log.records.len();
        let verdict = self.query(&m.context, fp);
        // A query abandoned by budget exhaustion before any invocation
        // journals nothing; the lookup goes on the unprobed ledger so
        // cache and journal accounting stay reconcilable.
        if self.log.records.len() == journaled {
            self.unprobed_lookups += 1;
        }
        (verdict, m.context)
    }

    /// The fingerprint accompanying a materialized candidate: the cache's,
    /// or computed on demand when a cache-less run still needs one for the
    /// memo or speculation hints.
    fn resolve_fp(&self, m: &trx_core::Materialized) -> Option<u64> {
        m.fingerprint.or_else(|| {
            (self.opts.memoize || self.speculation.active())
                .then(|| context_fingerprint(&m.context))
        })
    }

    /// Launches the next batch of speculative probes: the chunk-removal
    /// candidates the back-to-front round will try next, assuming every
    /// probe up to them answers "not interesting" (rejections keep the
    /// sequence unchanged, so those candidates are exactly predictable).
    fn maybe_prefetch(&mut self, current: &[Transformation], ids: &[u64], end: usize, chunk: usize) {
        if !self.speculation.active() || self.speculation.has_hints() {
            return;
        }
        // Never speculate while replaying a journal: replayed queries must
        // not re-invoke the probe at all.
        if self.replay_pos < self.prior.records.len() {
            return;
        }
        // Hit-rate throttle: once the cache has warmed up, a hit rate below
        // the configured floor means speculative replays are thrashing the
        // LRU edge budget — stop launching new batches until it recovers.
        // Suppressing prefetch never changes verdicts, only who computes
        // them, so the reduction output stays byte-identical.
        if self.opts.speculation_min_hit_permille > 0 {
            let (lookups, hits) = self.cache.hit_signal();
            if lookups >= SPECULATION_WARMUP_LOOKUPS
                && hits.saturating_mul(1000)
                    < lookups.saturating_mul(u64::from(self.opts.speculation_min_hit_permille))
            {
                self.speculative_throttles += 1;
                return;
            }
            // Eviction-pressure signal: a cache churning through most of
            // what it admits (shared caches feel every session's churn
            // here) gains nothing from eager prefetch replays — they only
            // displace entries the confirmed path still wants.
            if lookups >= SPECULATION_WARMUP_LOOKUPS
                && self.cache.eviction_pressure_permille() > SPECULATION_MAX_PRESSURE_PERMILLE
            {
                self.pressure_throttles += 1;
                return;
            }
        }
        let width = self.speculation.width();
        let mut jobs = Vec::new();
        let mut seen = HashSet::new();
        let mut e = end;
        while e > 0 && jobs.len() < width {
            let s = e.saturating_sub(chunk);
            let mut candidate = Vec::with_capacity(current.len() - (e - s));
            candidate.extend_from_slice(&current[..s]);
            candidate.extend_from_slice(&current[e..]);
            let cand_ids: Vec<u64> = ids[..s].iter().chain(&ids[e..]).copied().collect();
            // Prefetch materializations insert speculatively: on the shared
            // cache they pass through the probationary segment and can
            // never displace confirmed-path entries. The later confirmed
            // check() re-looks the candidate up and journals the probe;
            // this lookup itself is never journaled.
            let m = self.cache.materialize_with_ids(
                self.original,
                &candidate,
                &cand_ids,
                InsertPriority::Speculative,
            );
            self.unprobed_lookups += 1;
            let fp = m
                .fingerprint
                .unwrap_or_else(|| context_fingerprint(&m.context));
            // Contexts the memo already answers never need a probe; a
            // duplicate fingerprint within the batch needs only one.
            if !(self.opts.memoize && self.memo.contains_key(&fp)) && seen.insert(fp) {
                jobs.push((fp, m.context));
            }
            e = s;
        }
        if !jobs.is_empty() {
            self.speculation.prefetch(jobs);
        }
    }

    /// The §3.4 delta-debugging search, followed by the optional payload
    /// shrink phase.
    fn run(mut self, sequence: &[Transformation]) -> JournaledReduction {
        let mut current: Vec<Transformation> = sequence.to_vec();
        let mut ids: Vec<u64> = current.iter().map(transformation_id).collect();

        // The full sequence must be interesting to begin with. Its
        // materialized context doubles as the result context on the
        // early-return paths — no separate replay. When the caller handed
        // over the already-built variant (the fuzzer's own output), even
        // the first replay is skipped: the prefix chain is then rebuilt
        // lazily, and only up to the deepest prefix a candidate ever
        // needs.
        let (initial_verdict, initial_ctx) = match self.initial {
            Some(ctx) => {
                let fp = (self.opts.memoize || self.speculation.active())
                    .then(|| context_fingerprint(ctx));
                (self.query(ctx, fp), ctx.clone())
            }
            None => self.check(&current, &ids),
        };
        let mut current_ctx = initial_ctx;
        match initial_verdict {
            Some(true) => {}
            Some(false) | None => return self.finish(current, current_ctx),
        }

        let mut chunk_size = (current.len() / 2).max(1);
        let mut budget_exhausted = false;
        loop {
            let mut removed_any = false;
            // Chunks from the back: the final chunk is [n - c, n), then
            // [n - 2c, n - c), ...; the leading chunk may be smaller than c.
            let mut end = current.len();
            while end > 0 {
                let start = end.saturating_sub(chunk_size);
                self.maybe_prefetch(&current, &ids, end, chunk_size);
                let mut candidate = Vec::with_capacity(current.len() - (end - start));
                candidate.extend_from_slice(&current[..start]);
                candidate.extend_from_slice(&current[end..]);
                let cand_ids: Vec<u64> =
                    ids[..start].iter().chain(&ids[end..]).copied().collect();
                let (verdict, ctx) = self.check(&candidate, &cand_ids);
                match verdict {
                    Some(true) => {
                        current = candidate;
                        ids = cand_ids;
                        current_ctx = ctx;
                        self.stats.chunks_removed += 1;
                        removed_any = true;
                        // Continue leftwards over the shortened sequence;
                        // pending speculative outcomes assumed the old
                        // sequence and are stale.
                        self.speculation.discard();
                        end = start.min(current.len());
                    }
                    Some(false) => {
                        end = start;
                    }
                    None => {
                        budget_exhausted = true;
                        end = 0;
                    }
                }
            }
            if budget_exhausted {
                break;
            }
            if removed_any {
                // Another pass at the same granularity (§3.4 repeats until
                // no chunk of size c can be removed).
                continue;
            }
            if chunk_size == 1 {
                break;
            }
            chunk_size = (chunk_size / 2).max(1);
        }

        if self.opts.shrink_added_functions && !budget_exhausted {
            self.shrink_payloads(&mut current, &mut ids, &mut current_ctx);
        }

        self.finish(current, current_ctx)
    }

    /// Tries to delete instructions from the bodies of `AddFunction`
    /// payloads while the test stays interesting (the spirv-reduce
    /// analogue). Candidates share the prefix cache: only the modified
    /// payload and its suffix are re-applied per shrink attempt.
    fn shrink_payloads(
        &mut self,
        current: &mut Vec<Transformation>,
        ids: &mut Vec<u64>,
        current_ctx: &mut Context,
    ) {
        for index in 0..current.len() {
            let Transformation::AddFunction(payload) = &current[index] else {
                continue;
            };
            let mut payload = payload.clone();
            let mut progress = true;
            while progress {
                progress = false;
                // Try removing each instruction, from the back.
                let positions: Vec<(usize, usize)> = payload
                    .function
                    .blocks
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, b)| (0..b.instructions.len()).map(move |ii| (bi, ii)))
                    .collect();
                for &(bi, ii) in positions.iter().rev() {
                    let mut candidate_payload = payload.clone();
                    candidate_payload.function.blocks[bi].instructions.remove(ii);
                    let mut candidate = current.clone();
                    candidate[index] = Transformation::AddFunction(candidate_payload.clone());
                    let mut cand_ids = ids.clone();
                    cand_ids[index] = transformation_id(&candidate[index]);
                    let m = self.cache.materialize_with_ids(
                        self.original,
                        &candidate,
                        &cand_ids,
                        InsertPriority::Confirmed,
                    );
                    // The shrunken payload must still apply — otherwise the
                    // variant silently loses the whole function. Skipped
                    // candidates cost a lookup but never a probe.
                    if !m.mask[index] {
                        self.unprobed_lookups += 1;
                        continue;
                    }
                    let fp = self.resolve_fp(&m);
                    let journaled = self.log.records.len();
                    let verdict = self.query(&m.context, fp);
                    if self.log.records.len() == journaled {
                        self.unprobed_lookups += 1;
                    }
                    match verdict {
                        None => return,
                        Some(true) => {
                            payload = candidate_payload;
                            *current = candidate;
                            *ids = cand_ids;
                            *current_ctx = m.context;
                            self.stats.payload_instructions_removed += 1;
                            progress = true;
                            break;
                        }
                        Some(false) => {}
                    }
                }
            }
        }
    }

    fn finish(self, sequence: Vec<Transformation>, context: Context) -> JournaledReduction {
        let (speculative_probes, speculative_hits) = self.speculation.counters();
        let engine = EngineStats {
            cache: self.cache.stats(),
            memo_hits: self.memo_hits,
            speculative_probes,
            speculative_hits,
            speculative_throttles: self.speculative_throttles,
            speculative_pressure_throttles: self.pressure_throttles,
            unprobed_lookups: self.unprobed_lookups,
        };
        if self.sink.enabled() {
            let scope = self.scope;
            let stats = self.stats;
            // Search counters (logical level; the cache already streamed
            // its own counters per materialize).
            self.sink.count(scope, Counter::TestsRun, stats.tests_run as u64);
            self.sink.count(scope, Counter::ChunksRemoved, stats.chunks_removed as u64);
            self.sink.count(
                scope,
                Counter::PayloadInstructionsRemoved,
                stats.payload_instructions_removed as u64,
            );
            self.sink.count(scope, Counter::ProbeFaults, stats.probe_faults as u64);
            self.sink.count(scope, Counter::PoisonedQueries, stats.poisoned_queries as u64);
            // Engine counters (engine level: fresh-run invariant, shrink on
            // resume because replayed probes skip live work).
            self.sink.count(scope, Counter::MemoHits, engine.memo_hits);
            self.sink.count(scope, Counter::LiveProbes, self.live_probes);
            self.sink.count(scope, Counter::SpeculativeLaunches, engine.speculative_probes);
            self.sink.count(scope, Counter::SpeculativeHits, engine.speculative_hits);
            self.sink.count(scope, Counter::SpeculativeThrottles, engine.speculative_throttles);
            self.sink.count(scope, Counter::CacheUnprobedLookups, engine.unprobed_lookups);
            // Volatile: pressure reads global shared-cache churn, which
            // depends on sibling-reduction timing.
            self.sink.count(
                scope,
                Counter::SpeculativePressureThrottles,
                engine.speculative_pressure_throttles,
            );
        }
        JournaledReduction {
            reduction: Reduction { sequence, context, stats: self.stats, engine },
            log: self.log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_core::transformations::SetFunctionControl;
    use trx_core::apply_sequence;
    use trx_ir::{FunctionControl, Inputs, ModuleBuilder};

    pub(crate) fn tiny_context() -> Context {
        let mut b = ModuleBuilder::new();
        let c = b.constant_int(1);
        let t_int = b.type_int();
        let mut h = b.begin_function(t_int, &[]);
        h.ret_value(c);
        let helper = h.finish();
        let mut f = b.begin_entry_function("main");
        let r = f.call(helper, vec![]);
        f.store_output("out", r);
        f.ret();
        f.finish();
        Context::new(b.finish(), Inputs::default()).unwrap()
    }

    pub(crate) fn helper_of(ctx: &Context) -> trx_ir::Id {
        ctx.module
            .functions
            .iter()
            .map(|f| f.id)
            .find(|&id| id != ctx.module.entry_point)
            .unwrap()
    }

    /// A synthetic sequence of N SetFunctionControl flips.
    pub(crate) fn flip_sequence(ctx: &Context, n: usize) -> Vec<Transformation> {
        let helper = helper_of(ctx);
        (0..n)
            .map(|i| {
                let control = if i % 2 == 0 {
                    FunctionControl::DontInline
                } else {
                    FunctionControl::Inline
                };
                SetFunctionControl { function: helper, control }.into()
            })
            .collect()
    }

    #[test]
    fn reduces_to_single_needed_transformation() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        // Interesting iff the helper ends with DontInline; the 1-minimal
        // answer is a single DontInline flip.
        let reduction = Reducer::default().reduce(&ctx, &sequence, |variant| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        });
        assert_eq!(reduction.sequence.len(), 1);
        assert_eq!(
            reduction.context.module.function(helper).unwrap().control,
            FunctionControl::DontInline
        );
        assert!(reduction.stats.tests_run > 0);
        assert!(reduction.stats.chunks_removed > 0);
    }

    #[test]
    fn uninteresting_input_returned_unchanged() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 5);
        let reduction = Reducer::default().reduce(&ctx, &sequence, |_| false);
        assert_eq!(reduction.sequence.len(), 5);
    }

    #[test]
    fn empty_sequence_is_handled() {
        let ctx = tiny_context();
        let reduction = Reducer::default().reduce(&ctx, &[], |_| true);
        assert!(reduction.sequence.is_empty());
    }

    #[test]
    fn result_is_one_minimal() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 13);
        let helper = helper_of(&ctx);
        let is_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let reduction = Reducer::default().reduce(&ctx, &sequence, is_interesting);
        // Dropping any single remaining transformation must lose
        // interestingness.
        for skip in 0..reduction.sequence.len() {
            let mut candidate = reduction.sequence.clone();
            candidate.remove(skip);
            let mut variant = ctx.clone();
            apply_sequence(&mut variant, &candidate);
            assert!(
                !is_interesting(&variant),
                "sequence is not 1-minimal: position {skip} removable"
            );
        }
    }

    #[test]
    fn test_budget_is_respected() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 40);
        let helper = helper_of(&ctx);
        let reducer = Reducer::new(ReducerOptions {
            shrink_added_functions: false,
            max_tests: 3,
            ..ReducerOptions::default()
        });
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        });
        assert!(reduction.stats.tests_run <= 3);
    }

    #[test]
    fn budget_exhaustion_keeps_best_so_far() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let is_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let full = flip_sequence(&ctx, 31);
        for budget in 1..40 {
            let reducer = Reducer::new(ReducerOptions {
                shrink_added_functions: false,
                max_tests: budget,
                ..ReducerOptions::default()
            });
            let reduction = reducer.reduce(&ctx, &full, is_interesting);
            assert!(reduction.stats.tests_run <= budget);
            // Whatever the budget, the kept sequence is never worse than
            // the input: it still triggers the bug.
            assert!(
                is_interesting(&reduction.context),
                "budget {budget}: best-so-far sequence lost interestingness"
            );
            assert!(reduction.sequence.len() <= full.len());
        }
    }

    #[test]
    fn votes_count_against_the_budget() {
        let ctx = tiny_context();
        let sequence = flip_sequence(&ctx, 4);
        // 3-of-3 voting with an always-true oracle: the initial query alone
        // costs 3 tests.
        let mut calls = 0usize;
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                max_tests: 3,
                ..ReducerOptions::default()
            }
            .with_votes(3, 3),
        );
        let reduction = reducer.reduce(&ctx, &sequence, |_| {
            calls += 1;
            true
        });
        assert_eq!(calls, 3, "each vote invokes the oracle");
        assert_eq!(reduction.stats.tests_run, 3);
        // Budget spent on the initial query: nothing was reduced.
        assert_eq!(reduction.sequence.len(), 4);
    }

    #[test]
    fn majority_vote_short_circuits() {
        let ctx = tiny_context();
        // 2-of-3 with an always-true oracle decides after 2 votes.
        let mut calls = 0usize;
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                ..ReducerOptions::default()
            }
            .with_majority_votes(3),
        );
        let reduction = reducer.reduce(&ctx, &[], |_| {
            calls += 1;
            true
        });
        assert_eq!(calls, 2, "a decided vote stops early");
        assert!(reduction.sequence.is_empty());
    }

    /// A deterministic flaky oracle: reports a genuine "interesting" with
    /// probability ~`1 - flake`, never reports a spurious one (the
    /// crash-doesn't-reproduce failure mode).
    struct FlakyOracle {
        state: u64,
        flake_millis: u64,
    }

    impl FlakyOracle {
        fn flakes(&mut self) -> bool {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            z % 1000 < self.flake_millis
        }
    }

    #[test]
    fn journaled_reduction_matches_plain_reduction() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let plain = Reducer::default().reduce(&ctx, &sequence, oracle);
        let mut streamed = Vec::new();
        let journaled = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| Ok(oracle(variant)),
            |index, record| streamed.push((index, record)),
        );
        assert_eq!(journaled.reduction.sequence, plain.sequence);
        assert_eq!(journaled.reduction.stats, plain.stats);
        assert_eq!(journaled.log.len(), plain.stats.tests_run);
        // on_record streamed every record, in order, with its index.
        assert_eq!(streamed.len(), journaled.log.len());
        for (i, (index, record)) in streamed.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*record, journaled.log.records[i]);
        }
    }

    #[test]
    fn resume_from_any_log_prefix_is_bit_identical() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| Ok(oracle(variant)),
            |_, _| {},
        );
        // Crash after k journaled probes, for every k: resuming replays the
        // prefix without touching the probe and lands on the same result.
        for k in 0..=golden.log.len() {
            let prefix = ReductionLog { records: golden.log.records[..k].to_vec() };
            let mut live_probes = 0usize;
            let resumed = Reducer::default().reduce_journaled(
                &ctx,
                &sequence,
                &prefix,
                |variant| {
                    live_probes += 1;
                    Ok(oracle(variant))
                },
                |_, _| {},
            );
            assert_eq!(resumed.reduction.sequence, golden.reduction.sequence, "prefix {k}");
            assert_eq!(resumed.reduction.stats, golden.reduction.stats, "prefix {k}");
            assert_eq!(resumed.log, golden.log, "prefix {k}");
            assert_eq!(live_probes, golden.log.len() - k, "prefix {k}");
        }
    }

    #[test]
    fn resume_with_full_log_never_invokes_probe() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                Ok(variant.module.function(helper).unwrap().control
                    == FunctionControl::DontInline)
            },
            |_, _| {},
        );
        // A probe that would change every answer — and must never run.
        let resumed = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &golden.log,
            |_| panic!("resume with a complete log must not invoke the probe"),
            |_, _| {},
        );
        assert_eq!(resumed.reduction.sequence, golden.reduction.sequence);
        assert_eq!(resumed.log, golden.log);
    }

    #[test]
    fn transient_probe_faults_are_retried() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let clean = Reducer::default().reduce(&ctx, &sequence, oracle);
        // Every third probe faults once; poison_retries 3 absorbs each.
        let mut calls = 0usize;
        let faulty = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                calls += 1;
                if calls.is_multiple_of(3) {
                    Err(ProbeFault("injected".into()))
                } else {
                    Ok(oracle(variant))
                }
            },
            |_, _| {},
        );
        assert_eq!(faulty.reduction.sequence, clean.sequence);
        assert!(faulty.reduction.stats.probe_faults > 0);
        assert_eq!(faulty.reduction.stats.poisoned_queries, 0);
        // Faults cost budget: more tests than the clean run.
        assert!(faulty.reduction.stats.tests_run > clean.stats.tests_run);
    }

    #[test]
    fn persistent_probe_faults_quarantine_the_candidate() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        // The probe faults persistently on every uninteresting variant —
        // poison candidates. The reducer must quarantine those queries
        // (verdict "not interesting", which here matches the oracle) and
        // still converge on the same answer as a clean run.
        let journaled = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| {
                if oracle(variant) {
                    Ok(true)
                } else {
                    Err(ProbeFault("poison".into()))
                }
            },
            |_, _| {},
        );
        assert!(journaled.reduction.stats.poisoned_queries > 0);
        assert_eq!(
            journaled.reduction.stats.probe_faults,
            journaled.reduction.stats.poisoned_queries * 3,
            "each quarantine costs exactly poison_retries faulting probes"
        );
        // The result still triggers the bug.
        assert!(oracle(&journaled.reduction.context));
    }

    #[test]
    fn poisoned_reduction_resumes_bit_identically() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 9);
        let oracle = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let probe = |variant: &Context| {
            if oracle(variant) {
                Ok(true)
            } else {
                Err(ProbeFault("poison".into()))
            }
        };
        let golden = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            probe,
            |_, _| {},
        );
        let mid = golden.log.len() / 2;
        let prefix = ReductionLog { records: golden.log.records[..mid].to_vec() };
        let resumed = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &prefix,
            probe,
            |_, _| {},
        );
        assert_eq!(resumed.reduction.sequence, golden.reduction.sequence);
        assert_eq!(resumed.reduction.stats, golden.reduction.stats);
        assert_eq!(resumed.log, golden.log);
    }

    #[test]
    fn majority_vote_reduces_under_flaky_oracle() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let truly_interesting = |variant: &Context| {
            variant.module.function(helper).unwrap().control == FunctionControl::DontInline
        };
        let sequence = flip_sequence(&ctx, 17);

        // 30% of genuine reproductions are missed.
        let mut oracle = FlakyOracle { state: 0xdead_beef, flake_millis: 300 };
        let reducer = Reducer::new(
            ReducerOptions {
                shrink_added_functions: false,
                ..ReducerOptions::default()
            }
            .with_votes(2, 5),
        );
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            truly_interesting(variant) && !oracle.flakes()
        });

        // The reduced sequence must trigger the bug *deterministically* —
        // verified against the non-flaky oracle.
        assert!(truly_interesting(&reduction.context));
        assert!(
            reduction.sequence.len() <= 3,
            "2-of-5 voting should get close to minimal, got {}",
            reduction.sequence.len()
        );
        assert!(reduction.stats.tests_run > reduction.stats.chunks_removed);
    }
}

#[cfg(test)]
mod shrink_tests {
    use super::*;
    use trx_core::transformations::AddFunction;
    use trx_ir::{
        BinOp, Block, Function, FunctionControl, FunctionParam, Id, Inputs, Instruction,
        ModuleBuilder, Op, Terminator, Type,
    };

    /// Builds a context plus an AddFunction whose payload contains dead
    /// instructions the shrink phase can delete.
    fn context_and_bloated_function() -> (Context, Vec<Transformation>) {
        let mut b = ModuleBuilder::new();
        let t_int = b.type_int();
        let c1 = b.constant_int(1);
        let mut f = b.begin_entry_function("main");
        f.store_output("out", c1);
        f.ret();
        f.finish();
        let module = b.finish();
        let ctx = Context::new(module, Inputs::default()).unwrap();

        let fn_ty = ctx
            .module
            .lookup_type(&Type::Function { ret: t_int, params: vec![t_int] }).unwrap_or_else(|| {
                    // Declare via a supporting transformation.
                    Id::new(ctx.module.id_bound)
                });
        let mut sequence: Vec<Transformation> = Vec::new();
        let mut next = ctx.module.id_bound;
        let mut fresh = || {
            let id = Id::new(next);
            next += 1;
            id
        };
        let declared_fn_ty = if ctx
            .module
            .lookup_type(&Type::Function { ret: t_int, params: vec![t_int] })
            .is_none()
        {
            let id = fresh();
            sequence.push(
                trx_core::transformations::AddType {
                    fresh_id: id,
                    ty: Type::Function { ret: t_int, params: vec![t_int] },
                }
                .into(),
            );
            id
        } else {
            fn_ty
        };
        let fid = fresh();
        let pid = fresh();
        let label = fresh();
        // Three dead adds, then the returned value.
        let dead1 = fresh();
        let dead2 = fresh();
        let dead3 = fresh();
        let kept = fresh();
        let mk = |result, lhs, rhs| {
            Instruction::with_result(
                result,
                t_int,
                Op::Binary { op: BinOp::IAdd, lhs, rhs },
            )
        };
        let function = Function {
            id: fid,
            ty: declared_fn_ty,
            control: FunctionControl::None,
            params: vec![FunctionParam { id: pid, ty: t_int }],
            blocks: vec![Block {
                label,
                instructions: vec![
                    mk(dead1, pid, pid),
                    mk(dead2, dead1, pid),
                    mk(dead3, dead2, dead2),
                    mk(kept, pid, pid),
                ],
                merge: None,
                terminator: Terminator::ReturnValue { value: kept },
            }],
        };
        sequence.push(AddFunction { function, livesafe: true }.into());
        (ctx, sequence)
    }

    #[test]
    fn payload_shrink_removes_dead_instructions() {
        let (ctx, sequence) = context_and_bloated_function();
        // Interesting iff the module contains a second function at all.
        let reduction = Reducer::default().reduce(&ctx, &sequence, |variant| {
            variant.module.functions.len() == 2
        });
        assert!(
            reduction.stats.payload_instructions_removed >= 3,
            "the three dead adds should be shrunk away, got {}",
            reduction.stats.payload_instructions_removed
        );
        // The surviving payload still applies and keeps the function.
        assert_eq!(reduction.context.module.functions.len(), 2);
    }

    #[test]
    fn payload_shrink_is_cache_invariant() {
        // The shrink phase routes candidates through the prefix cache;
        // disabling the cache (budget 0) must not change a single byte of
        // the journal or the result, only the amount of replay work.
        let (ctx, sequence) = context_and_bloated_function();
        let run = |budget: usize| {
            Reducer::new(ReducerOptions {
                prefix_cache_budget: budget,
                ..ReducerOptions::default()
            })
            .reduce_journaled(
                &ctx,
                &sequence,
                &ReductionLog::new(),
                |variant| Ok(variant.module.functions.len() == 2),
                |_, _| {},
            )
        };
        let uncached = run(0);
        let cached = run(256);
        assert_eq!(cached.log, uncached.log);
        assert_eq!(cached.reduction.sequence, uncached.reduction.sequence);
        assert_eq!(cached.reduction.stats, uncached.reduction.stats);
        assert_eq!(
            cached.reduction.context.module,
            uncached.reduction.context.module
        );
        assert!(
            cached.reduction.engine.cache.transformations_applied
                < uncached.reduction.engine.cache.transformations_applied,
            "shrink candidates should reuse cached prefixes"
        );
    }

    #[test]
    fn payload_shrink_can_be_disabled() {
        let (ctx, sequence) = context_and_bloated_function();
        let reducer =
            Reducer::new(ReducerOptions {
                shrink_added_functions: false,
                max_tests: 10_000,
                ..ReducerOptions::default()
            });
        let reduction = reducer.reduce(&ctx, &sequence, |variant| {
            variant.module.functions.len() == 2
        });
        assert_eq!(reduction.stats.payload_instructions_removed, 0);
    }

    #[test]
    fn unprobed_lookups_reconcile_cache_lookups_with_the_journal() {
        // Unseeded, 1-of-1, deterministic, no speculation: every cache
        // lookup either journals exactly one probe record or lands on the
        // unprobed ledger — the shrink phase's mask-skipped candidates are
        // the interesting source.
        let (ctx, sequence) = context_and_bloated_function();
        let out = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            |variant| Ok(variant.module.functions.len() == 2),
            |_, _| {},
        );
        let engine = &out.reduction.engine;
        assert!(
            engine.unprobed_lookups > 0,
            "shrinking a payload with data dependencies must skip some candidates"
        );
        assert_eq!(
            engine.cache.lookups,
            out.log.len() as u64 + engine.unprobed_lookups,
            "cache lookups and the journal no longer reconcile"
        );
    }
}

#[cfg(test)]
mod shared_cache_tests {
    use super::tests::{flip_sequence, helper_of, tiny_context};
    use super::*;
    use trx_core::SharedPrefixCache;
    use trx_ir::FunctionControl;

    #[test]
    fn shared_cache_reduction_is_byte_identical_to_private() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        let oracle = move |variant: &Context| {
            Ok(variant.module.function(helper).unwrap().control == FunctionControl::DontInline)
        };
        let private = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            oracle,
            |_, _| {},
        );
        for shards in [1usize, 3, 8] {
            let cache = Arc::new(SharedPrefixCache::new(1 << 20, shards));
            let shared = Reducer::default()
                .with_shared_cache(Arc::clone(&cache))
                .reduce_journaled(&ctx, &sequence, &ReductionLog::new(), oracle, |_, _| {});
            assert_eq!(shared.log, private.log, "{shards} shards: journals differ");
            assert_eq!(shared.reduction.sequence, private.reduction.sequence);
            assert_eq!(shared.reduction.stats, private.reduction.stats);
            assert_eq!(shared.reduction.context.module, private.reduction.context.module);
            cache.debug_check_accounting();
        }
    }

    #[test]
    fn shared_cache_reuses_sibling_work_across_reductions() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        let cache = Arc::new(SharedPrefixCache::new(1 << 20, 4));
        let run = || {
            Reducer::default()
                .with_shared_cache(Arc::clone(&cache))
                .reduce_journaled(
                    &ctx,
                    &sequence,
                    &ReductionLog::new(),
                    move |variant| {
                        Ok(variant.module.function(helper).unwrap().control
                            == FunctionControl::DontInline)
                    },
                    |_, _| {},
                )
                .reduction
        };
        let first = run();
        let second = run();
        // Identical reductions: the second session walks entirely on the
        // first one's snapshots.
        assert_eq!(second.sequence, first.sequence);
        assert!(
            second.engine.cache.transformations_applied
                < first.engine.cache.transformations_applied,
            "second reduction re-applied as much as the first: {} vs {}",
            second.engine.cache.transformations_applied,
            first.engine.cache.transformations_applied,
        );
        assert!(second.engine.cache.transformations_saved > 0);
    }

    #[test]
    fn speculative_shared_cache_is_byte_identical_even_under_pressure() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        let oracle = move |variant: &Context| {
            Ok(variant.module.function(helper).unwrap().control == FunctionControl::DontInline)
        };
        let reference = Reducer::default().reduce_journaled(
            &ctx,
            &sequence,
            &ReductionLog::new(),
            oracle,
            |_, _| {},
        );
        // A deliberately tiny shared budget: inserts churn, eviction
        // pressure spikes, and probationary inserts self-reject — none of
        // which may move a byte of the reduction output.
        let cache = Arc::new(SharedPrefixCache::new(2048, 2));
        let got = trx_pool::with_pool(3, |pool| {
            Reducer::new(ReducerOptions {
                speculation: 4,
                speculation_min_hit_permille: 200,
                ..ReducerOptions::default()
            })
            .with_shared_cache(Arc::clone(&cache))
            .reduce_speculative(&ctx, &sequence, &ReductionLog::new(), oracle, |_, _| {}, pool)
        });
        assert_eq!(got.log, reference.log, "speculation over the shared cache moved the journal");
        assert_eq!(got.reduction.sequence, reference.reduction.sequence);
        assert_eq!(got.reduction.stats, reference.reduction.stats);
        assert_eq!(got.reduction.context.module, reference.reduction.context.module);
        cache.debug_check_accounting();
    }

    #[test]
    fn balance_holds_for_shared_cache_and_budget_exhaustion() {
        let ctx = tiny_context();
        let helper = helper_of(&ctx);
        let sequence = flip_sequence(&ctx, 17);
        for max_tests in [5usize, 100_000] {
            for shared in [false, true] {
                let mut reducer = Reducer::new(ReducerOptions {
                    max_tests,
                    ..ReducerOptions::default()
                });
                if shared {
                    reducer = reducer
                        .with_shared_cache(Arc::new(SharedPrefixCache::new(1 << 20, 2)));
                }
                let out = reducer.reduce_journaled(
                    &ctx,
                    &sequence,
                    &ReductionLog::new(),
                    move |variant| {
                        Ok(variant.module.function(helper).unwrap().control
                            == FunctionControl::DontInline)
                    },
                    |_, _| {},
                );
                let engine = &out.reduction.engine;
                assert_eq!(
                    engine.cache.lookups,
                    out.log.len() as u64 + engine.unprobed_lookups,
                    "max_tests {max_tests}, shared {shared}: books don't balance"
                );
            }
        }
    }
}
