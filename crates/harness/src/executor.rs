//! A resilient campaign executor: retry, quarantine, checkpoint/resume.
//!
//! [`crate::campaign::run_campaign`] assumes a well-behaved target: workers
//! never panic, compiled code never spins, and every `(test, target)` cell
//! resolves on the first try. Real compiler-testing campaigns (the paper's
//! §4.1 runs span days) meet none of those assumptions — harnesses like
//! gfauto wrap every tool invocation in timeouts and retries precisely
//! because drivers wedge, crash spuriously, and flake.
//!
//! This module provides the hardened equivalent:
//!
//! * every worker runs under [`std::panic::catch_unwind`], so an injected
//!   (or real) panic becomes a ledger entry instead of tearing down the run;
//! * suspected hangs — a [`Fault::StepLimitExceeded`] out of the
//!   interpreter's fuel budget — and panics are retried up to a bounded
//!   budget with deterministic exponential backoff;
//! * a per-target circuit breaker quarantines a target after a configurable
//!   number of *consecutive* hard failures, so one wedged driver cannot
//!   starve the rest of the campaign;
//! * crash signatures can be re-confirmed; a disagreeing re-run is recorded
//!   as an [`FailureKind::UnstableOutcome`] (flaky) observation;
//! * progress is checkpointed every `checkpoint_interval` tests and can be
//!   resumed bit-identically.
//!
//! # Determinism
//!
//! Tests are processed in fixed-size batches (one batch per checkpoint
//! interval). Within a batch, tests run in parallel, but each `(test,
//! target)` cell is resolved entirely by one worker, and the quarantine set
//! is a snapshot taken at the batch boundary — so no worker's behaviour
//! depends on thread scheduling. After the batch, results are folded
//! serially in test order. Two runs with the same seeds, targets and
//! configuration therefore produce identical outcomes and ledgers.
//!
//! Note one deliberate divergence from [`crate::campaign::classify`]: the
//! plain oracle reports a step-limit fault as a crash signature (wrong code
//! that diverges *is* a compiler bug), while this executor treats it as a
//! suspected harness-level hang to retry and, if persistent, quarantine.
//! Campaigns that want step-limit faults classified as bugs should raise
//! the target's fuel budget well above any legitimate execution.

use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use trx_core::Context;
use trx_ir::{Fault, Inputs, Module};
use trx_observe::{Counter, Scope, SinkHandle};
use trx_targets::{TargetResult, TestTarget};

use crate::campaign::{
    module_for_target, try_generate_test, BugSignature, CampaignOutcome, Tool,
};
use crate::corpus::donor_modules;
use crate::errors::{panic_message, HarnessError};

/// Tuning knobs for the resilient executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Retries per `(test, target)` cell after the first attempt fails with
    /// a panic or suspected hang.
    pub max_retries: u32,
    /// Base of the (logical) exponential backoff: retry `k` adds
    /// `backoff_base_ms << (k - 1)` milliseconds. Recorded in the ledger,
    /// not slept — the simulated targets fail deterministically, so real
    /// waiting would only slow the experiments down.
    pub backoff_base_ms: u64,
    /// Consecutive hard failures (panic or hang, post-retry) before a
    /// target is quarantined for the rest of the campaign.
    pub quarantine_threshold: u32,
    /// Extra confirmation runs for an observed crash signature. A
    /// disagreeing confirmation is recorded as an unstable outcome and the
    /// last observation wins.
    pub crash_confirm_runs: u32,
    /// Tests per batch; a checkpoint is emitted after each batch.
    pub checkpoint_interval: usize,
    /// Worker threads; `0` means "one per available core".
    pub threads: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            max_retries: 2,
            backoff_base_ms: 10,
            quarantine_threshold: 4,
            crash_confirm_runs: 1,
            checkpoint_interval: 8,
            threads: 0,
        }
    }
}

/// Why a `(test, target)` cell (or a whole test) failed to resolve cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The test itself could not be generated (invalid reference).
    GenerationFailed,
    /// The worker panicked on every attempt.
    Panic,
    /// Every attempt exhausted the interpreter fuel budget.
    Hang,
    /// A crash signature did not reproduce consistently across
    /// confirmation runs.
    UnstableOutcome,
    /// The target was quarantined by the circuit breaker.
    Quarantined,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FailureKind::GenerationFailed => "generation-failed",
            FailureKind::Panic => "panic",
            FailureKind::Hang => "hang",
            FailureKind::UnstableOutcome => "unstable-outcome",
            FailureKind::Quarantined => "quarantined",
        };
        f.write_str(name)
    }
}

/// One recorded incident.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Index of the test (0-based within the campaign).
    pub test_index: usize,
    /// The target involved, if the incident was target-specific.
    pub target: Option<String>,
    /// What went wrong.
    pub kind: FailureKind,
    /// Attempts spent on the cell (1 = no retries).
    pub attempts: u32,
    /// Total logical backoff accumulated across retries.
    pub backoff_ms: u64,
    /// Human-readable detail (panic payload, fault text, ...).
    pub message: String,
}

/// The campaign's error ledger: every incident the executor absorbed
/// instead of crashing. An empty ledger after a chaos campaign means the
/// fault injector never fired, not that the executor is perfect.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorLedger {
    /// Incidents in the order they were folded (test order, then target
    /// order — deterministic).
    pub entries: Vec<LedgerEntry>,
}

impl ErrorLedger {
    /// Number of recorded incidents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing went wrong.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of incidents of one kind.
    #[must_use]
    pub fn count(&self, kind: FailureKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }
}

/// A serialisable snapshot of campaign progress, emitted after every batch.
///
/// Feeding the snapshot back into [`resume_campaign`] continues the run
/// from `completed_tests` and produces the same final outcome as an
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// The tool under campaign (display name, stable across versions).
    pub tool: String,
    /// First seed of the campaign.
    pub seed_base: u64,
    /// Total tests the campaign will run.
    pub total_tests: usize,
    /// Target names, in campaign order.
    pub target_names: Vec<String>,
    /// Tests fully folded so far.
    pub completed_tests: usize,
    /// `per_test[i][t]` = signature test `i` triggered on target `t`
    /// (row-major: one row per completed test).
    pub per_test: Vec<Vec<Option<BugSignature>>>,
    /// Incidents so far.
    pub ledger: ErrorLedger,
    /// Circuit-breaker state: consecutive hard failures per target.
    pub consecutive_failures: Vec<u32>,
    /// For each target, the test index at which it was quarantined.
    pub quarantined_at: Vec<Option<usize>>,
    /// Retries spent so far.
    pub retries_spent: u64,
    /// Cells skipped because their target was quarantined.
    pub skipped_by_quarantine: u64,
}

impl CampaignCheckpoint {
    /// Serialises the checkpoint to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Serialization`] if the serializer fails.
    pub fn to_json(&self) -> Result<String, HarnessError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Serialization`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, HarnessError> {
        Ok(serde_json::from_str(json)?)
    }

    fn validate<T: TestTarget>(
        &self,
        tool: Tool,
        targets: &[T],
        tests: usize,
        seed_base: u64,
    ) -> Result<(), HarnessError> {
        let mismatch = |reason: String| HarnessError::CheckpointMismatch { reason };
        if self.tool != tool.name() {
            return Err(mismatch(format!(
                "checkpoint is for tool {:?}, campaign runs {:?}",
                self.tool,
                tool.name()
            )));
        }
        if self.seed_base != seed_base {
            return Err(mismatch(format!(
                "checkpoint seed base {} != campaign seed base {seed_base}",
                self.seed_base
            )));
        }
        if self.total_tests != tests {
            return Err(mismatch(format!(
                "checkpoint expects {} tests, campaign runs {tests}",
                self.total_tests
            )));
        }
        let names: Vec<&str> = targets.iter().map(TestTarget::name).collect();
        if self.target_names != names {
            return Err(mismatch(format!(
                "checkpoint targets {:?} != campaign targets {names:?}",
                self.target_names
            )));
        }
        if self.completed_tests > tests
            || self.per_test.len() != self.completed_tests
            || self.consecutive_failures.len() != names.len()
            || self.quarantined_at.len() != names.len()
            || self.per_test.iter().any(|row| row.len() != names.len())
        {
            return Err(mismatch("progress arrays are inconsistent".to_owned()));
        }
        Ok(())
    }
}

/// The result of a resilient campaign: the (possibly partial) outcome plus
/// everything the executor absorbed along the way.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Per-target signatures, exactly as [`CampaignOutcome`] shapes them.
    /// Cells that never resolved (persistent hang/panic, quarantine,
    /// generation failure) hold `None` — the campaign degrades to partial
    /// results instead of dying.
    pub outcome: CampaignOutcome,
    /// Every incident, in deterministic order.
    pub ledger: ErrorLedger,
    /// Quarantined targets as `(name, test index when the breaker opened)`.
    pub quarantined: Vec<(String, usize)>,
    /// Total retries spent across all cells.
    pub retries_spent: u64,
    /// Cells skipped because their target was quarantined.
    pub skipped_by_quarantine: u64,
    /// Tests processed (always equals the requested count; individual
    /// cells may still be `None`).
    pub tests_completed: usize,
}

/// How one attempt at a `(test, target)` cell ended.
#[derive(Debug)]
pub enum Attempt {
    /// The oracle resolved (possibly to "no bug").
    Signature(Option<BugSignature>),
    /// The fuel budget ran out — a suspected hang.
    Hang,
    /// The worker panicked with this message.
    Panicked(String),
}

/// `classify`, but separating suspected hangs from bug signatures and
/// catching panics. See the module docs for the hang-vs-bug tradeoff.
pub(crate) fn attempt_classify<T: TestTarget + ?Sized>(
    tool: Tool,
    target: &T,
    original: &Context,
    variant_module: &Module,
    inputs: &Inputs,
) -> Attempt {
    let run = || {
        let original_module = module_for_target(tool, &original.module);
        let prepared_variant = module_for_target(tool, variant_module);
        match target.execute(&prepared_variant, inputs) {
            TargetResult::RuntimeFault(Fault::StepLimitExceeded) => Attempt::Hang,
            TargetResult::CompilerCrash(signature) => {
                Attempt::Signature(Some(BugSignature::Crash(signature)))
            }
            TargetResult::RuntimeFault(fault) => Attempt::Signature(Some(
                BugSignature::Crash(format!("runtime fault: {fault}")),
            )),
            TargetResult::Executed(variant_result) => {
                match target.execute_reference(&original_module, inputs) {
                    TargetResult::RuntimeFault(Fault::StepLimitExceeded) => Attempt::Hang,
                    TargetResult::Executed(original_result) => Attempt::Signature(
                        (original_result != variant_result)
                            .then_some(BugSignature::Miscompilation),
                    ),
                    _ => Attempt::Signature(None),
                }
            }
        }
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(attempt) => attempt,
        Err(payload) => Attempt::Panicked(panic_message(payload)),
    }
}

/// The fixed reference side of one reduction's interestingness probes.
///
/// Every probe of a reduction cross-checks the same `(original module,
/// inputs)` pair, yet [`attempt_classify`] re-prepares and re-executes the
/// reference — a fresh module decode and interpreter run per probe. The
/// reference path is deterministic by contract ([`TestTarget::
/// execute_reference`] stays clean even under fault injection), so its
/// result can be computed once per reduction and replayed from memory.
///
/// The first fill happens under the lock, so concurrent speculative probes
/// still produce exactly one execution — keeping the engine-level
/// `modules_decoded`/`decode_reuses` counters thread-invariant.
pub struct ReferenceOracle {
    /// The already-prepared (tool-encoded and re-decoded) reference module.
    module: Module,
    inputs: Inputs,
    result: std::sync::Mutex<Option<TargetResult>>,
}

impl ReferenceOracle {
    /// Prepares the reference side of a reduction's probes: `original` is
    /// the unreduced context the variant is cross-checked against.
    #[must_use]
    pub fn new(tool: Tool, original: &Context) -> Self {
        ReferenceOracle {
            module: module_for_target(tool, &original.module),
            inputs: original.inputs.clone(),
            result: std::sync::Mutex::new(None),
        }
    }

    /// The reference execution result, computed on first use and replayed
    /// from memory afterwards. Counters: one `ModulesDecoded` per fill, one
    /// `DecodeReuses` per replay, both under `scope`.
    fn result<T: TestTarget + ?Sized>(
        &self,
        target: &T,
        observe: &SinkHandle,
        scope: Scope,
    ) -> TargetResult {
        let mut slot = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cached) = slot.as_ref() {
            observe.count(scope, Counter::DecodeReuses, 1);
            return cached.clone();
        }
        let result = target.execute_reference(&self.module, &self.inputs);
        observe.count(scope, Counter::ModulesDecoded, 1);
        *slot = Some(result.clone());
        result
    }
}

/// [`attempt_classify`] with the reference side served from a
/// per-reduction [`ReferenceOracle`] instead of re-executed per probe. The
/// variant still runs live every time — only the fixed reference half is
/// cached, so the verdict stream is identical to the uncached oracle.
pub fn attempt_classify_cached<T: TestTarget + ?Sized>(
    tool: Tool,
    target: &T,
    reference: &ReferenceOracle,
    variant_module: &Module,
    observe: &SinkHandle,
    scope: Scope,
) -> Attempt {
    let run = || {
        let prepared_variant = module_for_target(tool, variant_module);
        match target.execute(&prepared_variant, &reference.inputs) {
            TargetResult::RuntimeFault(Fault::StepLimitExceeded) => Attempt::Hang,
            TargetResult::CompilerCrash(signature) => {
                Attempt::Signature(Some(BugSignature::Crash(signature)))
            }
            TargetResult::RuntimeFault(fault) => Attempt::Signature(Some(
                BugSignature::Crash(format!("runtime fault: {fault}")),
            )),
            TargetResult::Executed(variant_result) => {
                match reference.result(target, observe, scope) {
                    TargetResult::RuntimeFault(Fault::StepLimitExceeded) => Attempt::Hang,
                    TargetResult::Executed(original_result) => Attempt::Signature(
                        (original_result != variant_result)
                            .then_some(BugSignature::Miscompilation),
                    ),
                    _ => Attempt::Signature(None),
                }
            }
        }
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(attempt) => attempt,
        Err(payload) => Attempt::Panicked(panic_message(payload)),
    }
}

/// How one `(test, target)` cell resolved after retries and confirmation.
enum CellResolution {
    /// The target was quarantined before this batch started.
    Skipped,
    /// The oracle resolved; `unstable` carries a disagreement message when
    /// crash confirmation flip-flopped.
    Resolved {
        cell: Option<BugSignature>,
        retries: u32,
        unstable: Option<String>,
        confirm_runs: u32,
    },
    /// All attempts failed the same hard way.
    Failed {
        kind: FailureKind,
        attempts: u32,
        backoff_ms: u64,
        message: String,
    },
}

/// Everything one worker produced for one test.
struct RowResult {
    generation_error: Option<String>,
    cells: Vec<CellResolution>,
}

/// Resolves one `(test, target)` cell: bounded retry on panic/hang, then
/// optional crash confirmation.
fn resolve_cell<T: TestTarget>(
    tool: Tool,
    target: &T,
    original: &Context,
    variant_module: &Module,
    inputs: &Inputs,
    config: &ExecutorConfig,
) -> CellResolution {
    let max_attempts = 1 + config.max_retries;
    let mut backoff_ms = 0u64;
    let mut last_failure: Option<(FailureKind, String)> = None;

    for attempt in 1..=max_attempts {
        match attempt_classify(tool, target, original, variant_module, inputs) {
            Attempt::Signature(first) => {
                // Optional confirmation for crash signatures: flaky targets
                // may report a different outcome on a re-run.
                let mut cell = first.clone();
                let mut unstable = None;
                let mut confirm_runs = 0u32;
                if matches!(first, Some(BugSignature::Crash(_))) {
                    for run in 1..=config.crash_confirm_runs {
                        confirm_runs += 1;
                        let confirmed = attempt_classify(
                            tool,
                            target,
                            original,
                            variant_module,
                            inputs,
                        );
                        match confirmed {
                            Attempt::Signature(again) if again == cell => {}
                            Attempt::Signature(again) => {
                                unstable = Some(format!(
                                    "confirmation run {run} observed {:?}, first \
                                     attempt observed {:?}",
                                    again.as_ref().map(ToString::to_string),
                                    cell.as_ref().map(ToString::to_string),
                                ));
                                // Last observation wins — matching what a
                                // re-running human triager would keep.
                                cell = again;
                            }
                            Attempt::Hang => {
                                unstable = Some(format!(
                                    "confirmation run {run} hit the fuel budget \
                                     instead of reproducing the crash"
                                ));
                            }
                            Attempt::Panicked(message) => {
                                unstable = Some(format!(
                                    "confirmation run {run} panicked: {message}"
                                ));
                            }
                        }
                    }
                }
                return CellResolution::Resolved {
                    cell,
                    retries: attempt - 1,
                    unstable,
                    confirm_runs,
                };
            }
            Attempt::Hang => {
                last_failure =
                    Some((FailureKind::Hang, "interpreter fuel budget exhausted".into()));
            }
            Attempt::Panicked(message) => {
                last_failure = Some((FailureKind::Panic, message));
            }
        }
        if attempt < max_attempts {
            backoff_ms += config.backoff_base_ms << (attempt - 1);
        }
    }
    let (kind, message) = last_failure.unwrap_or((
        FailureKind::Panic,
        "no attempt recorded".to_owned(),
    ));
    CellResolution::Failed { kind, attempts: max_attempts, backoff_ms, message }
}

/// Runs a campaign under the resilient executor with no prior checkpoint.
///
/// Equivalent to [`resume_campaign`] with `checkpoint: None` and a no-op
/// checkpoint sink; infallible because there is no checkpoint to mismatch.
#[must_use]
pub fn run_campaign_resilient<T: TestTarget>(
    tool: Tool,
    targets: &[T],
    tests: usize,
    seed_base: u64,
    config: &ExecutorConfig,
) -> ResilientOutcome {
    match resume_campaign(tool, targets, tests, seed_base, config, None, |_| {}) {
        Ok(outcome) => outcome,
        // Unreachable: the only error source is checkpoint validation.
        Err(e) => ResilientOutcome {
            outcome: CampaignOutcome { per_test: vec![Vec::new(); targets.len()] },
            ledger: ErrorLedger {
                entries: vec![LedgerEntry {
                    test_index: 0,
                    target: None,
                    kind: FailureKind::GenerationFailed,
                    attempts: 0,
                    backoff_ms: 0,
                    message: e.to_string(),
                }],
            },
            quarantined: Vec::new(),
            retries_spent: 0,
            skipped_by_quarantine: 0,
            tests_completed: 0,
        },
    }
}

/// Runs (or resumes) a campaign under the resilient executor.
///
/// `on_checkpoint` is invoked with a progress snapshot after every batch of
/// `config.checkpoint_interval` tests; persist it (e.g. via
/// [`CampaignCheckpoint::to_json`]) to make the campaign resumable. Passing
/// the persisted snapshot back as `checkpoint` continues from where it left
/// off and yields the same final result as an uninterrupted run.
///
/// # Errors
///
/// Returns [`HarnessError::CheckpointMismatch`] when `checkpoint` does not
/// describe this `(tool, targets, tests, seed_base)` campaign.
pub fn resume_campaign<T: TestTarget>(
    tool: Tool,
    targets: &[T],
    tests: usize,
    seed_base: u64,
    config: &ExecutorConfig,
    checkpoint: Option<CampaignCheckpoint>,
    on_checkpoint: impl FnMut(&CampaignCheckpoint),
) -> Result<ResilientOutcome, HarnessError> {
    resume_campaign_observed(
        tool,
        targets,
        tests,
        seed_base,
        config,
        checkpoint,
        on_checkpoint,
        &SinkHandle::noop(),
    )
}

/// [`resume_campaign`], reporting campaign counters to `observe` under
/// [`Scope::Campaign`] (plus volatile pool-task counts under
/// [`Scope::Pool`] and per-batch wall-clock histograms).
///
/// The campaign counters (`incidents`, `retries`, `quarantined_targets`,
/// `tests_completed`, `skipped_by_quarantine`) are emitted once from the
/// final checkpoint state, so they are logical-level: identical across
/// thread counts *and* across kill/resume boundaries.
///
/// # Errors
///
/// Returns [`HarnessError::CheckpointMismatch`] when `checkpoint` does not
/// describe this `(tool, targets, tests, seed_base)` campaign.
#[allow(clippy::too_many_arguments)]
pub fn resume_campaign_observed<T: TestTarget>(
    tool: Tool,
    targets: &[T],
    tests: usize,
    seed_base: u64,
    config: &ExecutorConfig,
    checkpoint: Option<CampaignCheckpoint>,
    mut on_checkpoint: impl FnMut(&CampaignCheckpoint),
    observe: &SinkHandle,
) -> Result<ResilientOutcome, HarnessError> {
    let donors = donor_modules();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        config.threads
    };
    let interval = config.checkpoint_interval.max(1);

    // Restore (or initialise) progress.
    let mut state = match checkpoint {
        Some(cp) => {
            cp.validate(tool, targets, tests, seed_base)?;
            cp
        }
        None => CampaignCheckpoint {
            tool: tool.name().to_owned(),
            seed_base,
            total_tests: tests,
            target_names: targets.iter().map(|t| t.name().to_owned()).collect(),
            completed_tests: 0,
            per_test: Vec::new(),
            ledger: ErrorLedger::default(),
            consecutive_failures: vec![0; targets.len()],
            quarantined_at: vec![None; targets.len()],
            retries_spent: 0,
            skipped_by_quarantine: 0,
        },
    };

    // One persistent worker pool serves every batch: under heavy triage
    // traffic the executor used to spawn (and join) a fresh set of threads
    // per checkpoint interval.
    trx_pool::with_pool_observed(threads, observe.clone(), |pool| {
    while state.completed_tests < tests {
        let batch_started = observe.enabled().then(std::time::Instant::now);
        let start = state.completed_tests;
        let batch = interval.min(tests - start);
        // The quarantine set is frozen for the whole batch, so workers are
        // independent of scheduling. It is shared into the pool jobs via
        // `Arc`: pool jobs may only capture state that outlives the pool,
        // and this vector is rebuilt per batch.
        let quarantined: std::sync::Arc<Vec<bool>> = std::sync::Arc::new(
            state.quarantined_at.iter().map(Option::is_some).collect(),
        );

        let rows: Vec<RowResult> = {
            let donors = &donors;
            pool.map(batch, move |offset| {
                let index = start + offset;
                let seed = seed_base + index as u64;
                let test = match try_generate_test(tool, seed, donors) {
                    Ok(test) => test,
                    Err(e) => {
                        return RowResult {
                            generation_error: Some(e.to_string()),
                            cells: Vec::new(),
                        };
                    }
                };
                let cells = targets
                    .iter()
                    .zip(quarantined.iter())
                    .map(|(target, &skip)| {
                        if skip {
                            CellResolution::Skipped
                        } else {
                            resolve_cell(
                                tool,
                                target,
                                &test.original,
                                &test.variant.module,
                                &test.original.inputs,
                                config,
                            )
                        }
                    })
                    .collect();
                RowResult { generation_error: None, cells }
            })
        };

        // Serial fold in test order: ledger order and breaker transitions
        // are deterministic.
        for (offset, row) in rows.into_iter().enumerate() {
            let index = start + offset;
            if let Some(message) = row.generation_error {
                state.ledger.entries.push(LedgerEntry {
                    test_index: index,
                    target: None,
                    kind: FailureKind::GenerationFailed,
                    attempts: 1,
                    backoff_ms: 0,
                    message,
                });
                state.per_test.push(vec![None; targets.len()]);
                state.completed_tests += 1;
                continue;
            }
            let mut folded_row = Vec::with_capacity(targets.len());
            for (t, cell) in row.cells.into_iter().enumerate() {
                match cell {
                    CellResolution::Skipped => {
                        state.skipped_by_quarantine += 1;
                        folded_row.push(None);
                    }
                    CellResolution::Resolved { cell, retries, unstable, confirm_runs } => {
                        state.retries_spent += u64::from(retries);
                        state.consecutive_failures[t] = 0;
                        if let Some(message) = unstable {
                            state.ledger.entries.push(LedgerEntry {
                                test_index: index,
                                target: Some(state.target_names[t].clone()),
                                kind: FailureKind::UnstableOutcome,
                                attempts: 1 + retries + confirm_runs,
                                backoff_ms: 0,
                                message,
                            });
                        }
                        folded_row.push(cell);
                    }
                    CellResolution::Failed { kind, attempts, backoff_ms, message } => {
                        state.retries_spent += u64::from(attempts - 1);
                        state.ledger.entries.push(LedgerEntry {
                            test_index: index,
                            target: Some(state.target_names[t].clone()),
                            kind,
                            attempts,
                            backoff_ms,
                            message,
                        });
                        folded_row.push(None);
                        state.consecutive_failures[t] += 1;
                        if state.consecutive_failures[t] >= config.quarantine_threshold
                            && state.quarantined_at[t].is_none()
                        {
                            state.quarantined_at[t] = Some(index);
                            state.ledger.entries.push(LedgerEntry {
                                test_index: index,
                                target: Some(state.target_names[t].clone()),
                                kind: FailureKind::Quarantined,
                                attempts: 0,
                                backoff_ms: 0,
                                message: format!(
                                    "circuit breaker opened after {} consecutive \
                                     hard failures",
                                    state.consecutive_failures[t]
                                ),
                            });
                        }
                    }
                }
            }
            state.per_test.push(folded_row);
            state.completed_tests += 1;
        }
        on_checkpoint(&state);
        if let Some(started) = batch_started {
            observe.duration(
                Scope::Campaign,
                Counter::CampaignBatchNanos,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
    });

    // Transpose [test][target] rows into the CampaignOutcome shape.
    let mut per_test = vec![Vec::with_capacity(tests); targets.len()];
    for row in &state.per_test {
        for (t, cell) in row.iter().enumerate() {
            per_test[t].push(cell.clone());
        }
    }
    let quarantined: Vec<(String, usize)> = state
        .quarantined_at
        .iter()
        .enumerate()
        .filter_map(|(t, at)| at.map(|index| (state.target_names[t].clone(), index)))
        .collect();
    if observe.enabled() {
        // Totals come from the checkpoint state, which accumulates across
        // resumes — the counters are resume-invariant, not run-local.
        observe.count(Scope::Campaign, Counter::Incidents, state.ledger.len() as u64);
        observe.count(Scope::Campaign, Counter::Retries, state.retries_spent);
        observe.count(Scope::Campaign, Counter::QuarantinedTargets, quarantined.len() as u64);
        observe.count(Scope::Campaign, Counter::TestsCompleted, state.completed_tests as u64);
        observe.count(
            Scope::Campaign,
            Counter::SkippedByQuarantine,
            state.skipped_by_quarantine,
        );
    }
    Ok(ResilientOutcome {
        outcome: CampaignOutcome { per_test },
        ledger: state.ledger,
        quarantined,
        retries_spent: state.retries_spent,
        skipped_by_quarantine: state.skipped_by_quarantine,
        tests_completed: state.completed_tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trx_targets::{catalog, FaultPlan, FaultyTarget};

    fn small_config() -> ExecutorConfig {
        ExecutorConfig { threads: 2, checkpoint_interval: 4, ..ExecutorConfig::default() }
    }

    fn chaos_targets(plan: FaultPlan) -> Vec<FaultyTarget> {
        catalog::all_targets()
            .into_iter()
            .take(2)
            .map(|t| FaultyTarget::new(t, plan.clone()))
            .collect()
    }

    #[test]
    fn clean_targets_match_plain_campaign() {
        let targets: Vec<_> = catalog::all_targets().into_iter().take(2).collect();
        let plain =
            crate::campaign::run_campaign(Tool::SpirvFuzz, &targets, 12, 0);
        let resilient = run_campaign_resilient(
            Tool::SpirvFuzz,
            &targets,
            12,
            0,
            &small_config(),
        );
        assert_eq!(resilient.outcome.per_test, plain.per_test);
        assert!(resilient.ledger.is_empty());
        assert_eq!(resilient.retries_spent, 0);
        assert!(resilient.quarantined.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_and_absorbed() {
        let targets = chaos_targets(FaultPlan::chaos(7));
        let outcome = run_campaign_resilient(
            Tool::SpirvFuzz,
            &targets,
            24,
            0,
            &small_config(),
        );
        assert_eq!(outcome.tests_completed, 24);
        // Chaos probabilities guarantee some injected faults over 24 tests
        // x 2 targets; the run must absorb them rather than panic.
        assert!(
            outcome.retries_spent > 0 || !outcome.ledger.is_empty(),
            "chaos plan produced no observable faults"
        );
    }

    #[test]
    fn campaign_is_deterministic_under_faults() {
        let run = || {
            let targets = chaos_targets(FaultPlan::chaos(99));
            run_campaign_resilient(Tool::SpirvFuzz, &targets, 16, 3, &small_config())
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcome.per_test, b.outcome.per_test);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.retries_spent, b.retries_spent);
        assert_eq!(a.quarantined, b.quarantined);
    }

    #[test]
    fn persistent_hangs_trip_the_circuit_breaker() {
        // ttl larger than the retry budget: every hang decision persists
        // through all retries, so hard failures accumulate.
        let plan = FaultPlan {
            seed: 5,
            panic_probability: 0.0,
            hang_probability: 1.0,
            transient_crash_probability: 0.0,
            flip_flop_probability: 0.0,
            transient_ttl: 100,
        };
        let targets = chaos_targets(plan);
        let config = ExecutorConfig {
            quarantine_threshold: 3,
            ..small_config()
        };
        let outcome =
            run_campaign_resilient(Tool::SpirvFuzz, &targets, 12, 0, &config);
        assert_eq!(outcome.quarantined.len(), 2, "all targets hang forever");
        assert!(outcome.skipped_by_quarantine > 0);
        assert!(outcome.ledger.count(FailureKind::Hang) >= 3);
        assert_eq!(outcome.ledger.count(FailureKind::Quarantined), 2);
        // Every resolved cell is None: partial results, no panic.
        assert!(outcome
            .outcome
            .per_test
            .iter()
            .all(|cells| cells.iter().all(Option::is_none)));
    }

    #[test]
    fn injected_panics_are_isolated_not_fatal() {
        let plan = FaultPlan {
            seed: 11,
            panic_probability: 1.0,
            hang_probability: 0.0,
            transient_crash_probability: 0.0,
            flip_flop_probability: 0.0,
            transient_ttl: 100,
        };
        let targets = chaos_targets(plan);
        let outcome =
            run_campaign_resilient(Tool::SpirvFuzz, &targets, 6, 0, &small_config());
        assert!(outcome.ledger.count(FailureKind::Panic) > 0);
        assert!(outcome
            .ledger
            .entries
            .iter()
            .any(|e| e.message.contains("injected panic")));
        assert_eq!(outcome.tests_completed, 6);
    }

    #[test]
    fn flip_flop_crashes_surface_as_unstable_outcomes() {
        let plan = FaultPlan {
            seed: 21,
            panic_probability: 0.0,
            hang_probability: 0.0,
            transient_crash_probability: 0.0,
            flip_flop_probability: 1.0,
            transient_ttl: 1,
        };
        let targets = chaos_targets(plan);
        let outcome =
            run_campaign_resilient(Tool::SpirvFuzz, &targets, 8, 0, &small_config());
        assert!(outcome.ledger.count(FailureKind::UnstableOutcome) > 0);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let make_targets = || chaos_targets(FaultPlan::chaos(42));
        let config = small_config();

        let full = run_campaign_resilient(
            Tool::SpirvFuzz,
            &make_targets(),
            20,
            1,
            &config,
        );

        // Run again, capturing the checkpoint emitted closest to halfway.
        let mut midway: Option<CampaignCheckpoint> = None;
        let _ = resume_campaign(
            Tool::SpirvFuzz,
            &make_targets(),
            20,
            1,
            &config,
            None,
            |cp| {
                if cp.completed_tests <= 12 {
                    midway = Some(cp.clone());
                }
            },
        )
        .expect("no checkpoint to mismatch");
        let midway = midway.expect("at least one mid-run checkpoint");
        assert!(midway.completed_tests < 20);

        // Round-trip the checkpoint through JSON, then resume with *fresh*
        // targets (as a restarted process would have).
        let json = midway.to_json().expect("checkpoint serialises");
        let restored = CampaignCheckpoint::from_json(&json).expect("parses");
        assert_eq!(restored, midway);
        let resumed = resume_campaign(
            Tool::SpirvFuzz,
            &make_targets(),
            20,
            1,
            &config,
            Some(restored),
            |_| {},
        )
        .expect("checkpoint matches");

        assert_eq!(resumed.outcome.per_test, full.outcome.per_test);
        assert_eq!(resumed.ledger, full.ledger);
        assert_eq!(resumed.retries_spent, full.retries_spent);
        assert_eq!(resumed.skipped_by_quarantine, full.skipped_by_quarantine);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let targets = chaos_targets(FaultPlan::none(1));
        let cp = CampaignCheckpoint {
            tool: Tool::SpirvFuzz.name().to_owned(),
            seed_base: 0,
            total_tests: 10,
            target_names: targets.iter().map(|t| t.name().to_owned()).collect(),
            completed_tests: 0,
            per_test: Vec::new(),
            ledger: ErrorLedger::default(),
            consecutive_failures: vec![0; targets.len()],
            quarantined_at: vec![None; targets.len()],
            retries_spent: 0,
            skipped_by_quarantine: 0,
        };
        // Wrong seed base.
        let err = resume_campaign(
            Tool::SpirvFuzz,
            &targets,
            10,
            999,
            &ExecutorConfig::default(),
            Some(cp.clone()),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::CheckpointMismatch { .. }));
        // Wrong tool.
        let err = resume_campaign(
            Tool::GlslFuzz,
            &targets,
            10,
            0,
            &ExecutorConfig::default(),
            Some(cp),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::CheckpointMismatch { .. }));
    }

    #[test]
    fn executor_config_round_trips_through_json() {
        let config = ExecutorConfig::default();
        let json = serde_json::to_string(&config).expect("serialises");
        let back: ExecutorConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, config);
    }
}
